"""Quickstart: an unbundled kernel in twenty lines.

Run:  python examples/quickstart.py
"""

from repro import UnbundledKernel


def main() -> None:
    # One Transactional Component wired to one Data Component (Figure 1).
    kernel = UnbundledKernel()
    kernel.create_table("users")

    # Transactions are fully ACID; the context manager commits on success
    # and rolls back (by logical inverse operations) on an exception.
    with kernel.begin() as txn:
        txn.insert("users", 1, {"name": "Ada Lovelace", "karma": 10})
        txn.insert("users", 2, {"name": "Grace Hopper", "karma": 20})

    with kernel.begin() as txn:
        print("read :", txn.read("users", 1))
        txn.update("users", 1, {"name": "Ada Lovelace", "karma": 11})

    # Rollback demo: the failed transaction leaves no trace.
    try:
        with kernel.begin() as txn:
            txn.insert("users", 3, {"name": "Eve"})
            raise RuntimeError("application decided to bail out")
    except RuntimeError:
        pass

    with kernel.begin() as txn:
        print("scan :", txn.scan("users"))
        assert txn.read("users", 3) is None

    # Crash the Data Component: its cache is gone, but the TC's logical
    # log replays everything (exactly-once, thanks to abstract LSNs).
    kernel.crash_dc()
    kernel.recover_dc()
    with kernel.begin() as txn:
        assert txn.read("users", 1)["karma"] == 11
        print("after DC crash+recovery:", txn.scan("users"))

    print("quickstart OK")


if __name__ == "__main__":
    main()
