"""The paper's Section 2 application: a Web 2.0 photo-sharing platform.

Demonstrates what unbundling buys an application builder: home-grown index
structures (a phrase index over review text, on a fixed-page heap) coexist
with ordinary B-tree tables behind one DC, all renting transactions from
the same TC — referential integrity included.

Run:  python examples/photo_sharing.py
"""

from repro.common.errors import NoSuchRecordError
from repro.workloads.photo_sharing import PhotoSharingApp


def main() -> None:
    app = PhotoSharingApp()

    # Users, groups, photos with tags.
    for user, name in [("ada", "Ada"), ("bob", "Bob"), ("eve", "Eve")]:
        app.register_user(user, {"name": name})
    app.join_group("landscape-fans", "ada")
    app.join_group("landscape-fans", "bob")

    app.upload_photo(
        "golden-gate", "ada", {"title": "Golden Gate at dawn"}, ["bridge", "sf"]
    )
    app.upload_photo("bay-bridge", "bob", {"title": "Bay Bridge"}, ["bridge"])

    # Reviews feed the application-specific phrase index.
    app.review_photo("golden-gate", "bob", "truly great composition", 5)
    app.review_photo("golden-gate", "eve", "nice light, great composition", 4)
    app.review_photo("bay-bridge", "ada", "solid but ordinary composition", 3)

    print("photos tagged 'bridge':", app.photos_by_tag("bridge"))
    print("avg rating golden-gate:", app.average_rating("golden-gate"))
    print(
        "photos matching 'great composition':",
        app.photos_matching_phrase("great composition"),
    )
    print("group members:", app.group_members("landscape-fans"))

    # Referential integrity: reviews of missing photos are rejected whole.
    try:
        app.review_photo("no-such-photo", "ada", "??", 1)
    except NoSuchRecordError as exc:
        print("rejected:", exc)

    # Deleting a photo cascades through reviews, tags and the phrase index
    # in one transaction.
    app.delete_photo("golden-gate")
    assert app.photos_by_tag("bridge") == ["bay-bridge"]
    assert app.photos_matching_phrase("great composition") == []
    print("cascade delete OK")

    # The whole app survives a full crash of both components.
    app.kernel.crash_all()
    app.kernel.recover_all()
    assert app.average_rating("bay-bridge") == 3.0
    print("crash + recovery OK")


if __name__ == "__main__":
    main()
