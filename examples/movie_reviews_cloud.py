"""The Figure 2 cloud deployment: movie reviews without 2PC (Section 6.3).

Three DCs, two updater TCs owning disjoint user partitions, one read-only
TC with versioned read-committed access.  Every workload touches at most
two machines and no distributed commit protocol exists anywhere.

Run:  python examples/movie_reviews_cloud.py
"""

from repro.cloud.movie_site import MovieSite
from repro.cloud.two_pc import TwoPhaseCommitSystem


def main() -> None:
    site = MovieSite(movie_partitions=2, updater_tcs=2)

    for mid, title in [("vertigo", "Vertigo"), ("alien", "Alien")]:
        site.add_movie(mid, {"title": title})
    for uid in ("ada", "bob", "eve", "mallory"):
        site.register_user(uid, {"name": uid.title()})

    # W2: posting a review writes two DCs (review clustered by movie,
    # per-user copy clustered by user) in ONE local transaction.
    _, machines = site.machines_touched(
        site.post_review, "ada", "vertigo", "dizzying, wonderful"
    )
    print(f"W2 post_review touched {machines} machines, zero 2PC messages")
    site.post_review("bob", "vertigo", "classic")
    site.post_review("ada", "alien", "terrifying")

    # W1: all reviews for a movie — one clustered read-committed scan.
    reviews, machines = site.machines_touched(site.reviews_for_movie, "vertigo")
    print(f"W1 reviews_for_movie touched {machines} machine(s):")
    for (mid, uid), text in reviews:
        print(f"   {uid:8s} on {mid}: {text}")

    # W3 / W4: user-local workloads.
    site.update_profile("ada", {"name": "Ada", "favorite": "vertigo"})
    mine, machines = site.machines_touched(site.my_reviews, "ada")
    print(f"W4 my_reviews touched {machines} machine(s): {len(mine)} reviews")

    # Readers never block: an updater holds an open transaction while the
    # read-only TC keeps serving committed data.
    writer_tc = site.owner_of("eve")
    pending = writer_tc.begin()
    site.reviews.insert(pending, ("vertigo", "eve"), "uncommitted draft")
    visible = site.reviews_for_movie("vertigo")
    assert all(uid != "eve" for (_m, uid), _t in visible)
    print("reader saw", len(visible), "committed reviews while a write was open")
    pending.commit()
    assert len(site.reviews_for_movie("vertigo")) == len(visible) + 1

    # What the design avoids: the same cross-machine write under 2PC.
    twopc = TwoPhaseCommitSystem(["dc-reviews", "dc-users"], latency_ms=20.0)
    outcome = twopc.commit_transaction()
    print(
        f"2PC baseline would cost {outcome.messages} messages, "
        f"{outcome.log_forces} log forces, {outcome.sim_latency_ms:.0f}ms of WAN latency"
    )

    # A TC crash is private: the other updater and the reader carry on.
    site.register_user("zoe", {"name": "Zoe"})
    victim = site.updaters.index(site.owner_of("zoe"))
    open_txn = site.owner_of("zoe").begin()
    site.reviews.insert(open_txn, ("alien", "zoe"), "will be lost")
    site.crash_updater(victim)
    print("after TC crash, W1 still serves:", len(site.reviews_for_movie("alien")))
    site.recover_updater(victim)
    site.post_review("mallory", "alien", "posted after recovery")
    print("after recovery:", len(site.reviews_for_movie("alien")), "reviews")
    print("movie site OK")


if __name__ == "__main__":
    main()
