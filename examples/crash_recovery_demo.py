"""Partial failures, narrated (Section 5.3).

Walks through all three failure shapes with a visible storyline:

1. DC crash   — cache gone, structures rebuilt, TC redo fills the gaps;
2. TC crash   — log tail gone, the DC resets exactly the poisoned pages;
3. both crash — the classic fail-together case.

Run:  python examples/crash_recovery_demo.py
"""

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.storage.buffer import ResetMode


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
    kernel.create_table("accounts")

    banner("setup: 100 accounts (small pages force real B-tree splits)")
    for account in range(100):
        with kernel.begin() as txn:
            txn.insert("accounts", account, {"balance": 100})
    print("splits so far:", kernel.metrics.get("btree.leaf_splits"))

    banner("1. DC crash: cache lost, nothing was ever flushed")
    kernel.crash_dc()
    kernel.recover_dc()  # structures first, then the TC is prompted to redo
    with kernel.begin() as txn:
        assert len(txn.scan("accounts")) == 100
    print("redo operations resent by the TC:", kernel.metrics.get("tc.redo_ops"))

    banner("2. TC crash with an uncommitted transfer in flight")
    transfer = kernel.begin()
    transfer.update("accounts", 1, {"balance": 0})
    transfer.update("accounts", 2, {"balance": 200})
    print("transfer applied at the DC but not committed...")
    lost = kernel.crash_tc()
    print(f"TC crashed losing {lost} volatile log records")
    stats = kernel.recover_tc(ResetMode.RECORD_RESET)
    print("restart stats:", stats)
    with kernel.begin() as txn:
        assert txn.read("accounts", 1)["balance"] == 100
        assert txn.read("accounts", 2)["balance"] == 100
    print("the half-done transfer left no trace")

    banner("3. a committed-but-unflushed transfer survives every failure")
    with kernel.begin() as txn:
        txn.update("accounts", 1, {"balance": 50})
        txn.update("accounts", 2, {"balance": 150})
    kernel.crash_all()
    kernel.recover_all()
    with kernel.begin() as txn:
        a, b = txn.read("accounts", 1), txn.read("accounts", 2)
    assert a["balance"] == 50 and b["balance"] == 150
    print("balances after crash-all:", a, b)

    banner("4. checkpointing bounds redo work")
    kernel.checkpoint()
    with kernel.begin() as txn:
        txn.update("accounts", 3, {"balance": 7})
    kernel.crash_tc()
    stats = kernel.recover_tc()
    print(f"after a checkpoint, restart redid only {stats['redo_ops']} op(s)")
    print("\ncrash recovery demo OK")


if __name__ == "__main__":
    main()
