"""Building a custom multi-region topology with CloudDeployment.

The MovieSite example hard-codes Figure 2; this one declares its own
topology — an order-processing service with a write region, a far region,
and a read-only analytics TC — then demonstrates the same properties:
clustered access, ownership enforcement, no 2PC, private crashes.

Run:  python examples/cloud_deployment_builder.py
"""

from repro.cloud.deployment import CloudDeployment
from repro.common.errors import OwnershipError


def main() -> None:
    deployment = CloudDeployment()
    deployment.add_dc("us-east", latency_ms=1.0)
    deployment.add_dc("eu-west", latency_ms=25.0)
    deployment.add_tc("orders-tc")
    deployment.add_tc("analytics-tc", read_only=True)

    # Orders live near the writer; events are hash-partitioned across
    # both regions; both are versioned so analytics reads never block.
    deployment.create_table("orders", dc="us-east", versioned=True)
    events = deployment.create_table(
        "events", partitions=["us-east", "eu-west"], versioned=True
    )
    deployment.grant("orders-tc", "orders", lambda key: True)
    deployment.grant("orders-tc", "events", lambda key: True)
    deployment.build()
    for tc in deployment.tcs.values():
        for dc in deployment.dcs.values():
            tc.refresh_routes(dc)

    writer = deployment.tc("orders-tc")
    analytics = deployment.tc("analytics-tc")

    # One transaction spans both regions; still a single commit point.
    def place_order(order_id: int) -> None:
        with writer.begin() as txn:
            txn.insert("orders", order_id, {"status": "placed"})
            events.insert(txn, order_id, {"type": "order-placed"})

    _, machines = deployment.machines_touched(lambda: place_order(1))
    print(f"placing an order touched {machines} region(s), zero 2PC messages")
    for order_id in range(2, 30):
        place_order(order_id)

    # Analytics reads committed data without ever blocking the writer.
    open_txn = writer.begin()
    open_txn.update("orders", 1, {"status": "editing..."})
    committed = analytics.read_other("orders", 1)
    print("analytics sees committed state during an open write:", committed)
    open_txn.abort()

    # Read-only means read-only.
    try:
        with analytics.begin() as txn:
            txn.insert("orders", 999, {})
    except OwnershipError as exc:
        print("rejected:", exc)

    # Everything survives the datacenter going down.
    deployment.crash_everything()
    deployment.recover_everything()
    with writer.begin() as txn:
        print("orders after full-region crash:", len(txn.scan("orders")))
    print("deployment builder OK")


if __name__ == "__main__":
    main()
