"""Two TCs sharing one DC (Section 6): versions, flavors, private crashes.

Run:  python examples/multi_tc_sharing.py
"""

from repro.common.config import DcConfig
from repro.common.errors import OwnershipError
from repro.common.ops import ReadFlavor
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import TransactionalComponent


def main() -> None:
    metrics = Metrics()
    dc = DataComponent("shared-dc", config=DcConfig(page_size=1024), metrics=metrics)
    dc.create_table("inventory", versioned=True)

    # Two TCs with disjoint update rights: even vs odd item ids.
    tc_even = TransactionalComponent(metrics=metrics)
    tc_odd = TransactionalComponent(metrics=metrics)
    for tc in (tc_even, tc_odd):
        tc.attach_dc(dc)
    tc_even.ownership_guard = lambda table, key: key % 2 == 0
    tc_odd.ownership_guard = lambda table, key: key % 2 == 1

    for item in range(10):
        owner = tc_even if item % 2 == 0 else tc_odd
        with owner.begin() as txn:
            txn.insert("inventory", item, {"stock": 10 * (item + 1)})
    print("10 items inserted by two TCs into one DC")

    # Ownership is enforced: the DC never sees conflicting operations.
    try:
        with tc_even.begin() as txn:
            txn.update("inventory", 1, {"stock": 0})
    except OwnershipError as exc:
        print("rejected:", exc)

    # Versioned sharing: while tc_even updates item 0, tc_odd reads the
    # committed before-version without blocking; dirty reads see the new.
    writer = tc_even.begin()
    writer.update("inventory", 0, {"stock": 5})
    committed = tc_odd.read_other("inventory", 0, ReadFlavor.READ_COMMITTED)
    dirty = tc_odd.read_other("inventory", 0, ReadFlavor.DIRTY)
    print(f"while update pending: read-committed={committed}  dirty={dirty}")
    writer.commit()
    print("after commit:        read-committed =",
          tc_odd.read_other("inventory", 0, ReadFlavor.READ_COMMITTED))

    # Shared pages carry one abLSN per TC and record->TC chains, so a TC
    # crash resets only its own records (Section 6.1.2).
    tc_even.checkpoint()
    doomed = tc_even.begin()
    doomed.update("inventory", 2, {"stock": -999})
    tc_even.crash()
    stats = tc_even.restart(ResetMode.RECORD_RESET)
    print("tc_even restart:", stats)
    with tc_odd.begin() as txn:
        assert txn.read("inventory", 1)["stock"] == 20  # untouched
    with tc_even.begin() as txn:
        assert txn.read("inventory", 2)["stock"] == 30  # rolled back
    print("co-resident TC kept all cached work; the failed TC lost only its tail")
    print("multi-TC sharing OK")


if __name__ == "__main__":
    main()
