"""Extensibility showcase: an RDF engine + snapshot readers (Sections 1.1, 6.3).

Two of the paper's forward-looking claims, running:

- "one might build an RDF engine as a DC with transactional functionality
  added as a separate layer" — a triple store with three clustered
  orderings, renting transactions from the TC;
- "we also see potential for providing snapshot isolation" — lock-free
  reads as of a past commit-sequence watermark on versioned tables.

Run:  python examples/rdf_and_snapshots.py
"""

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.workloads.rdf_store import TripleStore


def rdf_demo() -> None:
    print("=== RDF triple store on the unbundled kernel ===")
    store = TripleStore()
    store.add_all(
        [
            ("ada", "knows", "grace"),
            ("grace", "knows", "alan"),
            ("ada", "authored", "notes-on-the-analytical-engine"),
            ("grace", "authored", "cobol"),
            ("alan", "authored", "on-computable-numbers"),
            ("cobol", "type", "language"),
        ]
    )
    print("who does ada know?        ", store.objects("ada", "knows"))
    print("who authored cobol?       ", store.subjects("authored", "cobol"))
    print("everything about grace:   ", store.match("grace", None, None))
    print("2-hop neighborhood of ada:", sorted(store.neighbors("ada", max_hops=2)))

    # assertions are atomic across all three orderings, and survive crashes
    store.kernel.crash_all()
    store.kernel.recover_all()
    assert store.count() == 6
    print("triples after crash-all:  ", store.count())


def snapshot_demo() -> None:
    print("\n=== snapshot readers over versioned tables ===")
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(snapshot_retention=1000))
    )
    kernel.create_table("accounts", versioned=True)
    with kernel.begin() as txn:
        txn.insert("accounts", "alice", 100)
        txn.insert("accounts", "bob", 100)

    end_of_day = kernel.tc.begin_snapshot()  # the auditor's view

    # business continues: transfers move money around
    for amount in (10, 20, 30):
        with kernel.begin() as txn:
            txn.update("accounts", "alice", txn.read("accounts", "alice") - amount)
            txn.update("accounts", "bob", txn.read("accounts", "bob") + amount)

    with kernel.begin() as txn:
        live = dict(txn.scan("accounts"))
    audited = dict(end_of_day.scan("accounts"))
    print("live balances:    ", live)
    print("audited snapshot: ", audited)
    assert audited == {"alice": 100, "bob": 100}
    assert sum(live.values()) == sum(audited.values()) == 200
    print("the snapshot is transaction-consistent: totals match, history differs")


if __name__ == "__main__":
    rdf_demo()
    snapshot_demo()
    print("\nrdf + snapshots OK")
