"""Pipelined (deferred) mutations: out-of-order execution end to end."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig


def pipelined_kernel(phantom_protection=True, **channel_kwargs):
    from repro.common.config import TcConfig

    config = KernelConfig(
        dc=DcConfig(page_size=1024),
        tc=TcConfig(phantom_protection=phantom_protection),
        channel=ChannelConfig(**channel_kwargs),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestPipelineBasics:
    def test_deferred_inserts_visible_after_sync(self):
        kernel = pipelined_kernel()
        with kernel.begin() as txn:
            for key in range(20):
                txn.insert("t", key, key, deferred=True)
            txn.sync()
            assert len(txn.scan("t")) == 20
        assert kernel.metrics.get("tc.deferred_mutations") == 20

    def test_commit_syncs_implicitly(self):
        kernel = pipelined_kernel()
        txn = kernel.begin()
        for key in range(10):
            txn.insert("t", key, key, deferred=True)
        txn.commit()  # no explicit sync
        with kernel.begin() as check:
            assert len(check.scan("t")) == 10

    def test_abort_syncs_then_rolls_back(self):
        kernel = pipelined_kernel()
        txn = kernel.begin()
        for key in range(10):
            txn.insert("t", key, key, deferred=True)
        txn.abort()
        with kernel.begin() as check:
            assert check.scan("t") == []

    def test_same_key_conflict_forces_sync(self):
        """Two operations on one key must never be in flight together —
        the TC's Section 1.2 obligation extends to its own pipeline."""
        kernel = pipelined_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "first", deferred=True)
            assert len(txn.in_flight) == 1
            txn.update("t", 1, "second")  # implicit sync happened
            assert txn.read("t", 1) == "second"
        assert kernel.metrics.get("tc.pipeline_syncs") >= 1

    def test_mixed_deferred_and_synchronous(self):
        kernel = pipelined_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "a", deferred=True)
            txn.insert("t", 2, "b")  # synchronous, different key: fine
            txn.insert("t", 3, "c", deferred=True)
            txn.sync()
            assert txn.scan("t") == [(1, "a"), (2, "b"), (3, "c")]


class TestPipelineUnderReordering:
    def test_reordered_delivery_is_absorbed(self):
        """The headline case of Section 5.1: the DC executes the pipeline
        out of LSN order and the abLSNs keep everything exactly-once."""
        kernel = pipelined_kernel(reorder_window=8, seed=17)
        with kernel.begin() as txn:
            for key in range(40):
                txn.insert("t", key, f"v{key}", deferred=True)
            txn.sync()
        assert kernel.metrics.get("channel.batches_reordered") >= 1
        with kernel.begin() as check:
            assert check.scan("t") == [(key, f"v{key}") for key in range(40)]

    def test_reordering_plus_loss_falls_back_to_resend(self):
        kernel = pipelined_kernel(reorder_window=4, loss_rate=0.3, seed=23)
        with kernel.begin() as txn:
            for key in range(30):
                txn.insert("t", key, key, deferred=True)
            txn.sync()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 30
        assert kernel.metrics.get("tc.resends") > 0

    def test_pipeline_survives_crashes(self):
        kernel = pipelined_kernel(reorder_window=4, seed=3)
        with kernel.begin() as txn:
            for key in range(30):
                txn.insert("t", key, key, deferred=True)
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 30

    def test_uncommitted_pipeline_lost_with_tc(self):
        kernel = pipelined_kernel(reorder_window=4, seed=3)
        txn = kernel.begin()
        for key in range(10):
            txn.insert("t", key, key, deferred=True)
        txn.sync()  # delivered to the DC, but never committed
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.scan("t") == []


class TestConcurrentPipelines:
    def test_two_transactions_share_one_channel(self):
        """Transaction A's sync pumps the shared channel and may deliver
        B's queued operations; B's own sync then falls back to resend, and
        idempotence keeps everything exactly-once."""
        # Gap guards of concurrent pipelined inserts would rightly
        # serialize (deferred records are invisible to the other probe,
        # so successors collide) — correct behavior, but this test is
        # about channel sharing, so next-key locking is switched off.
        kernel = pipelined_kernel(phantom_protection=False)
        a = kernel.begin()
        b = kernel.begin()
        for key in range(0, 10, 2):
            a.insert("t", key, "a", deferred=True)
        for key in range(1, 10, 2):
            b.insert("t", key, "b", deferred=True)
        a.sync()  # delivers (possibly) both pipelines
        b.sync()  # resend-fallback for anything a's pump consumed
        a.commit()
        b.commit()
        with kernel.begin() as check:
            rows = check.scan("t")
        assert [key for key, _v in rows] == list(range(10))
        assert all(v == ("a" if key % 2 == 0 else "b") for key, v in rows)

    def test_interleaved_deferred_and_commit(self):
        kernel = pipelined_kernel(phantom_protection=False)
        a = kernel.begin()
        a.insert("t", 1, "a", deferred=True)
        with kernel.begin() as b:
            b.insert("t", 2, "b")  # synchronous txn commits mid-pipeline
        a.commit()
        with kernel.begin() as check:
            assert check.scan("t") == [(1, "a"), (2, "b")]


class TestPipelineThroughput:
    def test_pipelining_reduces_request_count_pressure(self):
        """Deferred operations still send one message each, but batch the
        round-trip waits; with a latency model the saving is visible in
        simulated time."""
        sync_kernel = pipelined_kernel(latency_ms=1.0)
        with sync_kernel.begin() as txn:
            for key in range(20):
                txn.insert("t", key, key)
        sync_time = sum(
            c.sim_time_ms for c in sync_kernel.tc.channels().values()
        )

        pipe_kernel = pipelined_kernel(latency_ms=1.0)
        with pipe_kernel.begin() as txn:
            for key in range(20):
                txn.insert("t", key, key, deferred=True)
            txn.sync()
        pipe_time = sum(
            c.sim_time_ms for c in pipe_kernel.tc.channels().values()
        )
        # same message count, but the validation reads dominate both;
        # the deferred path must not cost MORE
        assert pipe_time <= sync_time
