"""The Data Component: atomic, idempotent logical operations."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig
from repro.common.errors import CrashedError, ReproError
from repro.common.ops import (
    DeleteOp,
    DiscardVersionsOp,
    InsertOp,
    OpStatus,
    ProbeNextKeysOp,
    PromoteVersionsOp,
    RangeReadOp,
    ReadFlavor,
    ReadOp,
    UpdateOp,
)
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics


@pytest.fixture
def dc():
    component = DataComponent("dc", config=DcConfig(page_size=512))
    component.create_table("t")
    component.register_tc(1, force_log=lambda lsn: lsn)
    return component


def perform(dc, op, op_id, tc_id=1):
    return dc.perform_operation(tc_id, op_id, op)


class TestBasicOperations:
    def test_insert_then_read(self, dc):
        assert perform(dc, InsertOp(table="t", key=1, value="v"), 1).ok
        result = perform(dc, ReadOp(table="t", key=1), 2)
        assert result.ok and result.value == "v"

    def test_update_returns_prior(self, dc):
        perform(dc, InsertOp(table="t", key=1, value="old"), 1)
        result = perform(dc, UpdateOp(table="t", key=1, value="new"), 2)
        assert result.ok and result.prior == "old"

    def test_delete_returns_prior(self, dc):
        perform(dc, InsertOp(table="t", key=1, value="v"), 1)
        result = perform(dc, DeleteOp(table="t", key=1), 2)
        assert result.ok and result.prior == "v"
        assert perform(dc, ReadOp(table="t", key=1), 3).status is OpStatus.NOT_FOUND

    def test_duplicate_insert_status(self, dc):
        perform(dc, InsertOp(table="t", key=1, value="v"), 1)
        result = perform(dc, InsertOp(table="t", key=1, value="w"), 2)
        assert result.status is OpStatus.DUPLICATE

    def test_update_missing_status(self, dc):
        result = perform(dc, UpdateOp(table="t", key=9, value="w"), 1)
        assert result.status is OpStatus.NOT_FOUND

    def test_unknown_table_is_error(self, dc):
        result = perform(dc, InsertOp(table="nope", key=1, value="v"), 1)
        assert result.status is OpStatus.ERROR

    def test_range_read(self, dc):
        for index in range(10):
            perform(dc, InsertOp(table="t", key=index, value=index * 10), index + 1)
        result = perform(dc, RangeReadOp(table="t", low=3, high=6), 99)
        assert [v.key for v in result.records] == [3, 4, 5, 6]
        limited = perform(dc, RangeReadOp(table="t", low=None, high=None, limit=4), 100)
        assert len(limited.records) == 4

    def test_range_read_low_exclusive(self, dc):
        for index in range(5):
            perform(dc, InsertOp(table="t", key=index, value=index), index + 1)
        result = perform(
            dc, RangeReadOp(table="t", low=2, high=4, low_exclusive=True), 99
        )
        assert [v.key for v in result.records] == [3, 4]

    def test_probe_next_keys(self, dc):
        for index in (2, 4, 6, 8):
            perform(dc, InsertOp(table="t", key=index, value="v"), index)
        result = perform(dc, ProbeNextKeysOp(table="t", after=2, count=2), 99)
        assert result.keys == (4, 6)
        inclusive = perform(
            dc, ProbeNextKeysOp(table="t", after=2, count=2, inclusive=True), 100
        )
        assert inclusive.keys == (2, 4)


class TestIdempotence:
    """Exactly-once via abLSNs (Sections 4.2, 5.1)."""

    def test_duplicate_request_filtered(self, dc):
        op = InsertOp(table="t", key=1, value="v")
        assert perform(dc, op, 5).ok
        assert perform(dc, op, 5).ok  # resend: filtered, still OK
        assert dc.metrics.get("dc.duplicate_ops") == 1
        result = perform(dc, RangeReadOp(table="t"), 99)
        assert len(result.records) == 1

    def test_duplicate_update_not_reapplied(self, dc):
        perform(dc, InsertOp(table="t", key=1, value="a"), 1)
        update = UpdateOp(table="t", key=1, value="b")
        perform(dc, update, 2)
        perform(dc, UpdateOp(table="t", key=1, value="c"), 3)
        perform(dc, update, 2)  # stale resend of LSN 2
        assert perform(dc, ReadOp(table="t", key=1), 9).value == "c"

    def test_out_of_order_execution(self, dc):
        """A later LSN applied first must not mask an earlier one."""
        perform(dc, InsertOp(table="t", key=1, value="v0"), 1)
        perform(dc, UpdateOp(table="t", key=2 + 10, value="x"), 2)  # unrelated
        # LSN 9 arrives before LSN 5 (non-conflicting: different keys)
        perform(dc, InsertOp(table="t", key=9, value="nine"), 9)
        result = perform(dc, InsertOp(table="t", key=5, value="five"), 5)
        assert result.ok
        assert perform(dc, ReadOp(table="t", key=5), 99).value == "five"
        # both now filtered
        assert perform(dc, InsertOp(table="t", key=9, value="dup"), 9).ok
        assert perform(dc, ReadOp(table="t", key=9), 100).value == "nine"

    def test_idempotence_across_split(self, dc):
        """Splits copy abLSNs, so replays route correctly afterwards."""
        for index in range(50):
            perform(dc, InsertOp(table="t", key=index, value=f"v{index}"), index + 1)
        assert dc.metrics.get("btree.leaf_splits") >= 1
        for index in range(50):
            result = perform(
                dc, InsertOp(table="t", key=index, value="REPLAY"), index + 1
            )
            assert result.ok
        for index in (0, 25, 49):
            assert perform(dc, ReadOp(table="t", key=index), 999).value == f"v{index}"

    def test_reads_are_not_tracked(self, dc):
        perform(dc, InsertOp(table="t", key=1, value="v"), 1)
        perform(dc, ReadOp(table="t", key=1), 7)
        # a mutation can reuse... no: ids are unique; but a read id never
        # lands in an abLSN, so a later mutation with a higher id works
        assert perform(dc, UpdateOp(table="t", key=1, value="w"), 8).ok


class TestVersionedTables:
    @pytest.fixture
    def vdc(self):
        component = DataComponent("dc", config=DcConfig(page_size=512))
        component.create_table("v", versioned=True)
        # act as an always-stable TC (the causality gate needs one)
        component.register_tc(1, force_log=lambda lsn: lsn)
        return component

    def test_pending_until_promoted(self, vdc):
        perform(vdc, InsertOp(table="v", key=1, value="new", versioned=True), 1)
        committed = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 2
        )
        assert committed.status is OpStatus.NOT_FOUND
        dirty = perform(vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.DIRTY), 3)
        assert dirty.value == "new"
        perform(vdc, PromoteVersionsOp(table="v", keys=(1,)), 4)
        committed = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 5
        )
        assert committed.value == "new"

    def test_discard_removes_pending(self, vdc):
        perform(vdc, InsertOp(table="v", key=1, value="new", versioned=True), 1)
        perform(vdc, DiscardVersionsOp(table="v", keys=(1,)), 2)
        result = perform(vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.DIRTY), 3)
        assert result.status is OpStatus.NOT_FOUND

    def test_update_keeps_before_version(self, vdc):
        perform(vdc, InsertOp(table="v", key=1, value="v1", versioned=True), 1)
        perform(vdc, PromoteVersionsOp(table="v", keys=(1,)), 2)
        perform(vdc, UpdateOp(table="v", key=1, value="v2", versioned=True), 3)
        before = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 4
        )
        assert before.value == "v1"
        perform(vdc, PromoteVersionsOp(table="v", keys=(1,)), 5)
        after = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 6
        )
        assert after.value == "v2"

    def test_versioned_delete_two_step(self, vdc):
        perform(vdc, InsertOp(table="v", key=1, value="v1", versioned=True), 1)
        perform(vdc, PromoteVersionsOp(table="v", keys=(1,)), 2)
        perform(vdc, DeleteOp(table="v", key=1, versioned=True), 3)
        # committed readers still see it until the promote
        committed = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 4
        )
        assert committed.value == "v1"
        perform(vdc, PromoteVersionsOp(table="v", keys=(1,)), 5)
        gone = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 6
        )
        assert gone.status is OpStatus.NOT_FOUND

    def test_cleanup_replay_is_idempotent(self, vdc):
        perform(vdc, InsertOp(table="v", key=1, value="v1", versioned=True), 1)
        op = PromoteVersionsOp(table="v", keys=(1,))
        perform(vdc, op, 2)
        perform(vdc, op, 2)  # resend filtered by abLSN
        fresh = PromoteVersionsOp(table="v", keys=(1,))
        perform(vdc, fresh, 3)  # restart re-issue: no pending, no-op
        result = perform(
            vdc, ReadOp(table="v", key=1, flavor=ReadFlavor.READ_COMMITTED), 4
        )
        assert result.value == "v1"

    def test_multi_key_cleanup_spans_leaves(self, vdc):
        keys = tuple(range(60))
        for index in keys:
            perform(
                vdc,
                InsertOp(table="v", key=index, value=f"v{index}", versioned=True),
                index + 1,
            )
        perform(vdc, PromoteVersionsOp(table="v", keys=keys), 100)
        result = perform(
            vdc,
            RangeReadOp(table="v", flavor=ReadFlavor.READ_COMMITTED),
            101,
        )
        assert len(result.records) == 60


class TestAdministration:
    def test_duplicate_table_rejected(self, dc):
        with pytest.raises(ReproError):
            dc.create_table("t")

    def test_crashed_dc_refuses_service(self, dc):
        dc.crash()
        with pytest.raises(CrashedError):
            dc.perform_operation(1, 1, ReadOp(table="t", key=1))
        with pytest.raises(CrashedError):
            dc.create_table("x")

    def test_heap_table(self):
        component = DataComponent("dc")
        component.create_table("h", kind="heap", bucket_count=8)
        perform(component, InsertOp(table="h", key=1, value="v"), 1)
        assert perform(component, ReadOp(table="h", key=1), 2).value == "v"

    def test_table_names(self, dc):
        dc.create_table("b")
        assert dc.table_names() == ["b", "t"]

    def test_checkpoint_dc_log_truncates(self, dc):
        for index in range(60):
            perform(dc, InsertOp(table="t", key=index, value="v"), index + 1)
        dc.end_of_stable_log(1, 60)
        dc.low_water_mark(1, 60)
        assert dc.storage.dc_log_length() > 0
        assert dc.checkpoint_dc_log()
        assert dc.storage.dc_log_length() == 0
        # data still reachable purely from disk pages
        assert perform(dc, ReadOp(table="t", key=30), 999).value == "v"
