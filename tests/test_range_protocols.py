"""The Section 3.1 range-locking protocols, compared head to head."""

from __future__ import annotations

import pytest

from repro import KernelConfig, TransactionAborted, UnbundledKernel
from repro.common.config import DcConfig, RangeLockProtocol, TcConfig
from repro.common.errors import ReproError
from repro.tc.range_protocols import RangePartitionProtocol, TABLE_END
from tests.conftest import populate


def kernel_with(protocol, lock_timeout=0.05, **tc_kwargs):
    config = KernelConfig(
        dc=DcConfig(page_size=512),
        tc=TcConfig(range_protocol=protocol, lock_timeout=lock_timeout, **tc_kwargs),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestFetchAheadProtocol:
    def test_scan_returns_correct_rows(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD)
        populate(kernel, 60)
        with kernel.begin() as txn:
            rows = txn.scan("t", 10, 40)
        assert [key for key, _v in rows] == list(range(10, 41))

    def test_probe_messages_sent(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD)
        populate(kernel, 60)
        probes_before = kernel.metrics.get("tc.probes")
        with kernel.begin() as txn:
            txn.scan("t", 0, 59)
        # 60 keys / batch 16 -> at least 4 probe round trips + boundary
        assert kernel.metrics.get("tc.probes") - probes_before >= 4

    def test_batch_size_controls_probe_count(self):
        for batch, expect_max in ((8, 60), (64, 3)):
            kernel = kernel_with(
                RangeLockProtocol.FETCH_AHEAD, fetch_ahead_batch=batch
            )
            populate(kernel, 60)
            before = kernel.metrics.get("tc.probes")
            with kernel.begin() as txn:
                txn.scan("t")
            used = kernel.metrics.get("tc.probes") - before
            assert used <= expect_max

    def test_scan_locks_records_and_gaps(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD)
        populate(kernel, 20)
        txn = kernel.begin()
        txn.scan("t", 5, 10)
        from repro.tc.lock_manager import LockMode

        assert kernel.tc.locks.holds(txn.txn_id, ("rec", "t", 7), LockMode.S)
        assert kernel.tc.locks.holds(txn.txn_id, ("gap", "t", 7), LockMode.S)
        txn.commit()

    def test_insert_takes_gap_lock_on_successor(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD)
        for key in (10, 30):
            with kernel.begin() as txn:
                txn.insert("t", key, "v")
        txn = kernel.begin()
        txn.insert("t", 20, "between")
        from repro.tc.lock_manager import LockMode

        assert kernel.tc.locks.holds(txn.txn_id, ("gap", "t", 30), LockMode.X)
        txn.commit()

    def test_insert_at_end_locks_table_end(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD)
        txn = kernel.begin()
        txn.insert("t", 99, "last")
        from repro.tc.lock_manager import LockMode

        assert kernel.tc.locks.holds(txn.txn_id, ("gap", "t", TABLE_END), LockMode.X)
        txn.commit()

    def test_phantom_protection_off_skips_gap_locks(self):
        kernel = kernel_with(
            RangeLockProtocol.FETCH_AHEAD, phantom_protection=False
        )
        populate(kernel, 10)
        before = kernel.metrics.get("tc.gap_locks")
        with kernel.begin() as txn:
            txn.scan("t", 2, 5)
            txn.insert("t", 100, "x")
        assert kernel.metrics.get("tc.gap_locks") == before

    def test_concurrent_nonoverlapping_scans_coexist(self):
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD, lock_timeout=0.5)
        populate(kernel, 40)
        a = kernel.begin()
        b = kernel.begin()
        assert len(a.scan("t", 0, 9)) == 10
        assert len(b.scan("t", 20, 29)) == 10  # no conflict
        a.commit()
        b.commit()


class TestFetchAheadVisibility:
    """Regression: probes must skip structurally-present but invisible
    slots, or the probe/read validation loop never converges."""

    def _versioned_kernel(self):
        from repro import KernelConfig, UnbundledKernel
        from repro.common.config import DcConfig

        kernel = UnbundledKernel(
            KernelConfig(dc=DcConfig(page_size=512, snapshot_retention=1000))
        )
        kernel.create_table("v", versioned=True)
        return kernel

    def test_scan_over_tombstone_slot_terminates(self):
        kernel = self._versioned_kernel()
        with kernel.begin() as txn:
            for key in range(5):
                txn.insert("v", key, f"v{key}")
        with kernel.begin() as txn:
            txn.delete("v", 2)  # slot survives with snapshot history
        with kernel.begin() as txn:
            rows = txn.scan("v")
        assert [key for key, _v in rows] == [0, 1, 3, 4]

    def test_own_pending_delete_also_skipped(self):
        kernel = self._versioned_kernel()
        with kernel.begin() as setup:
            for key in range(5):
                setup.insert("v", key, f"v{key}")
        with kernel.begin() as txn:
            txn.delete("v", 2)
            rows = txn.scan("v")  # same-transaction scan sees its delete
            assert [key for key, _v in rows] == [0, 1, 3, 4]

    def test_probe_skips_invisible_anchor(self):
        kernel = self._versioned_kernel()
        with kernel.begin() as txn:
            for key in range(5):
                txn.insert("v", key, f"v{key}")
        with kernel.begin() as txn:
            txn.delete("v", 2)
        keys = kernel.tc.probe_keys("v", after=1, count=2)
        assert keys == [3, 4]


class TestRangePartitionProtocol:
    def _kernel(self, boundaries=(25, 50, 75)):
        kernel = kernel_with(RangeLockProtocol.RANGE_PARTITION)
        kernel.tc.protocol.set_boundaries("t", list(boundaries))
        populate(kernel, 100)
        return kernel

    def test_scan_returns_correct_rows(self):
        kernel = self._kernel()
        with kernel.begin() as txn:
            rows = txn.scan("t", 30, 60)
        assert [key for key, _v in rows] == list(range(30, 61))

    def test_no_probe_messages(self):
        kernel = self._kernel()
        before = kernel.metrics.get("tc.probes")
        with kernel.begin() as txn:
            txn.scan("t", 0, 99)
        assert kernel.metrics.get("tc.probes") == before

    def test_partition_of(self):
        protocol = RangePartitionProtocol.__new__(RangePartitionProtocol)
        protocol._tc = None  # type: ignore[assignment]
        protocol._boundaries = {"t": [25, 50, 75]}
        assert protocol.partition_of("t", 0) == 0
        assert protocol.partition_of("t", 25) == 1
        assert protocol.partition_of("t", 74) == 2
        assert protocol.partition_of("t", 99) == 3

    def test_scan_locks_only_touched_partitions(self):
        kernel = self._kernel()
        txn = kernel.begin()
        txn.scan("t", 30, 40)  # entirely inside partition 1
        from repro.tc.lock_manager import LockMode

        assert kernel.tc.locks.holds(txn.txn_id, ("part", "t", 1), LockMode.S)
        assert not kernel.tc.locks.holds(txn.txn_id, ("part", "t", 0), LockMode.S)
        txn.commit()

    def test_scan_blocks_insert_in_same_partition(self):
        """Coarse phantom protection: partition S vs partition IX."""
        kernel = self._kernel()
        scanner = kernel.begin()
        scanner.scan("t", 30, 40)
        inserter = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            # key 45 lives in the scanned partition: the IX partition lock
            # conflicts with the scanner's S before any existence check
            inserter.insert("t", 45, "v")
        scanner.commit()

    def test_insert_in_other_partition_proceeds(self):
        kernel = self._kernel()
        scanner = kernel.begin()
        scanner.scan("t", 30, 40)  # partition 1
        with kernel.begin() as other:
            other.insert("t", 10_000, "partition 3, no conflict")
        scanner.commit()

    def test_unconfigured_table_degenerates_to_table_lock(self):
        """"Many systems ... permit table locks" — zero boundaries means
        one partition covering everything."""
        kernel = kernel_with(RangeLockProtocol.RANGE_PARTITION)
        populate(kernel, 10)
        scanner = kernel.begin()
        scanner.scan("t", 0, 3)
        blocked = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            blocked.insert("t", 999, "v")
        scanner.commit()


class TestProtocolComparison:
    """The paper's trade-off: fewer locks vs less concurrency."""

    def test_partition_protocol_takes_fewer_locks(self):
        results = {}
        for protocol in (
            RangeLockProtocol.FETCH_AHEAD,
            RangeLockProtocol.RANGE_PARTITION,
        ):
            kernel = kernel_with(protocol)
            if protocol is RangeLockProtocol.RANGE_PARTITION:
                kernel.tc.protocol.set_boundaries("t", [25, 50, 75])
            populate(kernel, 100)
            before = kernel.metrics.get("locks.granted")
            with kernel.begin() as txn:
                txn.scan("t", 0, 99)
            results[protocol] = kernel.metrics.get("locks.granted") - before
        assert (
            results[RangeLockProtocol.RANGE_PARTITION]
            < results[RangeLockProtocol.FETCH_AHEAD] / 10
        )

    def test_fetch_ahead_allows_finer_concurrency(self):
        """Two scans inside what would be one partition coexist under
        fetch-ahead but conflict under a whole-table partition lock
        when one of them writes."""
        kernel = kernel_with(RangeLockProtocol.FETCH_AHEAD, lock_timeout=0.5)
        populate(kernel, 50)
        scanner = kernel.begin()
        scanner.scan("t", 0, 10)
        with kernel.begin() as writer:
            writer.update("t", 30, "fine under fetch-ahead")
        scanner.commit()

        kernel2 = kernel_with(RangeLockProtocol.RANGE_PARTITION)
        populate(kernel2, 50)  # no boundaries: table lock
        scanner2 = kernel2.begin()
        scanner2.scan("t", 0, 10)
        writer2 = kernel2.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            writer2.update("t", 30, "blocked by the table lock")
        scanner2.commit()
