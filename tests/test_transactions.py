"""TC transaction semantics: ACID surface, rollback, isolation, errors."""

from __future__ import annotations

import threading

import pytest

from repro import (
    DuplicateKeyError,
    KernelConfig,
    NoSuchRecordError,
    ReadFlavor,
    TransactionAborted,
    UnbundledKernel,
)
from repro.common.config import ChannelConfig, DcConfig, TcConfig
from repro.common.errors import ReproError
from repro.tc.transactional_component import TransactionState
from tests.conftest import populate


class TestBasics:
    def test_read_your_own_writes(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
            assert txn.read("t", 1) == "v1"
            txn.update("t", 1, "v2")
            assert txn.read("t", 1) == "v2"
            txn.delete("t", 1)
            assert txn.read("t", 1) is None

    def test_committed_data_visible_to_next_txn(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "v")
        with kernel.begin() as txn:
            assert txn.read("t", 1) == "v"

    def test_duplicate_insert_raises_without_side_effect(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "v")
        txn = kernel.begin()
        with pytest.raises(DuplicateKeyError):
            txn.insert("t", 1, "w")
        txn.abort()
        with kernel.begin() as check:
            assert check.read("t", 1) == "v"

    def test_update_and_delete_missing_raise(self, kernel):
        txn = kernel.begin()
        with pytest.raises(NoSuchRecordError):
            txn.update("t", 404, "x")
        with pytest.raises(NoSuchRecordError):
            txn.delete("t", 404)
        txn.abort()

    def test_failed_mutations_never_reach_the_log(self, kernel):
        """The TC validates under its locks before logging, so the log
        holds only operations that really executed (sound undo info)."""
        appends_before = kernel.metrics.get("tclog.appends")
        txn = kernel.begin()
        with pytest.raises(NoSuchRecordError):
            txn.update("t", 404, "x")
        txn.abort()
        # only the abort/end control records were appended, no OpRecord
        from repro.tc.log import OpRecord

        ops = [r for r in kernel.tc.log.all_records() if isinstance(r, OpRecord)]
        assert ops == []

    def test_context_manager_commits_on_success(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "v")
        assert txn.state is TransactionState.COMMITTED

    def test_context_manager_aborts_on_exception(self, kernel):
        with pytest.raises(RuntimeError):
            with kernel.begin() as txn:
                txn.insert("t", 1, "v")
                raise RuntimeError("app failure")
        assert txn.state is TransactionState.ABORTED
        with kernel.begin() as check:
            assert check.read("t", 1) is None

    def test_using_finished_txn_raises(self, kernel):
        txn = kernel.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.insert("t", 1, "v")


class TestRollback:
    def test_abort_reverses_in_reverse_order(self, kernel):
        with kernel.begin() as setup:
            setup.insert("t", 1, "one")
            setup.insert("t", 2, "two")
        txn = kernel.begin()
        txn.update("t", 1, "one-a")
        txn.update("t", 1, "one-b")
        txn.delete("t", 2)
        txn.insert("t", 3, "three")
        txn.abort()
        with kernel.begin() as check:
            assert check.read("t", 1) == "one"
            assert check.read("t", 2) == "two"
            assert check.read("t", 3) is None

    def test_abort_logs_compensation_records(self, kernel):
        from repro.tc.log import CompensationRecord

        txn = kernel.begin()
        txn.insert("t", 1, "v")
        txn.abort()
        clrs = [
            r
            for r in kernel.tc.log.all_records()
            if isinstance(r, CompensationRecord)
        ]
        assert len(clrs) == 1

    def test_abort_empty_txn(self, kernel):
        txn = kernel.begin()
        txn.abort()
        assert txn.state is TransactionState.ABORTED

    def test_double_abort_is_noop(self, kernel):
        txn = kernel.begin()
        txn.insert("t", 1, "v")
        txn.abort()
        txn.abort()


class TestIsolation:
    def test_write_blocks_conflicting_write(self):
        config = KernelConfig(tc=TcConfig(lock_timeout=0.05))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        with kernel.begin() as setup:
            setup.insert("t", 1, "v")
        holder = kernel.begin()
        holder.update("t", 1, "held")
        other = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            other.update("t", 1, "blocked")
        holder.commit()

    def test_readers_block_writers(self):
        config = KernelConfig(tc=TcConfig(lock_timeout=0.05))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        with kernel.begin() as setup:
            setup.insert("t", 1, "v")
        reader = kernel.begin()
        assert reader.read("t", 1) == "v"
        writer = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            writer.update("t", 1, "w")
        reader.commit()

    def test_phantom_prevention_scan_blocks_insert(self):
        """A scanned range's gap locks block inserts into it
        (serializability via the fetch-ahead next-key locks)."""
        config = KernelConfig(tc=TcConfig(lock_timeout=0.05))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for key in range(0, 20, 2):  # evens: gaps at odd keys
            with kernel.begin() as txn:
                txn.insert("t", key, "v")
        scanner = kernel.begin()
        assert len(scanner.scan("t", 4, 12)) == 5
        inserter = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            inserter.insert("t", 7, "phantom")  # inside the scanned range
        scanner.commit()
        with kernel.begin() as retry:
            retry.insert("t", 7, "now fine")

    def test_phantom_gap_above_range(self):
        config = KernelConfig(tc=TcConfig(lock_timeout=0.05))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for key in (10, 20, 30):
            with kernel.begin() as txn:
                txn.insert("t", key, "v")
        scanner = kernel.begin()
        scanner.scan("t", 10, 25)
        blocked = kernel.begin()
        with pytest.raises((TransactionAborted, ReproError)):
            blocked.insert("t", 22, "phantom")  # inside scanned range
        scanner.commit()
        with kernel.begin() as retry:
            retry.insert("t", 22, "now fine")

    def test_deadlock_victim_aborted_and_retry_succeeds(self):
        config = KernelConfig(tc=TcConfig(lock_timeout=2.0))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        with kernel.begin() as setup:
            setup.insert("t", 1, "a")
            setup.insert("t", 2, "b")
        t1 = kernel.begin()
        t2 = kernel.begin()
        t1.update("t", 1, "t1")
        t2.update("t", 2, "t2")
        results = {}

        def t1_closes():
            try:
                t1.update("t", 2, "t1")
                t1.commit()
                results["t1"] = "ok"
            except TransactionAborted:
                results["t1"] = "aborted"

        thread = threading.Thread(target=t1_closes)
        thread.start()
        try:
            t2.update("t", 1, "t2")
            t2.commit()
            results["t2"] = "ok"
        except TransactionAborted:
            results["t2"] = "aborted"
        thread.join(timeout=5)
        assert sorted(results.values()) == ["aborted", "ok"]
        # database consistent afterwards
        with kernel.begin() as check:
            values = {check.read("t", 1), check.read("t", 2)}
            assert values in ({"t1"}, {"t2"})


class TestMultiDcTransactions:
    def test_one_txn_two_dcs_single_commit_point(self):
        """A TC spanning DCs needs no 2PC: one log force commits both."""
        kernel = UnbundledKernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        with kernel.begin() as txn:
            txn.insert("a", 1, "on-dc1")
            txn.insert("b", 1, "on-dc2")
        assert kernel.metrics.get("tclog.forces") >= 1
        with kernel.begin() as check:
            assert check.read("a", 1) == "on-dc1"
            assert check.read("b", 1) == "on-dc2"

    def test_cross_dc_abort(self):
        kernel = UnbundledKernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        txn = kernel.begin()
        txn.insert("a", 1, "x")
        txn.insert("b", 1, "y")
        txn.abort()
        with kernel.begin() as check:
            assert check.read("a", 1) is None
            assert check.read("b", 1) is None

    def test_unknown_table_raises(self, kernel):
        txn = kernel.begin()
        with pytest.raises(ReproError):
            txn.insert("missing", 1, "v")
        txn.abort()


class TestScans:
    def test_scan_sees_own_uncommitted_writes(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "a")
            txn.insert("t", 2, "b")
            assert txn.scan("t") == [(1, "a"), (2, "b")]

    def test_scan_bounds_and_limit(self, populated_kernel):
        with populated_kernel.begin() as txn:
            rows = txn.scan("t", 10, 20)
            assert [k for k, _v in rows] == list(range(10, 21))
            assert len(txn.scan("t", limit=5)) == 5

    def test_scan_empty_table(self, kernel):
        with kernel.begin() as txn:
            assert txn.scan("t") == []

    def test_lossy_channel_transactions_still_exact_once(self):
        config = KernelConfig(channel=ChannelConfig(loss_rate=0.25, seed=5))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for key in range(40):
            with kernel.begin() as txn:
                txn.insert("t", key, key)
        with kernel.begin() as txn:
            rows = txn.scan("t")
        assert rows == [(key, key) for key in range(40)]
        assert kernel.metrics.get("tc.resends") > 0
