"""Pages: slotted leaves, inner routing, abLSN bookkeeping, record reset."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.lsn import AbstractLsn, NULL_LSN
from repro.common.records import VersionedRecord
from repro.storage.page import (
    InnerPage,
    LeafPage,
    PAGE_HEADER_BYTES,
    PageImage,
    PageKind,
)


def rec(key, value="v", owner=0):
    return VersionedRecord(key=key, committed=value, owner_tc=owner)


class TestLeafBasics:
    def test_put_get_remove(self):
        leaf = LeafPage(1)
        leaf.put(rec(5))
        assert leaf.get(5) is not None
        assert leaf.get(6) is None
        removed = leaf.remove(5)
        assert removed is not None and removed.key == 5
        assert leaf.get(5) is None

    def test_keys_stay_sorted(self):
        leaf = LeafPage(1)
        for key in (5, 1, 9, 3, 7):
            leaf.put(rec(key))
        assert leaf.keys() == [1, 3, 5, 7, 9]
        assert [r.key for r in leaf.records_in_order()] == [1, 3, 5, 7, 9]

    def test_put_replaces_slot(self):
        leaf = LeafPage(1)
        leaf.put(rec(1, "a"))
        leaf.put(rec(1, "bb"))
        assert leaf.record_count() == 1
        assert leaf.get(1).committed == "bb"

    def test_range_inclusive_bounds(self):
        leaf = LeafPage(1)
        for key in range(10):
            leaf.put(rec(key))
        assert [r.key for r in leaf.range(3, 6)] == [3, 4, 5, 6]
        assert [r.key for r in leaf.range(None, 2)] == [0, 1, 2]
        assert [r.key for r in leaf.range(8, None)] == [8, 9]

    def test_keys_after_and_from(self):
        leaf = LeafPage(1)
        for key in (2, 4, 6):
            leaf.put(rec(key))
        assert list(leaf.keys_after(4)) == [6]
        assert list(leaf.keys_from(4)) == [4, 6]
        assert list(leaf.keys_after(None)) == [2, 4, 6]

    def test_min_max(self):
        leaf = LeafPage(1)
        assert leaf.min_key() is None and leaf.max_key() is None
        for key in (3, 1, 2):
            leaf.put(rec(key))
        assert leaf.min_key() == 1 and leaf.max_key() == 3


class TestLeafSpaceModel:
    def test_empty_page_has_header_only(self):
        assert LeafPage(1).used_bytes() == PAGE_HEADER_BYTES

    def test_used_bytes_tracks_puts_and_removes(self):
        leaf = LeafPage(1)
        record = rec(1, "hello")
        leaf.put(record)
        assert leaf.used_bytes() == PAGE_HEADER_BYTES + record.encoded_size()
        leaf.remove(1)
        assert leaf.used_bytes() == PAGE_HEADER_BYTES

    def test_fits(self):
        leaf = LeafPage(1)
        assert leaf.fits(10, PAGE_HEADER_BYTES + 10)
        assert not leaf.fits(11, PAGE_HEADER_BYTES + 10)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.text(max_size=20),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    def test_used_bytes_always_consistent(self, steps):
        """Property: incremental accounting == recomputed-from-scratch."""
        leaf = LeafPage(1)
        for key, value, is_remove in steps:
            if is_remove:
                leaf.remove(key)
            else:
                leaf.put(rec(key, value))
        recomputed = PAGE_HEADER_BYTES + sum(
            r.encoded_size() for r in leaf.records_in_order()
        )
        assert leaf.used_bytes() == recomputed
        assert leaf.keys() == sorted(leaf.keys())


class TestSplitHelpers:
    def test_choose_split_key_balances_bytes(self):
        leaf = LeafPage(1)
        for key in range(10):
            leaf.put(rec(key, "x" * 10))
        split = leaf.choose_split_key()
        assert 1 <= split <= 9

    def test_split_needs_two_records(self):
        leaf = LeafPage(1)
        leaf.put(rec(1))
        with pytest.raises(ValueError):
            leaf.choose_split_key()

    def test_extract_from_moves_upper_half(self):
        leaf = LeafPage(1)
        for key in range(10):
            leaf.put(rec(key))
        moved = leaf.extract_from(6)
        assert [r.key for r in moved] == [6, 7, 8, 9]
        assert leaf.keys() == [0, 1, 2, 3, 4, 5]
        recomputed = PAGE_HEADER_BYTES + sum(
            r.encoded_size() for r in leaf.records_in_order()
        )
        assert leaf.used_bytes() == recomputed


class TestAbLsnOnPages:
    def test_ablsn_created_on_demand_per_tc(self):
        leaf = LeafPage(1)
        leaf.ablsn_for(1).include(5)
        leaf.ablsn_for(2).include(9)
        assert leaf.ablsn_for(1).contains(5)
        assert not leaf.ablsn_for(1).contains(9)
        assert leaf.ablsn_for(2).contains(9)

    def test_apply_low_water_only_named_tc(self):
        leaf = LeafPage(1)
        leaf.ablsn_for(1).include(5)
        leaf.ablsn_for(2).include(5)
        leaf.apply_low_water(1, 10)
        assert leaf.ablsn_for(1).low_water == 10
        assert leaf.ablsn_for(2).low_water == NULL_LSN

    def test_reflects_loss(self):
        leaf = LeafPage(1)
        leaf.ablsn_for(1).include(8)
        assert leaf.reflects_loss(1, 7)
        assert not leaf.reflects_loss(1, 8)
        assert not leaf.reflects_loss(2, 0)

    def test_overhead_and_pending_counts(self):
        leaf = LeafPage(1)
        leaf.ablsn_for(1).include(5)
        leaf.ablsn_for(1).include(6)
        leaf.ablsn_for(2).include(7)
        assert leaf.pending_lsn_count() == 3
        assert leaf.ablsn_overhead_bytes() > 0


class TestRecordLevelReset:
    """Section 6.1.2: replace only the failed TC's records from disk."""

    def _page_with_two_tcs(self):
        leaf = LeafPage(1)
        leaf.put(rec(1, "tc1-old", owner=1))
        leaf.put(rec(2, "tc2-data", owner=2))
        leaf.ablsn_for(1).include(10)
        leaf.ablsn_for(2).include(11)
        disk = leaf.snapshot()
        # now TC1 updates its record beyond the stable log
        updated = leaf.get(1).clone()
        updated.committed = "tc1-lost-update"
        leaf.put(updated)
        leaf.ablsn_for(1).include(20)  # the lost operation
        return leaf, disk

    def test_reset_restores_failed_tc_only(self):
        leaf, disk = self._page_with_two_tcs()
        changed = leaf.reset_tc_records(1, disk)
        assert changed == 2  # removed + restored
        assert leaf.get(1).committed == "tc1-old"
        assert leaf.get(2).committed == "tc2-data"  # untouched
        assert not leaf.ablsn_for(1).contains(20)
        assert leaf.ablsn_for(1).contains(10)
        assert leaf.ablsn_for(2).contains(11)  # other TC's abLSN intact

    def test_reset_without_disk_baseline_drops_records(self):
        leaf, _disk = self._page_with_two_tcs()
        leaf.reset_tc_records(1, None)
        assert leaf.get(1) is None
        assert leaf.get(2) is not None
        assert leaf.ablsn_for(1).is_null()


class TestInnerPage:
    def _inner(self):
        inner = InnerPage(10)
        inner.separators = [10, 20]
        inner.children = [1, 2, 3]
        return inner

    def test_routing(self):
        inner = self._inner()
        assert inner.child_for(5) == 1
        assert inner.child_for(10) == 2  # separator routes right
        assert inner.child_for(15) == 2
        assert inner.child_for(25) == 3

    def test_insert_child(self):
        inner = self._inner()
        inner.insert_child(15, 9)
        assert inner.separators == [10, 15, 20]
        assert inner.children == [1, 2, 9, 3]
        assert inner.child_for(17) == 9

    def test_remove_child(self):
        inner = self._inner()
        inner.remove_child(2)
        assert inner.separators == [20]
        assert inner.children == [1, 3]

    def test_cannot_remove_leftmost(self):
        inner = self._inner()
        with pytest.raises(ValueError):
            inner.remove_child(1)

    def test_used_bytes_grows_with_children(self):
        inner = self._inner()
        before = inner.used_bytes()
        inner.insert_child(30, 4)
        assert inner.used_bytes() > before


class TestPageImage:
    def test_leaf_roundtrip(self):
        leaf = LeafPage(7)
        leaf.put(rec(1, "a", owner=3))
        leaf.dlsn = 5
        leaf.page_lsn = 9
        leaf.ablsn_for(3).include(4)
        image = leaf.snapshot()
        clone = image.materialize()
        assert isinstance(clone, LeafPage)
        assert clone.page_id == 7 and clone.dlsn == 5 and clone.page_lsn == 9
        assert clone.get(1).committed == "a"
        assert clone.ablsn_for(3).contains(4)
        assert not clone.dirty

    def test_image_isolated_from_source(self):
        leaf = LeafPage(7)
        leaf.put(rec(1, "a"))
        image = leaf.snapshot()
        leaf.get(1).committed = "mutated"
        leaf.ablsn_for(1).include(99)
        clone = image.materialize()
        assert clone.get(1).committed == "a"
        assert not clone.ablsn_for(1).contains(99)

    def test_inner_roundtrip(self):
        inner = InnerPage(8)
        inner.separators = [5]
        inner.children = [1, 2]
        inner.dlsn = 3
        clone = inner.snapshot().materialize()
        assert isinstance(clone, InnerPage)
        assert clone.separators == [5] and clone.children == [1, 2]

    def test_encoded_size_positive(self):
        leaf = LeafPage(1)
        leaf.put(rec(1))
        assert leaf.snapshot().encoded_size() > PAGE_HEADER_BYTES

    def test_kind_preserved(self):
        assert LeafPage(1).snapshot().kind is PageKind.LEAF
        assert InnerPage(1).snapshot().kind is PageKind.INNER
