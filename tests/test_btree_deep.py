"""Deep structural B-tree scenarios: churn waves, page-size extremes."""

from __future__ import annotations

import random

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig


def kernel_with_page_size(page_size):
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=page_size)))
    kernel.create_table("t")
    return kernel


class TestPageSizeExtremes:
    @pytest.mark.parametrize("page_size", [256, 512, 2048, 16384])
    def test_load_and_verify_across_page_sizes(self, page_size):
        kernel = kernel_with_page_size(page_size)
        with kernel.begin() as txn:
            for key in range(300):
                txn.insert("t", key, f"v{key:04d}")
        structure = kernel.dc.table("t").structure
        structure.validate()
        assert structure.record_count() == 300
        with kernel.begin() as txn:
            assert len(txn.scan("t", 100, 199)) == 100

    def test_tiny_pages_build_deep_trees(self):
        kernel = kernel_with_page_size(256)
        with kernel.begin() as txn:
            for key in range(400):
                txn.insert("t", key, "x")
        structure = kernel.dc.table("t").structure
        assert structure.depth() >= 3
        structure.validate()
        kernel.crash_all()
        kernel.recover_all()
        kernel.dc.table("t").structure.validate()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 400


class TestChurnWaves:
    def test_alternating_load_and_drain_waves(self):
        """Grow to N, drain to N/10, regrow — splits and merges interleave
        and every wave must leave a valid tree matching a model."""
        kernel = kernel_with_page_size(512)
        rng = random.Random(11)
        model: dict[int, str] = {}
        for wave in range(4):
            # grow
            for _ in range(120):
                key = rng.randrange(500)
                if key not in model:
                    with kernel.begin() as txn:
                        txn.insert("t", key, f"w{wave}.{key}")
                    model[key] = f"w{wave}.{key}"
            # drain
            victims = rng.sample(sorted(model), k=int(len(model) * 0.8))
            for key in victims:
                with kernel.begin() as txn:
                    txn.delete("t", key)
                del model[key]
            structure = kernel.dc.table("t").structure
            structure.validate()
            with kernel.begin() as txn:
                assert dict(txn.scan("t")) == model
        assert kernel.metrics.get("btree.leaf_splits") > 0
        assert kernel.metrics.get("btree.consolidations") > 0

    def test_churn_with_crashes_between_waves(self):
        kernel = kernel_with_page_size(512)
        rng = random.Random(13)
        model: dict[int, int] = {}
        for wave in range(3):
            for _ in range(100):
                key = rng.randrange(300)
                with kernel.begin() as txn:
                    if key in model:
                        txn.delete("t", key)
                        del model[key]
                    else:
                        txn.insert("t", key, wave)
                        model[key] = wave
            if wave % 2 == 0:
                kernel.crash_dc()
                kernel.recover_dc()
            else:
                kernel.crash_tc()
                kernel.recover_tc()
            with kernel.begin() as txn:
                assert dict(txn.scan("t")) == model
            kernel.dc.table("t").structure.validate()


class TestKeyShapes:
    def test_long_string_keys(self):
        kernel = kernel_with_page_size(2048)
        prefixes = ["alpha", "bravo", "charlie", "delta"]
        with kernel.begin() as txn:
            for prefix in prefixes:
                for index in range(30):
                    txn.insert("t", f"{prefix}/{index:04d}", index)
        with kernel.begin() as txn:
            bravo = txn.scan("t", "bravo/", "bravo/￿")
        assert len(bravo) == 30
        kernel.dc.table("t").structure.validate()

    def test_deeply_nested_tuple_keys(self):
        kernel = kernel_with_page_size(2048)
        with kernel.begin() as txn:
            for a in range(3):
                for b in range(3):
                    for c in range(3):
                        txn.insert("t", (a, (b, c)), a * 100 + b * 10 + c)
        with kernel.begin() as txn:
            rows = txn.scan("t")
        assert len(rows) == 27
        assert [key for key, _v in rows] == sorted(key for key, _v in rows)

    def test_negative_and_zero_numeric_keys(self):
        kernel = kernel_with_page_size(512)
        keys = [-50, -1, 0, 1, 50, -25, 25]
        with kernel.begin() as txn:
            for key in keys:
                txn.insert("t", key, key)
        with kernel.begin() as txn:
            scanned = [key for key, _v in txn.scan("t")]
        assert scanned == sorted(keys)
        with kernel.begin() as txn:
            assert [k for k, _v in txn.scan("t", -30, 10)] == [-25, -1, 0, 1]
