"""The deterministic fault-injection engine and the chaos torture runner.

Covers the two reproducibility contracts:

- the **engine** — rules fire on exact hit counts, random schedules are a
  pure function of the seed, and ``describe()`` carries everything needed
  to replay a failure;
- the **runner** — a fixed-seed scripted schedule spanning disk, channel,
  TC and DC crash points completes with zero invariant violations, the
  supervisor healing every crash without a manual ``restart()``.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.chaos

from repro.common.config import ChannelConfig, TcConfig
from repro.common.errors import CrashedError, InjectedFault
from repro.sim.chaos import ChaosRunner, ChaosViolation, HistoryRecorder, _TxnEffects
from repro.sim.faults import FaultAction, FaultInjector, FaultPoint, FaultRule


class _Crashable:
    def __init__(self) -> None:
        self.crashes = 0

    def crash(self) -> None:
        self.crashes += 1


class TestFaultInjectorDeterminism:
    def test_rule_fires_on_exact_hit_count(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP, after=3)]
        )
        outcomes = [injector.hit(FaultPoint.CHANNEL_SEND, "dc1") for _ in range(5)]
        assert [o.action if o else None for o in outcomes] == [
            None,
            None,
            FaultAction.DROP,
            None,
            None,
        ]

    def test_target_filter(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP, target="dc2")]
        )
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is None
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc2") is not None

    def test_drop_burst_extends_over_count_hits(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_RECV, FaultAction.DROP, after=1, count=3)]
        )
        fired = [injector.hit(FaultPoint.CHANNEL_RECV, "dc1") for _ in range(5)]
        assert [o is not None for o in fired] == [True, True, True, False, False]

    def test_crash_rule_crashes_registered_component(self):
        component = _Crashable()
        injector = FaultInjector(
            [FaultRule(FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, target="tc1")]
        )
        injector.register_component("tc1", "tc", component.crash)
        with pytest.raises(CrashedError):
            injector.hit(FaultPoint.TC_LOG_FORCE, "tc1")
        assert component.crashes == 1

    def test_fail_rule_raises_injected_fault(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.BUFFER_FLUSH, FaultAction.FAIL)]
        )
        with pytest.raises(InjectedFault):
            injector.hit(FaultPoint.BUFFER_FLUSH, "dc1")

    def test_partition_persists_until_heal(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.PARTITION, target="dc1")]
        )
        assert not injector.partitioned("dc1")
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is not None
        assert injector.partitioned("dc1")
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is not None
        assert injector.heal() == 1
        assert not injector.partitioned("dc1")
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is None

    def test_delay_outcome_carries_delay(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DELAY, delay_ms=7.5)]
        )
        outcome = injector.hit(FaultPoint.CHANNEL_SEND, "dc1")
        assert outcome.action == FaultAction.DELAY
        assert outcome.delay_ms == 7.5

    def test_random_rules_are_pure_function_of_seed(self):
        a = FaultInjector.random_rules(11, ["dc1", "dc2"], ["tc1"], rules=9)
        b = FaultInjector.random_rules(11, ["dc1", "dc2"], ["tc1"], rules=9)
        c = FaultInjector.random_rules(12, ["dc1", "dc2"], ["tc1"], rules=9)
        assert [r.describe() for r in a] == [r.describe() for r in b]
        assert [r.describe() for r in a] != [r.describe() for r in c]

    def test_describe_carries_seed_schedule_and_trace(self):
        injector = FaultInjector(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP)], seed=42
        )
        injector.hit(FaultPoint.CHANNEL_SEND, "dc1")
        recipe = injector.describe()
        assert "seed=42" in recipe
        assert "channel.send" in recipe
        assert "fired=[channel.send[dc1] -> drop]" in recipe

    def test_load_schedule_resets_hit_counts(self):
        rule = FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP, after=2)
        injector = FaultInjector([rule])
        injector.hit(FaultPoint.CHANNEL_SEND, "dc1")
        injector.load_schedule([rule])
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is None  # count reset
        assert injector.hit(FaultPoint.CHANNEL_SEND, "dc1") is not None


class TestHistoryRecorder:
    def test_apply_and_table_items(self):
        history = HistoryRecorder()
        effects = _TxnEffects(0)
        effects.record("t", 1, None, "a")
        effects.record("t", 2, None, "b")
        effects.record("t", 2, "b", None)  # inserted then deleted
        history.apply(effects)
        assert history.table_items("t") == {1: "a"}

    def test_record_keeps_first_pre_and_last_post(self):
        effects = _TxnEffects(0)
        effects.record("t", 1, "old", "mid")
        effects.record("t", 1, "mid", "new")
        assert effects.writes[("t", 1)] == ("old", "new")


#: Fixed scripted schedule for the CI smoke: five distinct fault types
#: across disk, channel, TC and DC crash points.  TC rules use an empty
#: target (= any TC) because TC ids are allocated globally and the name
#: depends on how many TCs earlier tests created.
SMOKE_SCHEDULE = [
    FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP, target="dc1", after=9, count=3),
    FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DELAY, target="dc2", after=4, delay_ms=25.0),
    FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.PARTITION, target="dc1", after=120),
    FaultRule(FaultPoint.CHANNEL_RECV, FaultAction.DROP, target="dc2", after=31, count=2),
    FaultRule(FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, after=25),
    FaultRule(FaultPoint.DISK_PAGE_WRITE, FaultAction.CRASH, target="dc1", after=2),
    FaultRule(FaultPoint.BUFFER_FLUSH, FaultAction.CRASH, target="dc2", after=2),
    FaultRule(FaultPoint.TC_CHECKPOINT, FaultAction.CRASH, after=2),
]


class TestChaosRunner:
    def test_scripted_smoke_zero_violations(self):
        """The acceptance run: >=5 distinct fault types across disk,
        channel, TC and DC crash points; every crash healed by the
        supervisor; zero invariant violations."""
        runner = ChaosRunner(seed=1234, schedule=list(SMOKE_SCHEDULE), txns=120)
        report = runner.run()  # raises ChaosViolation on any broken invariant
        fired_types = {
            entry.split(" -> ")[1] for entry in runner.injector.fired
        }
        fired_points = set(report["fault_points_hit"])
        assert len(fired_points | fired_types) >= 5
        assert {"tc.log_force", "disk.page_write", "channel.send"} <= fired_points
        assert report["faults_fired"] >= 5
        # every crash notice was healed by the supervisor, not by the test
        assert runner.supervisor.notices, "schedule must actually crash something"
        assert all(notice.healed for notice in runner.supervisor.notices)
        assert runner.supervisor.all_healthy()

    def test_random_mode_reproducible(self):
        first = ChaosRunner(seed=7, txns=60).run()
        second = ChaosRunner(seed=7, txns=60).run()
        # The recipe embeds the TC's globally-allocated name; everything
        # observable must be a pure function of the seed.
        strip = lambda report: {k: v for k, v in report.items() if k != "recipe"}
        assert strip(first) == strip(second)

    def test_seed_sweep_small(self):
        for seed in range(4):
            report = ChaosRunner(seed=seed, txns=80).run()
            assert report["committed"] + report["aborted"] + report[
                "resolved_committed"
            ] + report["resolved_aborted"] == 80

    def test_violation_message_carries_recipe(self):
        runner = ChaosRunner(seed=3, txns=10)
        with pytest.raises(ChaosViolation) as excinfo:
            runner._fail("synthetic")
        message = str(excinfo.value)
        assert "reproduce with: python -m repro chaos --seed 3" in message
        assert "recipe: seed=3" in message


class TestRecoveryChaosWindows:
    """Crash windows opened by checkpoint-driven truncation and redo.

    Three new fault surfaces (ISSUE 6): dying *during* a checkpoint,
    dying after the checkpoint record is stable but before/while the log
    prefix is dropped, and dying in the middle of a restart's redo
    stream.  Every window must converge through the supervisor with zero
    invariant violations — truncation only ever drops records recovery
    provably no longer needs, and redo is exactly-once under abLSNs no
    matter how many times it is cut short and retried.
    """

    def _gauntlet(self, rules, txns=60, **kwargs):
        runner = ChaosRunner(
            seed=77,
            schedule=rules,
            txns=txns,
            checkpoint_every=10,
            **kwargs,
        )
        report = runner.run()  # raises ChaosViolation on any violation
        assert report["committed"] + report["aborted"] + report[
            "resolved_committed"
        ] + report["resolved_aborted"] == txns
        assert runner.supervisor.all_healthy()
        return runner, report

    def test_crash_during_checkpoint(self):
        runner, report = self._gauntlet(
            [FaultRule(FaultPoint.TC_CHECKPOINT, FaultAction.CRASH, after=2)]
        )
        assert "tc.checkpoint" in report["fault_points_hit"]
        assert all(notice.healed for notice in runner.supervisor.notices)

    def test_crash_mid_truncation(self):
        runner, report = self._gauntlet(
            [FaultRule(FaultPoint.TC_TRUNCATE, FaultAction.CRASH, after=2)]
        )
        assert "tc.truncate" in report["fault_points_hit"]
        assert all(notice.healed for notice in runner.supervisor.notices)

    def test_crash_mid_redo(self):
        # A log-force crash opens the restart window; the redo rule then
        # cuts the restart's own replay short, so the supervisor must
        # retry the whole restart and still converge.
        runner, report = self._gauntlet(
            [
                FaultRule(FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, after=30),
                FaultRule(FaultPoint.TC_REDO, FaultAction.CRASH, after=3),
            ]
        )
        assert "tc.redo" in report["fault_points_hit"]
        assert all(notice.healed for notice in runner.supervisor.notices)

    def test_all_windows_with_optimized_config_and_truncation(self):
        """The combined gauntlet: every new window plus a DC crash, under
        the fast paths, with truncation doing real work (frequent
        checkpoints over many transactions)."""
        runner, report = self._gauntlet(
            [
                FaultRule(FaultPoint.TC_CHECKPOINT, FaultAction.CRASH, after=1),
                FaultRule(FaultPoint.TC_TRUNCATE, FaultAction.CRASH, after=3),
                FaultRule(FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, after=40),
                FaultRule(FaultPoint.TC_REDO, FaultAction.CRASH, after=2),
                FaultRule(FaultPoint.DISK_PAGE_WRITE, FaultAction.CRASH, target="dc1", after=5),
            ],
            txns=90,
            tc_config=TcConfig.optimized(),
        )
        assert report["faults_fired"] >= 4
        # truncation actually reclaimed log space during the gauntlet
        assert runner.metrics.get("tclog.truncated_records") > 0

    def test_truncation_determinism_across_reruns(self):
        rules = [
            FaultRule(FaultPoint.TC_TRUNCATE, FaultAction.CRASH, after=1),
            FaultRule(FaultPoint.TC_REDO, FaultAction.CRASH, after=4),
        ]
        strip = lambda report: {k: v for k, v in report.items() if k != "recipe"}
        first = ChaosRunner(seed=9, schedule=list(rules), txns=50, checkpoint_every=10).run()
        second = ChaosRunner(seed=9, schedule=list(rules), txns=50, checkpoint_every=10).run()
        assert strip(first) == strip(second)


class TestChaosFastPaths:
    """The fast paths (batching, undo cache, group commit) under torture.

    The optimized configuration changes message shapes and caching, never
    contracts: every invariant the baseline run proves must survive the
    same fault schedule with all three optimizations on.
    """

    def test_scripted_smoke_with_optimized_config(self):
        runner = ChaosRunner(
            seed=1234,
            schedule=list(SMOKE_SCHEDULE),
            txns=120,
            tc_config=TcConfig.optimized(),
        )
        report = runner.run()  # raises ChaosViolation on any broken invariant
        assert report["faults_fired"] >= 5
        assert runner.supervisor.notices
        assert all(notice.healed for notice in runner.supervisor.notices)
        assert runner.supervisor.all_healthy()
        # the fast paths were actually exercised, not silently off
        assert runner.metrics.get("channel.batches") > 0
        assert runner.metrics.get("tc.undo_cache_hits") > 0

    def test_random_seeds_with_optimized_config(self):
        for seed in range(3):
            report = ChaosRunner(
                seed=seed, txns=80, tc_config=TcConfig.optimized()
            ).run()
            assert report["committed"] + report["aborted"] + report[
                "resolved_committed"
            ] + report["resolved_aborted"] == 80

    def test_process_mode_rejects_scripted_schedules(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError, match="local-only"):
            ChaosRunner(
                schedule=list(SMOKE_SCHEDULE),
                channel_config=ChannelConfig(transport="process"),
            )

    def test_process_mode_kill9_zero_violations(self):
        """The ISSUE 4 acceptance run: DC *processes* under the chaos
        runner, with real ``kill -9`` as the fault.  Every kill is healed
        by the supervisor (journal replay + §5.2.1 redo prompt + resend),
        and the §4.2.1 contract invariants — durability of acknowledged
        commits, atomicity, structural well-formedness — must hold after
        every heal, under the optimized fast paths (batched envelopes
        make mid-transaction kills surface at commit, exercising the
        indeterminate-resolution path)."""
        runner = ChaosRunner(
            seed=11,
            txns=48,
            kill_every=12,
            checkpoint_every=17,
            tc_config=TcConfig.optimized(lock_timeout=30.0),
            channel_config=ChannelConfig(
                transport="process", request_timeout_s=15.0
            ),
        )
        try:
            report = runner.run()  # raises ChaosViolation on any violation
        finally:
            runner.kernel.close()
        assert report["committed"] + report["aborted"] + report[
            "resolved_committed"
        ] + report["resolved_aborted"] == 48
        assert report["committed"] > 0
        assert report["fault_points_hit"] == ["process.kill"]
        assert report["faults_fired"] == runner.kills >= 3
        # every kill was a real process death, healed by a real restart
        restarts = sum(dc.restarts for dc in runner.kernel.dcs.values())
        assert restarts == runner.kills
        assert runner.supervisor.all_healthy()
        assert "kill_every=12" in report["recipe"]

    def test_recovery_windows_process_mode_kills_near_checkpoints(self):
        """Process-mode analogue of the recovery-window gauntlet: real
        kill -9s landing adjacent to frequent checkpoints (which also
        compact the DC journals), so recovery repeatedly runs against a
        just-truncated log and a just-compacted journal."""
        runner = ChaosRunner(
            seed=23,
            txns=40,
            kill_every=9,
            checkpoint_every=8,
            tc_config=TcConfig.optimized(lock_timeout=30.0),
            channel_config=ChannelConfig(
                transport="process", request_timeout_s=15.0
            ),
        )
        try:
            report = runner.run()
        finally:
            runner.kernel.close()
        assert report["committed"] + report["aborted"] + report[
            "resolved_committed"
        ] + report["resolved_aborted"] == 40
        assert runner.kills >= 3
        assert runner.supervisor.all_healthy()

    def test_envelopes_survive_loss_duplication_and_reordering(self):
        """Envelope loss/duplication/reordering is per-op loss/duplication/
        reordering of everything inside — absorbed by per-op abLSNs."""
        runner = ChaosRunner(
            seed=5,
            schedule=[],  # the channel itself is the only adversary
            txns=100,
            tc_config=TcConfig.optimized(),
            channel_config=ChannelConfig(
                loss_rate=0.05, duplicate_rate=0.05, reorder_window=3, seed=9
            ),
        )
        report = runner.run()
        assert report["committed"] > 0
        assert runner.metrics.get("channel.requests_lost") > 0
        assert runner.metrics.get("dc.duplicate_ops") > 0


class TestCcPolicyChaos:
    """The chaos gauntlet under the optimistic policies: TC crashes
    landing exactly in the commit-time validation and version-install
    windows must leave zero invariant violations — validated-but-
    uncommitted transactions roll back on recovery, and the volatile CC
    state (stamps, writer registry, before-images) dies with the TC and
    is rebuilt clean."""

    @pytest.mark.parametrize("policy", ["occ", "mvcc"])
    def test_crash_mid_validate_and_mid_install(self, policy):
        schedule = [
            FaultRule(FaultPoint.TC_CC_VALIDATE, FaultAction.CRASH, after=9),
            FaultRule(FaultPoint.TC_CC_INSTALL, FaultAction.CRASH, after=21),
            FaultRule(FaultPoint.TC_CC_VALIDATE, FaultAction.CRASH, after=33),
            FaultRule(FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, after=55),
        ]
        runner = ChaosRunner(
            seed=77,
            schedule=schedule,
            txns=90,
            tc_config=TcConfig(group_commit_size=1, cc_policy=policy),
            increment_rate=0.2,
        )
        report = runner.run()  # raises ChaosViolation on any violation
        fired = set(report["fault_points_hit"])
        assert {FaultPoint.TC_CC_VALIDATE, FaultPoint.TC_CC_INSTALL} <= fired
        assert runner.supervisor.all_healthy()
        # The increment canary converged: the reserved slot counts
        # exactly the committed +1s (model equality already proved it
        # equals the DC's value after every heal).
        canary_values = [
            runner.history.value(table, runner.keyspace)
            for table in runner.TABLES
        ]
        assert any(isinstance(v, (int, float)) and v > 0 for v in canary_values)

    @pytest.mark.parametrize("policy", ["occ", "mvcc"])
    def test_random_fault_sweep_per_policy(self, policy):
        for seed in (3, 9):
            runner = ChaosRunner(
                seed=seed,
                txns=70,
                tc_config=TcConfig(group_commit_size=1, cc_policy=policy),
                increment_rate=0.15,
            )
            report = runner.run()
            assert report["committed"] > 0
            assert runner.supervisor.all_healthy()

    @pytest.mark.parametrize("policy", ["occ", "mvcc"])
    def test_process_mode_tc_kill9(self, policy):
        """Real SIGKILLs against a TC server process running the
        optimistic policies: every death lands with live traffic and
        in-flight CC state; §5.3.2 healing must replay the journal,
        roll back the in-doubt transactions and converge the canary."""
        runner = ChaosRunner(
            seed=31,
            txns=36,
            tc_processes=1,
            kill_tc_every=9,
            increment_rate=0.2,
            tc_config=TcConfig.optimized(cc_policy=policy, lock_timeout=30.0),
            channel_config=ChannelConfig(
                transport="process", request_timeout_s=15.0
            ),
        )
        try:
            report = runner.run()
        finally:
            runner.kernel.close()
        assert report["committed"] + report["aborted"] + report[
            "resolved_committed"
        ] + report["resolved_aborted"] == 36
        assert runner.tc_kills >= 3
        assert runner.supervisor.all_healthy()
        assert f"--cc {policy}" in runner.repro_command()
