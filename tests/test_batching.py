"""Operation batching across the TC/DC boundary (docs/architecture.md §9.1).

The :class:`~repro.common.api.BatchedPerform` envelope is a *transport*
unit, never an atomicity unit: every enclosed operation keeps its own LSN
op id, its own reply and its own abLSN idempotence test.  Losing,
duplicating or reordering an envelope is exactly losing/duplicating/
reordering all enclosed operations together — which the per-operation
machinery of Section 5.1 already absorbs.
"""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, TcConfig
from repro.common.errors import TransactionAborted
from repro.common.ops import InsertOp, OpResult, OpStatus


def batching_kernel(batch_max_ops=8, undo_cache=False, **channel_kwargs):
    config = KernelConfig(
        tc=TcConfig(
            batch_ops=True, batch_max_ops=batch_max_ops, undo_cache=undo_cache
        ),
        channel=ChannelConfig(**channel_kwargs),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestEnvelopeBasics:
    def test_batching_is_off_by_default(self, kernel):
        with kernel.begin() as txn:
            for key in range(4):
                txn.insert("t", key, key)
        assert kernel.metrics.get("channel.batches") == 0
        assert kernel.metrics.get("dc.batches_received") == 0

    def test_multi_op_txn_ships_one_envelope(self):
        kernel = batching_kernel()
        with kernel.begin() as txn:
            for key in range(4):
                txn.insert("t", key, f"v{key}")
        assert kernel.metrics.get("channel.batches") == 1
        assert kernel.metrics.get("channel.batched_ops") == 4
        assert kernel.metrics.get("dc.batches_received") == 1
        with kernel.begin() as check:
            assert check.scan("t") == [(key, f"v{key}") for key in range(4)]

    def test_batching_shrinks_message_count(self):
        def run(kernel):
            with kernel.begin() as txn:
                for key in range(8):
                    txn.insert("t", key, key)
            return kernel.metrics.get("channel.requests")

        plain = UnbundledKernel()
        plain.create_table("t")
        assert run(batching_kernel()) < run(plain)

    def test_flush_at_batch_max_ops(self):
        kernel = batching_kernel(batch_max_ops=2)
        txn = kernel.begin()
        for key in range(4):
            txn.insert("t", key, key)
        # Two full envelopes went out mid-transaction; nothing is pending.
        assert kernel.metrics.get("channel.batches") == 2
        assert not txn.in_flight
        txn.commit()

    def test_scan_flushes_accumulated_writes(self):
        """A scan reads through the DC, so the transaction's own unsent
        writes must be flushed first — read-your-writes holds."""
        kernel = batching_kernel()
        with kernel.begin() as txn:
            for key in range(3):
                txn.insert("t", key, f"v{key}")
            assert txn.in_flight  # accumulated, not yet on the wire
            assert txn.scan("t") == [(key, f"v{key}") for key in range(3)]
            assert not txn.in_flight

    def test_conflicting_op_flushes_first(self):
        """Two operations on one key are never in flight together — the
        Section 1.2 obligation extends to the accumulated envelope."""
        kernel = batching_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "first")
            assert len(txn.in_flight) == 1
            txn.update("t", 1, "second")  # implicit flush happened
            assert txn.read("t", 1) == "second"
        with kernel.begin() as check:
            assert check.read("t", 1) == "second"
        assert kernel.metrics.get("channel.batches") >= 1

    def test_rejects_invalid_batch_max_ops(self):
        with pytest.raises(ValueError):
            UnbundledKernel(
                KernelConfig(tc=TcConfig(batch_ops=True, batch_max_ops=0))
            )


class TestEnvelopeFaults:
    def test_lost_envelopes_are_resent_with_same_lsns(self):
        kernel = batching_kernel(loss_rate=0.3, seed=7)
        for txn_no in range(10):
            with kernel.begin() as txn:
                for op_no in range(3):
                    txn.insert("t", txn_no * 3 + op_no, f"t{txn_no}.o{op_no}")
        assert kernel.metrics.get("channel.requests_lost") > 0
        assert kernel.metrics.get("tc.resends") > 0
        with kernel.begin() as check:
            rows = check.scan("t")
        assert rows == [
            (n * 3 + o, f"t{n}.o{o}") for n in range(10) for o in range(3)
        ]

    def test_duplicated_envelopes_absorbed_per_op(self):
        """A duplicated envelope re-executes every enclosed operation; the
        per-op abLSN test absorbs each one — exactly-once survives."""
        kernel = batching_kernel(duplicate_rate=1.0, seed=11)
        with kernel.begin() as txn:
            for key in range(6):
                txn.insert("t", key, f"v{key}")
        assert kernel.metrics.get("dc.duplicate_ops") > 0
        with kernel.begin() as check:
            assert check.scan("t") == [(key, f"v{key}") for key in range(6)]

    def test_loss_duplication_and_reordering_combined(self):
        kernel = batching_kernel(
            loss_rate=0.2, duplicate_rate=0.2, reorder_window=4, seed=23
        )
        for txn_no in range(8):
            with kernel.begin() as txn:
                for op_no in range(4):
                    txn.insert("t", txn_no * 4 + op_no, txn_no)
        with kernel.begin() as check:
            assert len(check.scan("t")) == 32

    def test_semantic_rejection_is_per_op(self):
        """One rejected operation aborts the transaction (the TC validated
        it, so the DC disagreeing is a real fault), but the cancellation is
        per-op: the rejected record leaves the undo chain via a cancel
        marker while its executed siblings are inverted normally."""
        kernel = batching_kernel()
        real = kernel.dc.perform_operation

        def rejecting(tc_id, op_id, op, resend=False):
            if isinstance(op, InsertOp) and op.key == 3:
                return OpResult(status=OpStatus.ERROR, message="injected")
            return real(tc_id, op_id, op, resend=resend)

        kernel.dc.perform_operation = rejecting
        txn = kernel.begin()
        for key in range(1, 5):
            txn.insert("t", key, key)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert kernel.metrics.get("tc.canceled_ops") == 1
        kernel.dc.perform_operation = real
        with kernel.begin() as check:
            assert check.scan("t") == []


class TestBatchCrashRecovery:
    def test_unsent_batch_dies_with_the_tc(self):
        kernel = batching_kernel()
        txn = kernel.begin()
        for key in range(3):
            txn.insert("t", key, key)
        assert txn.in_flight  # accumulated only; the DC never saw them
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.scan("t") == []

    def test_committed_batch_survives_total_failure(self):
        kernel = batching_kernel()
        with kernel.begin() as txn:
            for key in range(4):
                txn.insert("t", key, f"v{key}")
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as check:
            assert check.scan("t") == [(key, f"v{key}") for key in range(4)]

    def test_dc_crash_mid_transaction_rolls_back(self):
        kernel = batching_kernel(batch_max_ops=2)
        txn = kernel.begin()
        txn.insert("t", 1, "a")
        txn.insert("t", 2, "b")  # envelope flushed (batch_max_ops)
        txn.insert("t", 3, "c")  # accumulated
        kernel.crash_dc()
        with pytest.raises(TransactionAborted):
            txn.commit()
        kernel.recover_dc()
        kernel.tc.retry_pending()
        assert kernel.tc.pending_zombies() == 0
        with kernel.begin() as check:
            assert check.scan("t") == []
