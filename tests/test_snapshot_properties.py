"""Property-based snapshot correctness: random histories vs a version model."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.common.errors import DuplicateKeyError, NoSuchRecordError

# committed transactions: lists of (action, key) over a small key space
txn_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=1,
    max_size=4,
)


@settings(
    max_examples=45,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    history=st.lists(txn_strategy, max_size=12),
    snapshot_after=st.integers(min_value=0, max_value=12),
)
def test_snapshot_reads_equal_model_state_at_capture_time(history, snapshot_after):
    """A snapshot taken after the Nth committed transaction must read the
    model state exactly as it was then, regardless of later history."""
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=512, snapshot_retention=10_000))
    )
    kernel.create_table("v", versioned=True)
    model: dict[int, str] = {}
    frozen_model: dict[int, str] | None = None
    snapshot = None
    for index, steps in enumerate(history):
        if index == snapshot_after and snapshot is None:
            snapshot = kernel.tc.begin_snapshot()
            frozen_model = dict(model)
        txn = kernel.begin()
        shadow = dict(model)
        failed = False
        try:
            for action, key in steps:
                if action == "insert":
                    if key in shadow:
                        raise DuplicateKeyError("v", key)
                    txn.insert("v", key, f"i{index}.{key}")
                    shadow[key] = f"i{index}.{key}"
                elif action == "update":
                    if key not in shadow:
                        raise NoSuchRecordError("v", key)
                    txn.update("v", key, f"u{index}.{key}")
                    shadow[key] = f"u{index}.{key}"
                else:
                    if key not in shadow:
                        raise NoSuchRecordError("v", key)
                    txn.delete("v", key)
                    del shadow[key]
        except (DuplicateKeyError, NoSuchRecordError):
            failed = True
        if failed:
            txn.abort()
        else:
            txn.commit()
            model = shadow
    if snapshot is None:
        snapshot = kernel.tc.begin_snapshot()
        frozen_model = dict(model)
    assert frozen_model is not None
    # point reads
    for key in range(9):
        assert snapshot.read("v", key) == frozen_model.get(key)
    # range read
    assert dict(snapshot.scan("v")) == frozen_model
    # and the live view still matches the final model
    with kernel.begin() as txn:
        assert dict(txn.scan("v")) == model


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(history=st.lists(txn_strategy, min_size=2, max_size=10))
def test_every_snapshot_is_internally_consistent(history):
    """Take a snapshot after every transaction; each must equal its own
    frozen model — all of them remain valid simultaneously."""
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(snapshot_retention=10_000))
    )
    kernel.create_table("v", versioned=True)
    model: dict[int, str] = {}
    checkpoints = []
    for index, steps in enumerate(history):
        txn = kernel.begin()
        shadow = dict(model)
        try:
            for action, key in steps:
                if action == "insert":
                    if key in shadow:
                        raise DuplicateKeyError("v", key)
                    txn.insert("v", key, f"{index}.{key}")
                    shadow[key] = f"{index}.{key}"
                elif action == "update":
                    if key not in shadow:
                        raise NoSuchRecordError("v", key)
                    txn.update("v", key, f"{index}.{key}")
                    shadow[key] = f"{index}.{key}"
                else:
                    if key not in shadow:
                        raise NoSuchRecordError("v", key)
                    txn.delete("v", key)
                    del shadow[key]
            txn.commit()
            model = shadow
        except (DuplicateKeyError, NoSuchRecordError):
            txn.abort()
        checkpoints.append((kernel.tc.begin_snapshot(), dict(model)))
    for snapshot, frozen in checkpoints:
        assert dict(snapshot.scan("v")) == frozen
