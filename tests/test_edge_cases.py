"""Edge cases across modules: the inputs that find off-by-ones."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.common.errors import ReproError
from repro.common.records import KEY_MAX, KEY_MIN
from tests.conftest import populate


class TestEmptyAndSingleton:
    def test_empty_table_everything(self, kernel):
        with kernel.begin() as txn:
            assert txn.scan("t") == []
            assert txn.read("t", 1) is None
            assert txn.scan("t", 5, 10) == []
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as txn:
            assert txn.scan("t") == []

    def test_single_record_lifecycle(self, kernel):
        with kernel.begin() as txn:
            txn.insert("t", 1, "only")
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as txn:
            assert txn.scan("t") == [(1, "only")]
            txn.delete("t", 1)
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as txn:
            assert txn.scan("t") == []

    def test_empty_transaction_commit_and_abort(self, kernel):
        kernel.begin().commit()
        kernel.begin().abort()
        kernel.crash_tc()
        kernel.recover_tc()

    def test_scan_bounds_outside_data(self, populated_kernel):
        with populated_kernel.begin() as txn:
            assert txn.scan("t", 1000, 2000) == []
            assert txn.scan("t", -100, -1) == []
            assert len(txn.scan("t", -100, 1000)) == 120

    def test_scan_single_point(self, populated_kernel):
        with populated_kernel.begin() as txn:
            assert txn.scan("t", 5, 5) == [(5, "value-00005")]

    def test_zero_limit_scan(self, populated_kernel):
        with populated_kernel.begin() as txn:
            # limit=0 means "no rows", not "no limit"
            assert txn.scan("t", limit=0) == [] or txn.scan("t", limit=0) is not None


class TestBoundarySplits:
    def test_ascending_descending_and_pivot_inserts(self):
        for order in ("asc", "desc", "pivot"):
            kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
            kernel.create_table("t")
            keys = list(range(120))
            if order == "desc":
                keys.reverse()
            elif order == "pivot":
                keys = [k for pair in zip(keys[:60], reversed(keys[60:])) for k in pair]
            with kernel.begin() as txn:
                for key in keys:
                    txn.insert("t", key, f"v{key}")
            kernel.dc.table("t").structure.validate()
            with kernel.begin() as txn:
                assert len(txn.scan("t")) == 120

    def test_update_at_exact_page_boundary(self):
        """Grow the record that sits at a leaf's split point."""
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        populate(kernel, 60)
        structure = kernel.dc.table("t").structure
        leaf_ids = structure.leaf_ids()
        boundary_key = structure._fetch(leaf_ids[1]).min_key()
        with kernel.begin() as txn:
            txn.update("t", boundary_key, "X" * 200)
        structure.validate()
        with kernel.begin() as txn:
            assert txn.read("t", boundary_key) == "X" * 200

    def test_delete_first_and_last_keys_repeatedly(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        populate(kernel, 80)
        lo, hi = 0, 79
        while lo < hi:
            with kernel.begin() as txn:
                txn.delete("t", lo)
                txn.delete("t", hi)
            lo += 1
            hi -= 1
        kernel.dc.table("t").structure.validate()
        with kernel.begin() as txn:
            remaining = txn.scan("t")
        assert [key for key, _v in remaining] == [40] if lo == hi else True


class TestMixedKeyTypesPerTable:
    def test_tuple_keys_sort_lexicographically(self, kernel):
        keys = [("b", 2), ("a", 10), ("a", 2), ("b", 1)]
        with kernel.begin() as txn:
            for key in keys:
                txn.insert("t", key, "v")
        with kernel.begin() as txn:
            scanned = [key for key, _v in txn.scan("t")]
        assert scanned == sorted(keys)

    def test_key_extremes_never_stored(self, kernel):
        """KEY_MIN/KEY_MAX are query sentinels, not keys; storing ordinary
        keys and querying with sentinels must round-trip."""
        with kernel.begin() as txn:
            txn.insert("t", ("g", 1), "a")
            txn.insert("t", ("g", 2), "b")
            txn.insert("t", ("h", 1), "c")
        with kernel.begin() as txn:
            rows = txn.scan("t", ("g", KEY_MIN), ("g", KEY_MAX))
        assert [key for key, _v in rows] == [("g", 1), ("g", 2)]


class TestRecoveryCorners:
    def test_recover_tc_twice_in_a_row(self, populated_kernel):
        populated_kernel.crash_tc()
        populated_kernel.recover_tc()
        populated_kernel.crash_tc()
        populated_kernel.recover_tc()
        with populated_kernel.begin() as txn:
            assert len(txn.scan("t")) == 120

    def test_dc_crash_immediately_after_recovery(self, populated_kernel):
        populated_kernel.crash_dc()
        populated_kernel.recover_dc()
        populated_kernel.crash_dc()
        populated_kernel.recover_dc()
        with populated_kernel.begin() as txn:
            assert len(txn.scan("t")) == 120

    def test_checkpoint_then_immediate_crash_all(self, populated_kernel):
        populated_kernel.checkpoint()
        populated_kernel.crash_all()
        populated_kernel.recover_all()
        with populated_kernel.begin() as txn:
            assert len(txn.scan("t")) == 120

    def test_crash_with_zero_stable_log(self):
        """TC crashes before anything was ever forced."""
        kernel = UnbundledKernel()
        kernel.create_table("t")
        txn = kernel.begin()
        txn.insert("t", 1, "volatile-only")
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] == 0 and stats["losers"] == 0
        with kernel.begin() as check:
            assert check.scan("t") == []

    def test_abort_after_dc_recovery_mid_transaction(self):
        kernel = UnbundledKernel()
        kernel.create_table("t")
        with kernel.begin() as setup:
            setup.insert("t", 1, "base")
        txn = kernel.begin()
        txn.update("t", 1, "mid")
        kernel.crash_dc()
        kernel.dc.recover(notify_tcs=True)
        txn.abort()  # inverse must apply on the recovered DC
        with kernel.begin() as check:
            assert check.read("t", 1) == "base"


class TestValidationCatchesDamage:
    def test_validate_detects_misrouted_key(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        populate(kernel, 80)
        structure = kernel.dc.table("t").structure
        # vandalize: put a key on the wrong leaf
        from repro.common.records import VersionedRecord

        wrong_leaf = structure._fetch(structure.leaf_ids()[0])
        bad_key = structure._fetch(structure.leaf_ids()[-1]).max_key() + 100
        wrong_leaf.put(VersionedRecord(key=bad_key, committed="bad"))
        with pytest.raises(ReproError):
            structure.validate()
