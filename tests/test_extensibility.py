"""Plug-in access methods (Section 1.1, imperative 5).

"Adding a new access method to support new data types ... is eased
substantially when the type implementation (as DC) can rely on
transactional services provided separately by TC."  This test registers a
custom structure — a single-page "scratchpad" — and shows it renting the
full transactional stack: 2PL, logical logging, rollback, idempotent
redo, crash recovery.
"""

from __future__ import annotations

import pytest

from repro.common.errors import PageOverflowError
from repro.dc.data_component import DataComponent
from repro.dc.recovery import TableDescriptor
from repro.dc.system_txn import SystemTransaction
from repro.sim.metrics import Metrics
from repro.storage.heap import HashedHeap
from repro.tc.transactional_component import TransactionalComponent


class ScratchpadStructure(HashedHeap):
    """A deliberately trivial custom access method: exactly one page.

    Inherits the record plumbing from the heap but pins everything to a
    single fixed page — the sort of specialized structure an application
    might write for a small, hot configuration table.
    """

    KIND = "scratchpad"

    def describe(self) -> dict:
        return {"page_id": self.bucket_ids[0]}

    @classmethod
    def factory(cls, dc: DataComponent, name: str, descriptor):
        if descriptor is None:
            return cls(
                name,
                dc.storage,
                dc.buffer,
                dc.dclog,
                dc.config,
                dc.metrics,
                ensure_stable=dc._ensure_tc_stable,
                bucket_count=1,
            )
        return cls(
            name,
            dc.storage,
            dc.buffer,
            dc.dclog,
            dc.config,
            dc.metrics,
            ensure_stable=dc._ensure_tc_stable,
            bucket_ids=[descriptor.extra["page_id"]],
        )


def build_kernel():
    metrics = Metrics()
    dc = DataComponent("dc", metrics=metrics)
    dc.register_structure_kind(ScratchpadStructure.KIND, ScratchpadStructure.factory)
    dc.create_table("pad", kind=ScratchpadStructure.KIND)
    tc = TransactionalComponent(metrics=metrics)
    tc.attach_dc(dc)
    return dc, tc


class TestCustomStructure:
    def test_transactions_work_unchanged(self):
        _dc, tc = build_kernel()
        with tc.begin() as txn:
            txn.insert("pad", "a", 1)
            txn.insert("pad", "b", 2)
            assert txn.read("pad", "a") == 1
            assert txn.scan("pad") == [("a", 1), ("b", 2)]

    def test_rollback_works_unchanged(self):
        _dc, tc = build_kernel()
        with tc.begin() as setup:
            setup.insert("pad", "a", 1)
        txn = tc.begin()
        txn.update("pad", "a", 99)
        txn.insert("pad", "z", 0)
        txn.abort()
        with tc.begin() as check:
            assert check.read("pad", "a") == 1
            assert check.read("pad", "z") is None

    def test_descriptor_extra_persisted(self):
        dc, _tc = build_kernel()
        handle = dc.table("pad")
        assert handle.descriptor.kind == "scratchpad"
        assert "page_id" in handle.descriptor.extra
        roundtrip = TableDescriptor.from_metadata(handle.descriptor.to_metadata())
        assert roundtrip.extra == handle.descriptor.extra

    def test_dc_crash_recovery_rebuilds_via_factory(self):
        dc, tc = build_kernel()
        with tc.begin() as txn:
            txn.insert("pad", "survivor", 42)
        dc.crash()
        dc.recover(notify_tcs=True)
        with tc.begin() as txn:
            assert txn.read("pad", "survivor") == 42
        assert isinstance(dc.table("pad").structure, ScratchpadStructure)

    def test_tc_crash_recovery(self):
        dc, tc = build_kernel()
        with tc.begin() as txn:
            txn.insert("pad", "kept", 1)
        loser = tc.begin()
        loser.update("pad", "kept", 666)
        tc.crash()
        tc.restart()
        with tc.begin() as txn:
            assert txn.read("pad", "kept") == 1

    def test_recovery_without_factory_fails_loudly(self):
        """A DC restarted without the plug-in registered cannot silently
        misinterpret the table."""
        dc, tc = build_kernel()
        with tc.begin() as txn:
            txn.insert("pad", "a", 1)
        dc.crash()
        dc._structure_factories.clear()
        with pytest.raises(Exception):
            dc.recover(notify_tcs=False)

    def test_single_page_limit_is_the_structures_contract(self):
        _dc, tc = build_kernel()
        txn = tc.begin()
        with pytest.raises(Exception):
            for index in range(10_000):
                txn.insert("pad", index, "x" * 50)
        tc.abort(txn)

    def test_coexists_with_builtin_kinds(self):
        dc, tc = build_kernel()
        dc.create_table("normal", kind="btree")
        tc.refresh_routes(dc)
        with tc.begin() as txn:
            txn.insert("pad", "a", 1)
            txn.insert("normal", "a", 2)
        with tc.begin() as txn:
            assert txn.read("pad", "a") == 1
            assert txn.read("normal", "a") == 2
