"""The process deployment mode end to end (docs/architecture.md §10).

Each DC is a real OS process behind a ``multiprocessing`` pipe; these
tests drive the full stack — wire codec, framed transport, journal-backed
storage, pipelined channel — through the same TC code paths the in-process
mode uses, then make failure *real*: ``SIGKILL`` the server mid-stream and
check the §4.2.1 resend/idempotence contracts converge across an actual
process death and journal replay.

Increments are the canary throughout: a non-idempotent operation applied
twice (a resend not absorbed by its abLSN) or zero times (a lost redo)
shows up as a wrong sum, not a silently plausible value.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

pytestmark = pytest.mark.process

from repro.cloud.deployment import CloudDeployment
from repro.common.config import ChannelConfig, KernelConfig, TcConfig
from repro.common.errors import ReproError
from repro.kernel.unbundled import UnbundledKernel
from repro.net.process import ProcessChannel, RemoteDc
from repro.sim.faults import FaultInjector
from repro.sim.supervisor import Supervisor


def process_config(**tc_overrides) -> KernelConfig:
    return KernelConfig(
        tc=TcConfig.optimized(**tc_overrides),
        channel=ChannelConfig(transport="process", request_timeout_s=15.0),
    )


def kill_dc(dc: RemoteDc) -> None:
    """A real ``kill -9``, then wait for the proxy to notice the death."""
    os.kill(dc.pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while not dc.crashed and time.monotonic() < deadline:
        time.sleep(0.01)
    assert dc.crashed


class TestProcessKernel:
    def test_commit_and_read_across_two_dc_processes(self):
        with UnbundledKernel(config=process_config(), dc_count=2) as kernel:
            kernel.create_table("t", dc_name="dc1")
            kernel.create_table("u", dc_name="dc2")
            txn = kernel.begin()
            txn.insert("t", 1, {"v": 10})
            txn.insert("u", 2, {"v": 20})
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", 1) == {"v": 10}
            assert txn.read("u", 2) == {"v": 20}
            txn.commit()
            # The DCs really are separate processes (and not this one).
            pids = {dc.pid for dc in kernel.dcs.values()}
            assert len(pids) == 2 and os.getpid() not in pids

    def test_abort_undoes_across_the_wire(self):
        with UnbundledKernel(config=process_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", 1, "committed")
            txn.commit()
            txn = kernel.begin()
            txn.update("t", 1, "doomed")
            txn.insert("t", 2, "also doomed")
            txn.abort()
            txn = kernel.begin()
            assert txn.read("t", 1) == "committed"
            assert txn.read("t", 2) is None
            txn.commit()

    def test_pipelined_flush_presends_to_every_dc(self):
        with UnbundledKernel(config=process_config(), dc_count=2) as kernel:
            kernel.create_table("t", dc_name="dc1")
            kernel.create_table("u", dc_name="dc2")
            txn = kernel.begin()
            for key in range(4):
                txn.insert("t", key, key)
                txn.insert("u", key, key)
            txn.commit()
            counters = kernel.metrics.counters()
            # Both DC envelopes went out as batches over the async path.
            assert counters.get("channel.batches", 0) >= 2
            txn = kernel.begin()
            assert [txn.read("t", k) for k in range(4)] == list(range(4))
            assert [txn.read("u", k) for k in range(4)] == list(range(4))
            txn.commit()

    def test_deployment_mode_knobs_are_validated(self):
        bad = KernelConfig(channel=ChannelConfig(transport="process", loss_rate=0.5))
        with pytest.raises(ReproError):
            UnbundledKernel(config=bad, dc_count=1)
        with pytest.raises(ReproError):
            UnbundledKernel(
                config=process_config(), dc_count=1, faults=FaultInjector()
            )

    def test_close_terminates_server_processes(self):
        kernel = UnbundledKernel(config=process_config(), dc_count=1)
        kernel.create_table("t")
        pid = kernel.dc.pid
        kernel.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:
            pytest.fail(f"DC server {pid} still alive after close()")


class TestKillAndRecover:
    def test_journal_survives_sigkill(self, tmp_path):
        config = process_config()
        config.data_dir = str(tmp_path)
        with UnbundledKernel(config=config, dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            for key in range(16):
                txn.insert("t", key, {"v": key})
            txn.commit()
            kill_dc(kernel.dc)
            info = kernel.dc.recover(notify_tcs=True)
            assert info["restarted"] and kernel.dc.restarts == 1
            txn = kernel.begin()
            assert [txn.read("t", k)["v"] for k in range(16)] == list(range(16))
            txn.commit()

    def test_kill_mid_transaction_under_optimized_config_converges(self):
        """The ISSUE acceptance scenario: kill -9 mid-transaction under
        ``TcConfig.optimized()``; resend + abLSN idempotence converge."""
        with UnbundledKernel(config=process_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", "counter", 0)
            txn.commit()
            supervisor = Supervisor(metrics=kernel.metrics)
            supervisor.watch_kernel(kernel)
            txn = kernel.begin()
            # batch_max_ops=8: the first increments flush to the DC before
            # the kill, the rest after the heal — the commit-time resends
            # must not double-apply the already-performed prefix.
            for _ in range(12):
                txn.increment("t", "counter", 1)
            kill_dc(kernel.dc)
            report = supervisor.heal()
            assert report.dc_restarts == 1
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", "counter") == 12
            txn.commit()
            assert kernel.dc.restarts == 1

    def test_repeated_kills_keep_converging(self):
        with UnbundledKernel(config=process_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", "counter", 0)
            txn.commit()
            supervisor = Supervisor(metrics=kernel.metrics)
            supervisor.watch_kernel(kernel)
            for round_number in range(3):
                txn = kernel.begin()
                for _ in range(10):
                    txn.increment("t", "counter", 1)
                kill_dc(kernel.dc)
                supervisor.heal()
                txn.commit()
            txn = kernel.begin()
            assert txn.read("t", "counter") == 30
            txn.commit()
            assert kernel.dc.restarts == 3

    def test_data_dir_persists_across_kernels(self, tmp_path):
        config = process_config()
        config.data_dir = str(tmp_path)
        with UnbundledKernel(config=config, dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", 1, "durable")
            txn.commit()
            # A graceful handoff needs a checkpoint: without it the
            # committed state lives partly in the (old) TC's redo stream,
            # which a *new* TC does not have.  SIGKILL recovery is covered
            # above precisely because there the same TC resends its redo.
            # The TC checkpoint broadcasts LWM/EOSL (unblocking page
            # flushes), then the DC flushes everything and truncates.
            assert kernel.checkpoint()
            assert kernel.dc.checkpoint_dc_log()
        # A brand-new kernel on the same volume: the journal replays, the
        # catalog primes from the server's hello, reads see the commit.
        with UnbundledKernel(config=config, dc_count=1) as kernel:
            assert "t" in kernel.dc.table_names()
            kernel.tc.refresh_routes(kernel.dc)
            txn = kernel.begin()
            assert txn.read("t", 1) == "durable"
            txn.commit()


class TestChannelAndDeployment:
    def test_process_channel_rejects_simulated_misbehavior(self, tmp_path):
        dc = RemoteDc("dcx", journal_path=str(tmp_path / "dcx.journal"))
        try:
            with pytest.raises(ReproError):
                ProcessChannel(dc, ChannelConfig(loss_rate=0.1))
            with pytest.raises(ReproError):
                ProcessChannel(dc, ChannelConfig(reorder_window=2))
        finally:
            dc.shutdown()

    def test_mixed_deployment_local_and_remote_dcs(self, tmp_path):
        deployment = CloudDeployment()
        deployment.add_dc("local-dc")
        deployment.add_remote_dc(
            "remote-dc", journal_path=str(tmp_path / "remote.journal")
        )
        deployment.add_tc("tc")
        deployment.create_table("near", dc="local-dc")
        deployment.create_table("far", dc="remote-dc")
        deployment.grant("tc", "near", lambda key: True)
        deployment.grant("tc", "far", lambda key: True)
        with deployment.build():
            tc = deployment.tc("tc")
            channels = tc.channels()
            assert not channels["local-dc"].supports_async
            assert channels["remote-dc"].supports_async
            txn = tc.begin()
            txn.insert("near", 1, "a")
            txn.insert("far", 1, "b")
            txn.commit()
            txn = tc.begin()
            assert txn.read("near", 1) == "a"
            assert txn.read("far", 1) == "b"
            txn.commit()

    def test_concurrent_committers_one_dc_process(self):
        """Thread safety of the shared transport under concurrent load."""
        with UnbundledKernel(config=process_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            for worker in range(4):
                txn.insert("t", f"w{worker}", 0)
            txn.commit()
            errors: list[BaseException] = []

            def run(worker: int) -> None:
                try:
                    for _ in range(10):
                        txn = kernel.begin()
                        txn.increment("t", f"w{worker}", 1)
                        txn.commit()
                except BaseException as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(worker,)) for worker in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            txn = kernel.begin()
            assert [txn.read("t", f"w{w}") for w in range(4)] == [10] * 4
            txn.commit()
