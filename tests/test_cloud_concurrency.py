"""The movie site under concurrent multi-threaded load (Section 6.3)."""

from __future__ import annotations

import threading

import pytest

from repro.cloud.movie_site import MovieSite
from repro.common.config import TcConfig


@pytest.fixture
def site():
    site = MovieSite(tc_config=TcConfig(lock_timeout=10.0))
    for movie in range(5):
        site.add_movie(f"m{movie}", {"title": f"Movie {movie}"})
    for user in range(12):
        site.register_user(f"u{user}", {"name": f"User {user}"})
    return site


class TestConcurrentWorkloads:
    def test_parallel_posts_from_all_users(self, site):
        errors: list[Exception] = []

        def poster(user_index: int):
            try:
                for movie in range(5):
                    site.post_review(
                        f"u{user_index}", f"m{movie}", f"review {user_index}.{movie}"
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=poster, args=(u,)) for u in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        total = sum(len(site.reviews_for_movie(f"m{m}")) for m in range(5))
        assert total == 60
        for movie in range(5):
            mine = site.reviews_for_movie(f"m{movie}")
            assert len(mine) == 12

    def test_reader_runs_during_parallel_writes(self, site):
        stop = threading.Event()
        read_counts = {"n": 0}
        errors: list[Exception] = []

        def reader():
            try:
                while not stop.is_set():
                    site.reviews_for_movie("m0")
                    read_counts["n"] += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer(user_index: int):
            try:
                for movie in range(5):
                    site.post_review(f"u{user_index}", f"m{movie}", "text")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        writers = [threading.Thread(target=writer, args=(u,)) for u in range(6)]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=120)
        stop.set()
        reader_thread.join(timeout=10)
        assert not errors
        assert read_counts["n"] > 0  # the reader was never starved
        assert len(site.reviews_for_movie("m0")) == 6

    def test_w4_consistent_with_w1_after_concurrency(self, site):
        """The two clusterings (by movie, by user) agree after chaos."""
        threads = [
            threading.Thread(
                target=lambda u=user: [
                    site.post_review(f"u{u}", f"m{m}", f"r{u}.{m}")
                    for m in range(3)
                ]
            )
            for user in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        by_movie = sum(len(site.reviews_for_movie(f"m{m}")) for m in range(5))
        by_user = sum(len(site.my_reviews(f"u{u}")) for u in range(12))
        assert by_movie == by_user == 24
