"""Records, versions (Section 6.2.2) and the byte-size model."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.common.records import (
    KEY_MAX,
    KEY_MIN,
    RecordView,
    TOMBSTONE,
    VersionedRecord,
    sizeof_key,
    sizeof_value,
)


class TestSizeModel:
    def test_primitives(self):
        assert sizeof_value(None) == 1
        assert sizeof_value(True) == 1
        assert sizeof_value(42) == 8
        assert sizeof_value(3.14) == 8
        assert sizeof_value("abcd") == 4
        assert sizeof_value(b"abc") == 3

    def test_containers_sum_parts(self):
        assert sizeof_value([1, 2]) > 2 * sizeof_value(1)
        assert sizeof_value({"a": 1}) > sizeof_value("a") + sizeof_value(1)

    def test_unicode_counts_bytes(self):
        assert sizeof_value("héllo") == len("héllo".encode("utf-8"))

    @given(st.text(max_size=200))
    def test_strings_deterministic(self, text):
        assert sizeof_value(text) == sizeof_value(text)

    def test_key_model_matches_value_model(self):
        assert sizeof_key((1, "abc")) == sizeof_value((1, "abc"))


class TestVersionedRecord:
    def test_plain_committed_visibility(self):
        record = VersionedRecord(key=1, committed="v1")
        assert record.visible_value(read_committed=True) == "v1"
        assert record.visible_value(read_committed=False) == "v1"
        assert record.exists_for(True) and record.exists_for(False)

    def test_pending_update_splits_visibility(self):
        """Read committed sees the before version; the owner (and dirty
        readers) see the pending version (Section 6.2.2)."""
        record = VersionedRecord(key=1, committed="before")
        record.set_pending("after")
        assert record.visible_value(read_committed=True) == "before"
        assert record.visible_value(read_committed=False) == "after"

    def test_pending_insert_invisible_to_read_committed(self):
        """"insert two versions, a before 'null' version followed by the
        intended insert" — committed readers see nothing yet."""
        record = VersionedRecord(key=1)
        record.set_pending("new")
        assert not record.exists_for(True)
        assert record.exists_for(False)

    def test_pending_delete_tombstone(self):
        record = VersionedRecord(key=1, committed="v")
        record.set_pending(TOMBSTONE)
        assert record.exists_for(True)  # before version still readable
        assert not record.exists_for(False)  # owner sees the delete
        assert record.visible_value(read_committed=False) is None

    def test_promote_update(self):
        record = VersionedRecord(key=1, committed="old")
        record.set_pending("new")
        record.promote_pending()
        assert record.committed == "new"
        assert not record.has_pending
        assert not record.is_dead()

    def test_promote_delete_makes_dead(self):
        record = VersionedRecord(key=1, committed="v")
        record.set_pending(TOMBSTONE)
        record.promote_pending()
        assert record.committed is None
        assert record.is_dead()

    def test_promote_without_pending_is_noop(self):
        record = VersionedRecord(key=1, committed="v")
        record.promote_pending()
        assert record.committed == "v"

    def test_discard_restores_committed_view(self):
        record = VersionedRecord(key=1, committed="keep")
        record.set_pending("drop")
        record.discard_pending()
        assert record.visible_value(read_committed=False) == "keep"
        assert not record.has_pending

    def test_discard_pending_insert_makes_dead(self):
        record = VersionedRecord(key=1)
        record.set_pending("new")
        record.discard_pending()
        assert record.is_dead()

    def test_promote_then_promote_idempotent(self):
        """Cleanup operations may be replayed after a crash — a second
        promote must be harmless (restart re-issues cleanups)."""
        record = VersionedRecord(key=1, committed="old")
        record.set_pending("new")
        record.promote_pending()
        record.promote_pending()
        assert record.committed == "new"

    def test_clone_is_deep_enough(self):
        record = VersionedRecord(key=1, committed="v", owner_tc=7)
        clone = record.clone()
        clone.set_pending("x")
        assert not record.has_pending
        assert clone.owner_tc == 7

    def test_encoded_size_grows_with_pending(self):
        record = VersionedRecord(key=1, committed="vvvv")
        base = record.encoded_size()
        record.set_pending("wwwwwwww")
        assert record.encoded_size() > base

    def test_owner_chain_costs_two_bytes(self):
        """Section 6.1.2: the record->TC chain is 'two byte offsets'."""
        anon = VersionedRecord(key=1, committed="v")
        owned = VersionedRecord(key=1, committed="v", owner_tc=3)
        assert owned.encoded_size() == anon.encoded_size() + 2


class TestKeyExtremes:
    def test_ordering_against_everything(self):
        for key in (0, -(10**9), 10**9, "", "zzz", (1, 2)):
            assert KEY_MIN < key < KEY_MAX
            assert not KEY_MIN > key
            assert not KEY_MAX < key
            assert KEY_MAX >= key >= KEY_MIN

    def test_extremes_against_each_other(self):
        assert KEY_MIN < KEY_MAX
        assert not KEY_MAX < KEY_MIN
        assert KEY_MIN == KEY_MIN and KEY_MAX == KEY_MAX
        assert KEY_MIN != KEY_MAX

    def test_composite_key_bounds(self):
        low = ("m1", KEY_MIN)
        high = ("m1", KEY_MAX)
        assert low < ("m1", "u1") < high
        assert high < ("m2", KEY_MIN)

    def test_hashable(self):
        assert len({KEY_MIN, KEY_MAX, KEY_MIN}) == 2


class TestRecordView:
    def test_as_tuple(self):
        view = RecordView(1, "v")
        assert view.as_tuple() == (1, "v")

    def test_frozen(self):
        view = RecordView(1, "v")
        try:
            view.key = 2  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
