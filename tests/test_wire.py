"""The wire codec (process deployment mode): every message round-trips.

The process transport can only honor the §4.2.1 contracts if the codec is
*total* over the message vocabulary: every :class:`~repro.common.api.Message`
subclass, every logical operation, every reply payload — including the
identity-compared sentinels (``TOMBSTONE``, ``KEY_MIN``, ``KEY_MAX``) and
``None``-heavy control messages — must decode to an equal value.  Schema
drift must fail *loudly*: an unknown type or field on the wire raises a
typed error instead of silently dropping data.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import api
from repro.common.ops import (
    DeleteOp,
    IncrementOp,
    InsertOp,
    OpResult,
    OpStatus,
    ProbeNextKeysOp,
    RangeReadOp,
    ReadFlavor,
    ReadOp,
    UpdateOp,
)
from repro.common.records import KEY_MAX, KEY_MIN, TOMBSTONE, RecordView
from repro.net import rpc, wire
from repro.net.wire import (
    UnknownFieldError,
    UnknownTypeError,
    WireDecodeError,
    WireEncodeError,
    decode,
    encode,
)


def roundtrip(value):
    return decode(encode(value))


# -- total coverage of the message vocabulary ---------------------------------


def _sample_for(cls, field):
    """A representative non-default value for one dataclass field."""
    overrides = {
        "op": InsertOp(table="t", key=("k", 3), value={"v": [1, 2.5, None]}),
        "ops": (
            api.PerformOperation(tc_id=1, op_id=7, op=ReadOp(table="t", key=1)),
            api.PerformOperation(
                tc_id=1, op_id=8, op=DeleteOp(table="t", key=2), resend=True
            ),
        ),
        "replies": (
            api.OperationReply(tc_id=1, op_id=7, result=OpResult.okay("x")),
            api.OperationReply(tc_id=1, op_id=8, result=None),
        ),
        "result": OpResult(
            status=OpStatus.NOT_FOUND,
            value=TOMBSTONE,
            prior={"old": True},
            records=(RecordView(key=1, value="a"),),
            keys=(1, (2, "b")),
            message="gone",
        ),
        "flavor": ReadFlavor.READ_COMMITTED,
        "tables": (("t", "btree", False), ("v", "heap", True)),
        "payload": {"dc": {"tables": {"t": 1}}, "pid": 42},
        "low": KEY_MIN,
        "high": KEY_MAX,
        "keys": (1, "two", (3, 4)),
        "records": (RecordView(key=9, value=None),),
    }
    if field.name in overrides:
        return overrides[field.name]
    kind = str(field.type)
    if "bool" in kind:
        return True
    if "int" in kind or "Lsn" in kind:
        return 12345
    if "float" in kind:
        return 2.5
    if "str" in kind:
        return "sample"
    if field.default is not dataclasses.MISSING:
        return field.default
    return None


def _all_message_types():
    types = [
        cls
        for cls in wire.registered_types().values()
        if isinstance(cls, type)
        and dataclasses.is_dataclass(cls)
        and issubclass(cls, api.Message)
    ]
    assert len(types) >= 45, (
        "subclass walk should find api + rpc + tcrpc messages"
    )
    return types


@pytest.mark.parametrize("cls", _all_message_types(), ids=lambda c: c.__name__)
def test_every_message_type_roundtrips(cls):
    kwargs = {f.name: _sample_for(cls, f) for f in dataclasses.fields(cls)}
    message = cls(**kwargs)
    assert roundtrip(message) == message
    # Defaults-only construction (the None/empty shape) must survive too.
    bare = cls(tc_id=0)
    assert roundtrip(bare) == bare


def test_vocabulary_covers_all_api_messages():
    """A Message subclass added to api.py is registered automatically."""
    names = set(wire.registered_types())
    for cls in api.Message.__subclasses__():
        assert cls.__name__ in names


# -- domain shapes ------------------------------------------------------------


def test_sentinels_decode_to_canonical_singletons():
    assert roundtrip(TOMBSTONE) is TOMBSTONE
    assert roundtrip(KEY_MIN) is KEY_MIN
    assert roundtrip(KEY_MAX) is KEY_MAX
    # Nested inside a reply payload, identity still holds.
    reply = api.OperationReply(
        tc_id=1, op_id=2, result=OpResult(status=OpStatus.OK, value=TOMBSTONE)
    )
    assert roundtrip(reply).result.value is TOMBSTONE


def test_none_payload_control_messages():
    lwm = api.LowWaterMark(tc_id=3, lwm=0)
    assert roundtrip(lwm) == lwm
    assert roundtrip(api.OperationReply(tc_id=1, op_id=5, result=None)).result is None


def test_large_batched_envelope():
    ops = tuple(
        api.PerformOperation(
            tc_id=1,
            op_id=i,
            op=UpdateOp(table="t", key=i, value={"n": i, "blob": "x" * 100}),
            eosl=i - 1,
        )
        for i in range(1, 501)
    )
    envelope = api.BatchedPerform(tc_id=1, ops=ops, eosl=500)
    assert roundtrip(envelope) == envelope


def test_operation_variants_roundtrip():
    samples = [
        IncrementOp(table="t", key=1, delta=-2.5),
        RangeReadOp(table="t", low=KEY_MIN, high=(5, KEY_MAX), limit=10),
        ProbeNextKeysOp(table="t", after=None, count=4, inclusive=True),
    ]
    for op in samples:
        message = api.PerformOperation(tc_id=9, op_id=1, op=op)
        assert roundtrip(message) == message


def test_frame_pack_unpack():
    message = rpc.Hello(tc_id=0, dc_name="dc1", pid=77, recovered=True)
    kind, seq, payload = rpc.unpack_frame(rpc.pack_frame(rpc.PUSH, 9, message))
    assert (kind, seq, payload) == (rpc.PUSH, 9, message)


# -- typed decode errors ------------------------------------------------------


def _obj_frame(type_name: str, fields: dict) -> bytes:
    """Handcraft an object frame (to simulate a peer with a newer schema)."""
    out = bytearray([0x0C])  # _T_OBJ
    wire._put_str(out, type_name)
    wire._put_uvarint(out, len(fields))
    for name, value in fields.items():
        wire._put_str(out, name)
        out += encode(value)
    return bytes(out)


def test_unknown_type_raises_typed_error():
    with pytest.raises(UnknownTypeError):
        decode(_obj_frame("NoSuchMessage", {"tc_id": 1}))


def test_unknown_field_raises_typed_error():
    frame = _obj_frame("ControlAck", {"tc_id": 1, "new_field": "future"})
    with pytest.raises(UnknownFieldError):
        decode(frame)


def test_missing_fields_take_defaults():
    # Forward compatibility the other way: an older peer omitting a field
    # with a default still decodes.
    frame = _obj_frame("PerformOperation", {"tc_id": 4, "op_id": 11})
    message = decode(frame)
    assert message == api.PerformOperation(tc_id=4, op_id=11)


def test_trailing_garbage_rejected():
    with pytest.raises(WireDecodeError):
        decode(encode(api.ControlAck(tc_id=1)) + b"\x00")


def test_truncated_frame_rejected():
    data = encode(api.PerformOperation(tc_id=1, op_id=2, op=ReadOp(table="t")))
    with pytest.raises(WireDecodeError):
        decode(data[:-3])


def test_expect_mismatch_rejected():
    data = encode(api.ControlAck(tc_id=1))
    with pytest.raises(WireDecodeError):
        decode(data, expect=api.PerformOperation)


def test_unregistered_object_rejected_at_encode():
    class NotOnTheWire:
        pass

    with pytest.raises(WireEncodeError):
        encode(NotOnTheWire())


def test_register_rejects_name_collision():
    @dataclasses.dataclass(frozen=True)
    class ControlAck:  # same name, different class
        x: int = 0

    with pytest.raises(wire.WireError):
        wire.register(ControlAck)


# -- property: primitives and containers --------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.sampled_from([TOMBSTONE, KEY_MIN, KEY_MAX]),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@settings(max_examples=200, deadline=None)
@given(value=_values)
def test_value_roundtrip_property(value):
    assert roundtrip(value) == value
