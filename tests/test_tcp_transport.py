"""The TCP data plane and frame coalescing (docs/architecture.md §17).

Same protocol, different pipes: every §4.2.1 / §5.3.2 contract the Unix
socket tests prove must hold verbatim when the TC↔DC traffic crosses
loopback TCP — including the operational wrinkle Unix sockets do not
have: the server binds an *ephemeral* port (``tcp://host:0``), so the
resolved address reported in the Hello must be pinned into the proxy's
``listen_path`` or a §5.2.1 heal would rebind a different port and every
socket client would dial a dead address.

Coalescing rides along: deferred frames must reach the wire before any
reply is awaited (flush-before-await), and a non-deferred send must not
overtake buffered deferred frames (ordering), both of which are easy to
get wrong and show up here as hangs, not wrong answers.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

pytestmark = pytest.mark.process

from repro.cloud.router import TcServiceDeployment
from repro.common.config import ChannelConfig, KernelConfig, TcConfig
from repro.kernel.unbundled import UnbundledKernel
from repro.net.process import DcClient, RemoteDc, StatsRequest
from repro.sim.supervisor import Supervisor


def tcp_config(**tc_overrides) -> KernelConfig:
    return KernelConfig(
        tc=TcConfig.optimized(**tc_overrides),
        channel=ChannelConfig(
            transport="process",
            request_timeout_s=15.0,
            listen_host="127.0.0.1",
        ),
        tc_processes=1,
    )


def kill_process(pid: int, proxy) -> None:
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while not proxy.crashed and time.monotonic() < deadline:
        time.sleep(0.01)
    assert proxy.crashed


class TestTcpListener:
    def test_ephemeral_port_resolved_and_pinned(self, tmp_path):
        dc = RemoteDc(
            "dcx",
            journal_path=str(tmp_path / "dcx.journal"),
            listen_path="tcp://127.0.0.1:0",
        )
        try:
            host_port = dc.listen_path.removeprefix("tcp://")
            host, _, port = host_port.rpartition(":")
            assert host == "127.0.0.1" and int(port) != 0
        finally:
            dc.shutdown()

    def test_dc_client_over_tcp(self, tmp_path):
        dc = RemoteDc(
            "dcx",
            journal_path=str(tmp_path / "dcx.journal"),
            listen_path="tcp://127.0.0.1:0",
        )
        client = None
        try:
            dc.create_table("t")
            client = DcClient("dcx", socket_path=dc.listen_path)
            stats = client.stats()
            assert "t" in stats["dc"]["tables"]
            # The negotiated fast map is live on the socket connection.
            assert client._transport.fast
        finally:
            if client is not None:
                client.close()
            dc.shutdown()

    def test_tagged_only_peers_still_interoperate(self, tmp_path):
        """Mixed-version deployments: with the knob off on either side the
        vocabulary never negotiates, and everything still works tagged."""
        dc = RemoteDc(
            "dcx",
            journal_path=str(tmp_path / "dcx.journal"),
            listen_path="tcp://127.0.0.1:0",
            fast_codec=False,
        )
        client = None
        try:
            assert dc._transport.fast == {}
            dc.create_table("t")
            client = DcClient("dcx", socket_path=dc.listen_path, fast_codec=False)
            assert client._transport.fast == {}
            assert "t" in client.stats()["dc"]["tables"]
        finally:
            if client is not None:
                client.close()
            dc.shutdown()


class TestTcpKernel:
    def test_commit_and_read_over_tcp(self):
        with UnbundledKernel(config=tcp_config(), dc_count=2) as kernel:
            assert all(
                dc.listen_path.startswith("tcp://127.0.0.1:")
                for dc in kernel.dcs.values()
            )
            kernel.create_table("t", dc_name="dc1")
            kernel.create_table("u", dc_name="dc2")
            txn = kernel.begin()
            txn.insert("t", 1, {"v": 10})
            txn.insert("u", 2, {"v": 20})
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", 1) == {"v": 10}
            assert txn.read("u", 2) == {"v": 20}
            txn.commit()

    def test_deferred_writes_coalesce_and_drain(self):
        """Client-side pipelining: past _MAX_PENDING deferred writes in one
        transaction, drained at commit, all visible afterwards."""
        with UnbundledKernel(config=tcp_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            for key in range(70):  # > RemoteTransaction._MAX_PENDING
                txn.insert("t", key, {"v": key})
            txn.commit()
            txn = kernel.begin()
            assert [txn.read("t", k)["v"] for k in range(70)] == list(range(70))
            txn.commit()

    def test_read_drains_pending_writes_first(self):
        with UnbundledKernel(config=tcp_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", "k", 1)
            txn.update("t", "k", 2)
            # Read-your-writes across the deferred buffer.
            assert txn.read("t", "k") == 2
            txn.commit()

    def test_sigkill_dc_heals_on_the_same_port(self):
        """Port pinning under §5.2.1: the healed server re-binds the
        resolved address, so the TC server's socket reconnect succeeds."""
        with UnbundledKernel(config=tcp_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", "counter", 0)
            txn.commit()
            dc = kernel.dc
            addr_before = dc.listen_path
            supervisor = Supervisor(metrics=kernel.metrics)
            supervisor.watch_kernel(kernel)
            txn = kernel.begin()
            # Enough increments to span coalesced batches either side of
            # the kill: the §4.2.1 resend machinery must converge to
            # exactly-once across the mid-batch process death.
            for _ in range(12):
                txn.increment("t", "counter", 1)
            kill_process(dc.pid, dc)
            report = supervisor.heal()
            assert report.dc_restarts >= 1
            assert dc.listen_path == addr_before
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", "counter") == 12
            txn.commit()

    def test_sigkill_tc_heals_over_tcp(self):
        with UnbundledKernel(config=tcp_config(), dc_count=1) as kernel:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", "counter", 0)
            txn.commit()
            supervisor = Supervisor(metrics=kernel.metrics)
            supervisor.watch_kernel(kernel)
            kill_process(kernel.tc_pid, kernel.tc)
            report = supervisor.heal()
            assert report.tc_restarts == 1
            txn = kernel.begin()
            txn.increment("t", "counter", 5)
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", "counter") == 5
            txn.commit()


class TestTcpServiceTier:
    def test_deployment_router_over_tcp(self):
        with TcServiceDeployment(
            tc_count=2, dc_count=2, partitions=8, listen_host="127.0.0.1"
        ) as dep:
            dep.create_table("t")
            assert all(
                dc.listen_path.startswith("tcp://127.0.0.1:")
                for dc in dep.dcs.values()
            )
            router = dep.router

            def txn_fn(tc):
                with tc.begin() as txn:
                    txn.insert("t", "acct", 0)
                    txn.increment("t", "acct", 7)
                return tc.name

            assert router.execute("acct", txn_fn) == router.owner_of("acct").name
            assert router.read_other("t", "acct") == 7


class TestCoalescingTransport:
    def test_deferred_frames_stay_buffered_until_flush(self, tmp_path):
        dc = RemoteDc("dcx", journal_path=str(tmp_path / "dcx.journal"))
        try:
            futures = [
                dc.submit(StatsRequest(tc_id=0), defer=True) for _ in range(3)
            ]
            time.sleep(0.1)
            assert not any(f.done() for f in futures)
            dc.flush()
            payloads = [f.result(10.0).payload for f in futures]
            assert all(p["pid"] == dc.pid for p in payloads)
        finally:
            dc.shutdown()

    def test_nondeferred_send_does_not_overtake_deferred(self, tmp_path):
        """Ordering invariant: a plain call issued after deferred frames
        flushes those first, so replies arrive for all four."""
        dc = RemoteDc("dcx", journal_path=str(tmp_path / "dcx.journal"))
        try:
            deferred = [
                dc.submit(StatsRequest(tc_id=0), defer=True) for _ in range(3)
            ]
            direct = dc.control(StatsRequest(tc_id=0))
            assert direct.payload["pid"] == dc.pid
            assert [f.result(10.0).payload["pid"] for f in deferred] == [dc.pid] * 3
        finally:
            dc.shutdown()
