"""Typed config validation: bad knob values fail at construction.

Config objects are the experiment surface — a typo'd transport or sharing
mode must raise a :class:`~repro.common.errors.ConfigError` the moment
the dataclass is built, not surface minutes later as a hang or a
mysterious attribute error inside a server process.
"""

import pytest

from repro.common.config import (
    SHARING_MODES,
    START_METHODS,
    TRANSPORTS,
    ChannelConfig,
    KernelConfig,
    TcConfig,
)
from repro.common.errors import ConfigError, ReproError


class TestChannelConfig:
    def test_known_transports_accepted(self):
        for transport in TRANSPORTS:
            assert ChannelConfig(transport=transport).transport == transport

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigError) as err:
            ChannelConfig(transport="tcp")
        assert "ChannelConfig.transport" in str(err.value)
        assert "'tcp'" in str(err.value)
        # the error names the accepted vocabulary
        for transport in TRANSPORTS:
            assert repr(transport) in str(err.value)

    def test_known_start_methods_accepted(self):
        for method in START_METHODS:
            config = ChannelConfig(process_start_method=method)
            assert config.process_start_method == method

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigError):
            ChannelConfig(process_start_method="thread")

    def test_config_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            ChannelConfig(transport="carrier-pigeon")


class TestTcConfig:
    def test_known_sharing_modes_accepted(self):
        for mode in SHARING_MODES:
            assert TcConfig(sharing_mode=mode).sharing_mode == mode

    def test_unknown_sharing_mode_rejected(self):
        with pytest.raises(ConfigError) as err:
            TcConfig(sharing_mode="serializable")
        assert "TcConfig.sharing_mode" in str(err.value)

    def test_error_carries_structured_fields(self):
        with pytest.raises(ConfigError) as err:
            TcConfig(sharing_mode="nope")
        assert err.value.field == "TcConfig.sharing_mode"
        assert err.value.value == "nope"
        assert err.value.allowed == SHARING_MODES


class TestKernelConfig:
    def test_defaults_valid(self):
        config = KernelConfig()
        assert config.tc_processes == 0
        assert config.router_partitions == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            KernelConfig(tc_processes=-1)
        with pytest.raises(ConfigError):
            KernelConfig(router_partitions=-2)

    def test_tc_processes_need_process_transport(self):
        with pytest.raises(ConfigError) as err:
            KernelConfig(tc_processes=1)  # default transport is inproc
        assert "tc_processes" in str(err.value)

    def test_tc_processes_with_process_transport_accepted(self):
        config = KernelConfig(
            channel=ChannelConfig(transport="process"), tc_processes=1
        )
        assert config.tc_processes == 1
