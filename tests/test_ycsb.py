"""YCSB workload presets over both engines."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.common.errors import ReproError
from repro.kernel.monolithic import MonolithicEngine
from repro.workloads.generator import KeyDistribution
from repro.workloads.ycsb import PRESETS, YcsbConfig, YcsbWorkload


def unbundled_engine():
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=1024)))
    kernel.create_table("usertable")
    return kernel


class TestPresets:
    def test_fractions_sum_to_one(self):
        for preset, mix in PRESETS.items():
            assert abs(sum(mix) - 1.0) < 1e-9, preset

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError):
            YcsbWorkload(lambda: None, config=YcsbConfig(preset="Z"))

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_preset_runs_on_unbundled(self, preset):
        kernel = unbundled_engine()
        workload = YcsbWorkload(
            kernel.begin,
            config=YcsbConfig(preset=preset, keyspace=100, seed=3),
        )
        workload.load()
        stats = workload.run(80)
        assert stats.committed > 0
        assert stats.committed + stats.aborted == 80

    def test_preset_a_runs_on_monolithic(self):
        engine = MonolithicEngine(DcConfig(page_size=1024))
        engine.create_table("usertable")
        workload = YcsbWorkload(
            engine.begin, config=YcsbConfig(preset="A", keyspace=100)
        )
        workload.load()
        stats = workload.run(80)
        assert stats.committed > 0

    def test_preset_f_rmw_conserves_counter_semantics(self):
        """Preset F is pure read/increment: the sum of all values equals
        the load-time sum plus exactly the committed increments."""
        kernel = unbundled_engine()
        workload = YcsbWorkload(
            kernel.begin,
            config=YcsbConfig(
                preset="F", keyspace=50, distribution=KeyDistribution.UNIFORM
            ),
        )
        workload.load()
        base_sum = sum(key * 10 for key in range(50))
        stats = workload.run(200)
        with kernel.begin() as txn:
            total = sum(value for _key, value in txn.scan("usertable"))
        increments = total - base_sum
        assert 0 <= increments <= 200
        assert stats.aborted == 0

    def test_preset_d_inserts_extend_keyspace(self):
        kernel = unbundled_engine()
        workload = YcsbWorkload(
            kernel.begin, config=YcsbConfig(preset="D", keyspace=50, seed=8)
        )
        workload.load()
        workload.run(200)
        with kernel.begin() as txn:
            assert len(txn.scan("usertable")) > 50

    def test_deterministic_given_seed(self):
        def run_once():
            kernel = unbundled_engine()
            workload = YcsbWorkload(
                kernel.begin, config=YcsbConfig(preset="A", keyspace=50, seed=42)
            )
            workload.load()
            workload.run(100)
            with kernel.begin() as txn:
                return tuple(txn.scan("usertable"))

        assert run_once() == run_once()

    def test_survives_crash_mid_benchmark(self):
        kernel = unbundled_engine()
        workload = YcsbWorkload(
            kernel.begin, config=YcsbConfig(preset="A", keyspace=50)
        )
        workload.load()
        workload.run(50)
        kernel.crash_all()
        kernel.recover_all()
        stats = workload.run(50)
        assert stats.committed > 0
