"""The TC-side undo-info cache (docs/architecture.md §9.2).

The honest cost of unbundling is the read-before-write that fetches undo
information (Section 4.1.1); the cache elides it for keys this TC already
learned under a lock it held.  Soundness rests on the TC being the sole
writer of its keys — and on invalidating at every event that could
falsify an entry: own write aborted or ambiguous, DC reset, TC crash.
"""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import TcConfig
from repro.common.errors import TransactionAborted


def cached_kernel(**tc_kwargs):
    tc_kwargs.setdefault("undo_cache", True)
    kernel = UnbundledKernel(KernelConfig(tc=TcConfig(**tc_kwargs)))
    kernel.create_table("t")
    return kernel


def undo_reads(kernel):
    return kernel.metrics.get("tc.undo_info_reads")


class TestCacheHits:
    def test_cache_is_off_by_default(self, kernel):
        for _ in range(2):
            with kernel.begin() as txn:
                txn.insert("t", 1, "x") if txn.read("t", 1) is None else txn.update(
                    "t", 1, "x"
                )
        assert kernel.tc._undo_cache is None
        assert kernel.metrics.get("tc.undo_cache_hits") == 0
        assert undo_reads(kernel) > 0

    def test_repeat_writer_skips_read_before_write(self):
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")  # miss: one read learns ABSENT
        before = undo_reads(kernel)
        with kernel.begin() as txn:
            txn.update("t", 1, "v2")  # committed value is cached
        assert undo_reads(kernel) == before
        assert kernel.metrics.get("tc.undo_cache_hits") == 1

    def test_cached_undo_info_rolls_back_correctly(self):
        """The abort restores the *cached* prior value — proving the cache
        fed the undo information, and fed it right."""
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        with kernel.begin() as txn:
            txn.update("t", 1, "v2")
        before = undo_reads(kernel)
        txn = kernel.begin()
        txn.update("t", 1, "v3")
        txn.abort()
        assert undo_reads(kernel) == before  # undo info came from the cache
        with kernel.begin() as check:
            assert check.read("t", 1) == "v2"

    def test_absence_is_cached_too(self):
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        with kernel.begin() as txn:
            txn.delete("t", 1)  # commits knowledge that key 1 is absent
        before = undo_reads(kernel)
        with kernel.begin() as txn:
            txn.insert("t", 1, "v2")  # duplicate-check served by the cache
        assert undo_reads(kernel) == before
        with kernel.begin() as check:
            assert check.read("t", 1) == "v2"

    def test_eviction_bounds_the_cache(self):
        kernel = cached_kernel(undo_cache_size=4)
        for key in range(10):
            with kernel.begin() as txn:
                txn.insert("t", key, key)
        assert len(kernel.tc._undo_cache) <= 4

    def test_ownership_guard_gates_caching(self):
        """With an ownership guard installed (multi-TC sharing, Section 6)
        a foreign TC may mutate unowned keys behind our back — they must
        never enter the cache."""
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "mine")
            txn.insert("t", 7, "theirs")
        kernel.tc.ownership_guard = lambda table, key: key != 7
        kernel.tc._undo_cache.clear()
        with kernel.begin() as txn:
            assert txn.read("t", 1) == "mine"
            assert txn.read("t", 7) == "theirs"
        assert ("t", 1) in kernel.tc._undo_cache
        assert ("t", 7) not in kernel.tc._undo_cache

    def test_rejects_invalid_cache_size(self):
        with pytest.raises(ValueError):
            UnbundledKernel(
                KernelConfig(tc=TcConfig(undo_cache=True, undo_cache_size=0))
            )


class TestInvalidation:
    def test_abort_invalidates_touched_keys(self):
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        txn = kernel.begin()
        txn.update("t", 1, "v2")
        txn.abort()
        assert ("t", 1) not in kernel.tc._undo_cache
        before = undo_reads(kernel)
        with kernel.begin() as txn:
            txn.update("t", 1, "v3")  # reads through again
        assert undo_reads(kernel) == before + 1
        assert kernel.metrics.get("tc.undo_cache_invalidations") >= 1
        with kernel.begin() as check:
            assert check.read("t", 1) == "v3"

    def test_tc_crash_clears_the_cache(self):
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        kernel.crash_tc()
        assert len(kernel.tc._undo_cache) == 0
        kernel.recover_tc()
        before = undo_reads(kernel)
        with kernel.begin() as txn:
            txn.update("t", 1, "v2")
        assert undo_reads(kernel) == before + 1

    def test_dc_restart_invalidates_its_tables(self):
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        assert ("t", 1) in kernel.tc._undo_cache
        kernel.crash_dc()
        kernel.recover_dc()
        assert ("t", 1) not in kernel.tc._undo_cache
        before = undo_reads(kernel)
        with kernel.begin() as txn:
            txn.update("t", 1, "v2")
        assert undo_reads(kernel) == before + 1
        with kernel.begin() as check:
            assert check.read("t", 1) == "v2"

    def test_zombie_rollback_invalidates_on_completion(self):
        """A rollback interrupted by a DC outage finishes later — and only
        then may the inverses have changed DC state, so the invalidation
        must cover the eventual completion, not just the abort."""
        kernel = cached_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        txn = kernel.begin()
        txn.update("t", 1, "v2")  # delivered synchronously
        kernel.crash_dc()
        txn.abort()  # inverse undeliverable: parked as a zombie
        assert kernel.tc.pending_zombies() == 1
        kernel.recover_dc()
        kernel.tc.retry_pending()
        assert kernel.tc.pending_zombies() == 0
        assert ("t", 1) not in kernel.tc._undo_cache
        with kernel.begin() as check:
            assert check.read("t", 1) == "v1"


class TestCacheWithBatching:
    def test_fast_paths_compose_to_few_messages(self):
        """The FIG1 headline: with batching + undo cache, a 4-op update
        transaction costs at most 3 messages (one envelope, plus slack for
        a piggybacked LWM broadcast) and zero undo-info reads."""
        kernel = UnbundledKernel(KernelConfig(tc=TcConfig.optimized()))
        kernel.create_table("t")
        with kernel.begin() as txn:
            for key in range(4):
                txn.insert("t", key, "seed")
        before_reads = undo_reads(kernel)
        before_msgs = kernel.metrics.get("channel.requests")
        with kernel.begin() as txn:
            for key in range(4):
                txn.update("t", key, "updated")
        assert undo_reads(kernel) == before_reads
        assert kernel.metrics.get("channel.requests") - before_msgs <= 3
        assert kernel.metrics.get("tc.undo_cache_hits") >= 4
        with kernel.begin() as check:
            assert check.scan("t") == [(key, "updated") for key in range(4)]

    def test_batch_rejection_drops_cached_key(self):
        """A semantic rejection inside an envelope leaves that key's DC
        state authoritative — the cache entry is dropped with it."""
        from repro.common.ops import OpResult, OpStatus, UpdateOp

        kernel = UnbundledKernel(KernelConfig(tc=TcConfig.optimized()))
        kernel.create_table("t")
        with kernel.begin() as txn:
            txn.insert("t", 1, "v1")
        real = kernel.dc.perform_operation

        def rejecting(tc_id, op_id, op, resend=False):
            if isinstance(op, UpdateOp) and op.key == 1:
                return OpResult(status=OpStatus.ERROR, message="injected")
            return real(tc_id, op_id, op, resend=resend)

        kernel.dc.perform_operation = rejecting
        txn = kernel.begin()
        txn.update("t", 1, "v2")
        with pytest.raises(TransactionAborted):
            txn.commit()
        kernel.dc.perform_operation = real
        assert ("t", 1) not in kernel.tc._undo_cache
        with kernel.begin() as check:
            assert check.read("t", 1) == "v1"
