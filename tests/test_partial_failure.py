"""Partial failures (Section 5.3): DC crash, TC crash, both, mid-protocol."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, PageSyncStrategy
from repro.common.errors import CrashedError
from tests.conftest import populate


def small_kernel(**dc_kwargs):
    config = KernelConfig(dc=DcConfig(page_size=512, **dc_kwargs))
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestDcFailure:
    """Section 5.3.2, DC Failure: conventional redo from the RSSP."""

    def test_cache_only_state_restored_by_redo(self):
        kernel = small_kernel()
        populate(kernel, 50)  # never flushed: cache + logs only
        kernel.crash_dc()
        kernel.recover_dc()  # prompts the TC to resend from RSSP
        with kernel.begin() as check:
            assert len(check.scan("t")) == 50
            assert check.read("t", 25) == "value-00025"

    def test_splits_survive_via_dc_log(self):
        kernel = small_kernel()
        populate(kernel, 100)
        assert kernel.metrics.get("btree.leaf_splits") > 0
        kernel.crash_dc()
        kernel.recover_dc()
        structure = kernel.dc.table("t").structure
        structure.validate()
        assert structure.record_count() == 100

    def test_partially_flushed_state(self):
        """Some pages stable, some not: redo fills exactly the gaps."""
        kernel = small_kernel()
        populate(kernel, 40)
        kernel.tc.broadcast_eosl()
        kernel.dc.buffer.flush_all()  # everything stable
        populate_from = 40
        for key in range(populate_from, populate_from + 20):
            with kernel.begin() as txn:
                txn.insert("t", key, f"value-{key:05d}")  # cache only
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 60

    def test_operations_during_crash_raise(self):
        kernel = small_kernel()
        populate(kernel, 5)
        kernel.crash_dc()
        txn = kernel.begin()
        with pytest.raises(CrashedError):
            txn.insert("t", 99, "x")
        kernel.recover_dc()
        kernel.tc.abort(txn)
        with kernel.begin() as retry:
            retry.insert("t", 99, "x")

    def test_repeated_dc_crashes(self):
        kernel = small_kernel()
        populate(kernel, 30)
        for _ in range(3):
            kernel.crash_dc()
            kernel.recover_dc()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 30

    def test_in_flight_txn_survives_dc_crash(self):
        """The TC holds its state; only the DC cache is lost.  The active
        transaction continues after recovery because redo restored its
        (logged, resent) operations."""
        kernel = small_kernel()
        populate(kernel, 10)
        txn = kernel.begin()
        txn.update("t", 1, "mid-flight")
        kernel.crash_dc()
        kernel.dc.recover(notify_tcs=True)  # TC resends from RSSP
        assert txn.read("t", 1) == "mid-flight"
        txn.commit()
        with kernel.begin() as check:
            assert check.read("t", 1) == "mid-flight"


class TestTcFailure:
    """Section 5.3.2, TC Failure: reset exactly the lost-operation pages."""

    def test_lost_ops_erased_from_dc_cache(self):
        kernel = small_kernel()
        populate(kernel, 30)
        kernel.tc.checkpoint()
        loser = kernel.begin()
        loser.update("t", 3, "lost-forever")  # volatile tail only
        # the DC cache now reflects an operation that will be lost
        kernel.crash_tc()
        stats = kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", 3) == "value-00003"

    def test_causality_no_lost_op_is_ever_stable(self):
        """WAL across components: flushes exclude unforced operations, so
        reset never needs to touch stable storage."""
        kernel = small_kernel()
        populate(kernel, 20)
        loser = kernel.begin()
        loser.update("t", 5, "unlogged")
        flushed = kernel.dc.buffer.flush_all()  # must skip page with key 5
        state = kernel.dc.recovery.load_page(
            kernel.dc.table("t").structure.find_leaf(5).page_id
        )
        if state is not None:
            record = next((r for r in state.records if r.key == 5), None)
            assert record is None or record.committed == "value-00005"

    def test_tc_crash_does_not_amnesia_the_dc(self):
        """Section 3.2 challenge 4: the DC keeps its cache for everything
        not affected by the lost tail (DROP_AFFECTED counts)."""
        kernel = small_kernel()
        populate(kernel, 30)
        kernel.tc.checkpoint()
        cached_before = len(kernel.dc.buffer.cached_ids())
        loser = kernel.begin()
        loser.update("t", 3, "lost")
        kernel.crash_tc()
        from repro.storage.buffer import ResetMode

        kernel.recover_tc(ResetMode.DROP_AFFECTED)
        # only the page holding key 3 was dropped (plus maybe a fetch)
        assert len(kernel.dc.buffer.cached_ids()) >= cached_before - 2


class TestBothFail:
    """The fail-together case needs no new techniques (Section 5.3.1)."""

    def test_crash_all_recover_all(self):
        kernel = small_kernel()
        populate(kernel, 50)
        loser = kernel.begin()
        loser.update("t", 10, "dirty")
        kernel.tc.force_log()
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as check:
            assert check.read("t", 10) == "value-00010"
            assert len(check.scan("t")) == 50

    def test_sequential_tc_then_dc_crash(self):
        kernel = small_kernel()
        populate(kernel, 20)
        kernel.crash_tc()
        kernel.recover_tc()
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 20


class TestSyncStrategiesUnderFailure:
    @pytest.mark.parametrize(
        "strategy",
        [
            PageSyncStrategy.FULL_ABLSN,
            PageSyncStrategy.DELAY,
            PageSyncStrategy.PRUNE_THEN_WRITE,
        ],
    )
    def test_all_strategies_recover(self, strategy):
        kernel = small_kernel(sync_strategy=strategy)
        populate(kernel, 40)
        kernel.tc.checkpoint()
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 40

    @pytest.mark.parametrize(
        "strategy",
        [
            PageSyncStrategy.FULL_ABLSN,
            PageSyncStrategy.DELAY,
            PageSyncStrategy.PRUNE_THEN_WRITE,
        ],
    )
    def test_all_strategies_survive_tc_crash(self, strategy):
        kernel = small_kernel(sync_strategy=strategy)
        populate(kernel, 40)
        loser = kernel.begin()
        loser.update("t", 9, "dirty")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", 9) == "value-00009"


class TestVersionedAcrossFailures:
    def _versioned_kernel(self):
        config = KernelConfig(dc=DcConfig(page_size=512))
        kernel = UnbundledKernel(config)
        kernel.create_table("v", versioned=True)
        return kernel

    def test_committed_versioned_txn_promoted_after_tc_crash(self):
        """Commit record stable, promote lost with the tail: restart must
        re-issue the promote (committed-transaction completion)."""
        kernel = self._versioned_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "v1")
        # crash with the TxnEnd (and possibly promote) unforced
        kernel.crash_tc()
        kernel.recover_tc()
        from repro.common.ops import ReadFlavor

        assert kernel.tc.read_other("v", 1, ReadFlavor.READ_COMMITTED) == "v1"

    def test_loser_versioned_txn_discarded(self):
        kernel = self._versioned_kernel()
        with kernel.begin() as setup:
            setup.insert("v", 1, "committed")
        loser = kernel.begin()
        loser.update("v", 1, "uncommitted")
        kernel.tc.force_log()
        kernel.crash_tc()
        kernel.recover_tc()
        from repro.common.ops import ReadFlavor

        assert kernel.tc.read_other("v", 1, ReadFlavor.READ_COMMITTED) == "committed"
        assert kernel.tc.read_other("v", 1, ReadFlavor.DIRTY) == "committed"

    def test_versioned_dc_crash_redo(self):
        kernel = self._versioned_kernel()
        for key in range(20):
            with kernel.begin() as txn:
                txn.insert("v", key, f"v{key}")
        kernel.crash_dc()
        kernel.recover_dc()
        from repro.common.ops import ReadFlavor

        for key in (0, 10, 19):
            assert (
                kernel.tc.read_other("v", key, ReadFlavor.READ_COMMITTED)
                == f"v{key}"
            )
