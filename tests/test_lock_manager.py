"""The TC lock manager: modes, upgrades, deadlocks, fairness, threads."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import DeadlockError, LockTimeoutError
from repro.sim.metrics import Metrics
from repro.tc.lock_manager import (
    LockManager,
    LockMode,
    combined_mode,
    mode_covers,
)


def make_lm(timeout=0.2, deadlock=True):
    return LockManager(Metrics(), deadlock_detection=deadlock, timeout=timeout)


class TestCompatibility:
    def test_shared_locks_coexist(self):
        lm = make_lm()
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        assert lm.holds(1, "r", LockMode.S) and lm.holds(2, "r", LockMode.S)

    def test_x_excludes_everything(self):
        lm = make_lm(timeout=0.05)
        lm.acquire(1, "r", LockMode.X)
        for mode in (LockMode.S, LockMode.X, LockMode.IS, LockMode.IX):
            with pytest.raises(LockTimeoutError):
                lm.acquire(2, "r", mode, timeout=0.05)

    def test_intention_modes_coexist(self):
        lm = make_lm()
        lm.acquire(1, "t", LockMode.IX)
        lm.acquire(2, "t", LockMode.IX)
        lm.acquire(3, "t", LockMode.IS)

    def test_s_blocks_ix(self):
        lm = make_lm(timeout=0.05)
        lm.acquire(1, "t", LockMode.S)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "t", LockMode.IX, timeout=0.05)

    def test_six_allows_is_only(self):
        lm = make_lm(timeout=0.05)
        lm.acquire(1, "t", LockMode.SIX)
        lm.acquire(2, "t", LockMode.IS)
        for mode in (LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X):
            with pytest.raises(LockTimeoutError):
                lm.acquire(3, "t", mode, timeout=0.05)


class TestReentrancyAndUpgrade:
    def test_reacquire_same_mode_free(self):
        lm = make_lm()
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(1, "r", LockMode.S)
        assert lm.locks_held(1) == 1

    def test_x_covers_s(self):
        lm = make_lm()
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(1, "r", LockMode.S)  # no-op
        assert lm.holds(1, "r", LockMode.X)

    def test_upgrade_s_to_x_when_sole_holder(self):
        lm = make_lm()
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(1, "r", LockMode.X)
        assert lm.holds(1, "r", LockMode.X)

    def test_upgrade_ix_plus_s_is_six(self):
        lm = make_lm()
        lm.acquire(1, "t", LockMode.IX)
        lm.acquire(1, "t", LockMode.S)
        assert lm.holds(1, "t", LockMode.SIX)

    def test_upgrade_blocks_on_other_holder(self):
        lm = make_lm(timeout=0.05)
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, "r", LockMode.X, timeout=0.05)

    def test_mode_helpers(self):
        assert combined_mode(LockMode.IS, LockMode.IX) is LockMode.IX
        assert combined_mode(LockMode.S, LockMode.IX) is LockMode.SIX
        assert mode_covers(LockMode.X, LockMode.S)
        assert not mode_covers(LockMode.S, LockMode.X)


class TestRelease:
    def test_release_wakes_waiter(self):
        lm = make_lm(timeout=2.0)
        lm.acquire(1, "r", LockMode.X)
        acquired = threading.Event()

        def waiter():
            lm.acquire(2, "r", LockMode.X)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        lm.release(1, "r")
        thread.join(timeout=2)
        assert acquired.is_set()

    def test_release_all(self):
        lm = make_lm()
        for resource in ("a", "b", "c"):
            lm.acquire(1, resource, LockMode.X)
        assert lm.release_all(1) == 3
        assert lm.locks_held(1) == 0
        lm.acquire(2, "a", LockMode.X)  # immediately grantable

    def test_release_unheld_is_noop(self):
        lm = make_lm()
        lm.release(1, "nothing")

    def test_clear_drops_everything(self):
        lm = make_lm()
        lm.acquire(1, "a", LockMode.X)
        lm.clear()
        assert lm.total_locks() == 0
        lm.acquire(2, "a", LockMode.X)


class TestDeadlockDetection:
    def test_two_txn_cycle_detected(self):
        lm = make_lm(timeout=5.0)
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        failure: list[Exception] = []
        started = threading.Event()

        def t1_then_blocks():
            started.set()
            try:
                lm.acquire(1, "b", LockMode.X)  # blocks on txn 2
            except DeadlockError as exc:
                failure.append(exc)

        thread = threading.Thread(target=t1_then_blocks)
        thread.start()
        started.wait()
        time.sleep(0.05)
        # txn 2 closing the cycle must be chosen as victim
        with pytest.raises(DeadlockError) as info:
            lm.acquire(2, "a", LockMode.X)
        assert info.value.txn_id == 2
        lm.release_all(2)
        thread.join(timeout=2)
        assert not failure  # txn 1 got its lock after the victim released

    def test_upgrade_deadlock_detected(self):
        """Two S holders both upgrading to X — the classic conversion
        deadlock."""
        lm = make_lm(timeout=5.0)
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        results: list[object] = []

        def upgrade(txn_id):
            try:
                lm.acquire(txn_id, "r", LockMode.X)
                results.append(("ok", txn_id))
            except DeadlockError:
                results.append(("deadlock", txn_id))
                lm.release_all(txn_id)

        threads = [threading.Thread(target=upgrade, args=(t,)) for t in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        outcomes = {kind for kind, _ in results}
        assert "deadlock" in outcomes and "ok" in outcomes

    def test_timeout_fallback_without_detection(self):
        lm = make_lm(timeout=0.05, deadlock=False)
        lm.acquire(1, "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", LockMode.X)


class TestFairness:
    def test_waiting_writer_not_starved_by_new_readers(self):
        lm = make_lm(timeout=5.0)
        lm.acquire(1, "r", LockMode.S)
        writer_granted = threading.Event()

        def writer():
            lm.acquire(2, "r", LockMode.X)
            writer_granted.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        # A new reader must queue behind the waiting writer (FIFO).
        reader_granted = threading.Event()

        def reader():
            lm.acquire(3, "r", LockMode.S)
            reader_granted.set()

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        time.sleep(0.05)
        assert not reader_granted.is_set()
        lm.release_all(1)
        thread.join(timeout=2)
        assert writer_granted.is_set()
        lm.release_all(2)
        reader_thread.join(timeout=2)
        assert reader_granted.is_set()


class TestConcurrentStress:
    def test_many_threads_disjoint_resources(self):
        lm = make_lm(timeout=5.0)
        errors: list[Exception] = []

        def worker(txn_id):
            try:
                for i in range(50):
                    resource = ("rec", txn_id, i)
                    lm.acquire(txn_id, resource, LockMode.X)
                lm.release_all(txn_id)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert lm.total_locks() == 0

    def test_contended_counter_serializes(self):
        lm = make_lm(timeout=10.0)
        counter = {"value": 0}

        def worker(txn_id):
            for _ in range(100):
                lm.acquire(txn_id, "counter", LockMode.X)
                value = counter["value"]
                counter["value"] = value + 1
                lm.release(txn_id, "counter")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(1, 5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert counter["value"] == 400


class TestStriping:
    """The striped hash table (``TcConfig.lock_stripes``)."""

    @pytest.mark.parametrize("stripes", [1, 2, 16])
    def test_semantics_identical_across_stripe_counts(self, stripes):
        lm = LockManager(Metrics(), timeout=0.2, stripes=stripes)
        assert lm.stripe_count == stripes
        lm.acquire(1, ("rec", "t", 1), LockMode.X)
        lm.acquire(1, ("rec", "t", 2), LockMode.S)
        lm.acquire(2, ("rec", "t", 2), LockMode.S)
        assert lm.holds(1, ("rec", "t", 1), LockMode.X)
        assert lm.locks_held(1) == 2
        assert lm.total_locks() == 3
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, ("rec", "t", 1), LockMode.S, timeout=0.05)
        assert lm.release_all(1) == 2
        lm.acquire(2, ("rec", "t", 1), LockMode.S)  # released lock grants now
        assert lm.release_all(2) == 2
        assert lm.total_locks() == 0

    @pytest.mark.parametrize("stripes", [1, 4])
    def test_deadlock_detected_across_stripes(self, stripes):
        """The cycle's resources hash to different stripes; the detector's
        all-stripe snapshot must still see both waits-for edges."""
        lm = LockManager(Metrics(), timeout=5.0, stripes=stripes)
        lm.acquire(1, ("rec", "t", "a"), LockMode.X)
        lm.acquire(2, ("rec", "t", "b"), LockMode.X)
        outcome: dict[str, object] = {}

        def blocked_then_deadlocked():
            try:
                lm.acquire(1, ("rec", "t", "b"), LockMode.X)
                outcome["t1"] = "granted"
            except (DeadlockError, LockTimeoutError) as exc:
                outcome["t1"] = exc

        thread = threading.Thread(target=blocked_then_deadlocked)
        thread.start()
        time.sleep(0.1)  # let txn 1 park as a waiter on "b"
        victims = []
        try:
            lm.acquire(2, ("rec", "t", "a"), LockMode.X)
        except DeadlockError as exc:
            victims.append(exc)
            lm.release_all(2)
        thread.join(timeout=10)
        assert not thread.is_alive()
        # Exactly one side dies (the requester that closed the cycle);
        # the survivor gets its grant once the victim releases.
        if victims:
            assert outcome["t1"] == "granted"
        else:
            assert isinstance(outcome["t1"], DeadlockError)

    def test_concurrent_throughput_across_stripes(self):
        """Disjoint hot resources on a striped table: all threads finish
        (no lost wakeups, no cross-stripe interference)."""
        lm = LockManager(Metrics(), timeout=10.0, stripes=16)
        errors: list[Exception] = []

        def worker(txn_id):
            try:
                for i in range(200):
                    resource = ("rec", "t", (txn_id, i % 8))
                    lm.acquire(txn_id, resource, LockMode.X)
                    lm.release(txn_id, resource)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert lm.total_locks() == 0

    def test_wait_metric_attributed_under_contention(self):
        metrics = Metrics()
        lm = LockManager(metrics, timeout=5.0, stripes=16)
        lm.acquire(1, "hot", LockMode.X)

        def contender():
            lm.acquire(2, "hot", LockMode.X)
            lm.release_all(2)

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        lm.release_all(1)
        thread.join(timeout=10)
        assert metrics.get("locks.waits") >= 1
