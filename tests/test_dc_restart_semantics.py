"""DC-restart subtleties: the force-first rule and cross-DC transactions.

When a DC crashes, acknowledged operations of *still-active* transactions
existed only in the DC's cache and the TC's volatile log tail.  Nobody's
resend loop covers them (they were acked), so the restart prompt handler
*forces the TC log first* and then redoes from the RSSP — making the tail
stable and therefore part of the redo stream.  These tests pin that
load-bearing behavior.
"""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from tests.conftest import populate


def small_kernel(dc_count=1):
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)), dc_count=dc_count)
    if dc_count == 1:
        kernel.create_table("t")
    return kernel


class TestForceFirst:
    def test_acked_volatile_ops_of_active_txn_survive_dc_crash(self):
        kernel = small_kernel()
        populate(kernel, 10)
        txn = kernel.begin()
        txn.update("t", 3, "acked-but-volatile")
        assert kernel.tc.log.needs_force(kernel.tc.log.last_lsn)  # tail!
        kernel.crash_dc()
        kernel.recover_dc()  # prompt forces the log, then redoes
        assert not kernel.tc.log.needs_force(txn.op_records[-1].lsn)
        txn.commit()
        with kernel.begin() as check:
            assert check.read("t", 3) == "acked-but-volatile"

    def test_active_txn_can_still_abort_after_dc_recovery(self):
        kernel = small_kernel()
        populate(kernel, 10)
        txn = kernel.begin()
        txn.update("t", 3, "doomed")
        kernel.crash_dc()
        kernel.recover_dc()
        txn.abort()  # inverse applies against the redone state
        with kernel.begin() as check:
            assert check.read("t", 3) == "value-00003"

    def test_restart_prompt_advances_eosl_at_dc(self):
        kernel = small_kernel()
        populate(kernel, 5)
        txn = kernel.begin()
        txn.insert("t", 99, "tail")
        kernel.crash_dc()
        kernel.recover_dc()
        assert kernel.dc.buffer.eosl_for(kernel.tc.tc_id) >= txn.op_records[-1].lsn
        kernel.tc.abort(txn)


class TestCrossDcTransactionDuringDcCrash:
    def test_one_dc_of_a_cross_dc_txn_crashes(self):
        """The surviving DC keeps its half; the crashed DC's half is
        restored by redo; the transaction commits wholly."""
        kernel = small_kernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        txn = kernel.begin()
        txn.insert("a", 1, "on-dc1")
        txn.insert("b", 1, "on-dc2")
        kernel.crash_dc("dc1")
        kernel.dcs["dc1"].recover(notify_tcs=True)
        txn.commit()
        with kernel.begin() as check:
            assert check.read("a", 1) == "on-dc1"
            assert check.read("b", 1) == "on-dc2"

    def test_cross_dc_abort_with_one_dc_freshly_recovered(self):
        kernel = small_kernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        txn = kernel.begin()
        txn.insert("a", 1, "x")
        txn.insert("b", 1, "y")
        kernel.crash_dc("dc2")
        kernel.dcs["dc2"].recover(notify_tcs=True)
        txn.abort()
        with kernel.begin() as check:
            assert check.read("a", 1) is None
            assert check.read("b", 1) is None

    def test_sequential_crashes_of_both_dcs(self):
        kernel = small_kernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        for key in range(10):
            with kernel.begin() as txn:
                txn.insert("a", key, key)
                txn.insert("b", key, -key)
        kernel.crash_dc("dc1")
        kernel.dcs["dc1"].recover(notify_tcs=True)
        kernel.crash_dc("dc2")
        kernel.dcs["dc2"].recover(notify_tcs=True)
        with kernel.begin() as check:
            assert len(check.scan("a")) == 10
            assert len(check.scan("b")) == 10
