"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import KernelConfig, Metrics, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, TcConfig


@pytest.fixture
def metrics() -> Metrics:
    return Metrics()


@pytest.fixture
def kernel() -> UnbundledKernel:
    """A default single-DC kernel with one table ``t``."""
    kernel = UnbundledKernel()
    kernel.create_table("t")
    return kernel


@pytest.fixture
def small_page_kernel() -> UnbundledKernel:
    """Small pages force frequent splits/consolidations."""
    config = KernelConfig(dc=DcConfig(page_size=512))
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


def populate(kernel: UnbundledKernel, count: int, table: str = "t") -> None:
    for key in range(count):
        with kernel.begin() as txn:
            txn.insert(table, key, f"value-{key:05d}")


@pytest.fixture
def populated_kernel(small_page_kernel: UnbundledKernel) -> UnbundledKernel:
    populate(small_page_kernel, 120)
    return small_page_kernel
