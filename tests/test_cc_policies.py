"""Conformance suite for the pluggable concurrency-control policies.

Every policy behind ``TcConfig.cc_policy`` — strict 2PL, OCC and MVCC
snapshot reads — must pass the *same* transactional contract: committed
work is durably visible, aborted work leaves no trace, write-write
conflicts resolve (by blocking or aborting, never by corruption), and a
committed transaction never observes a phantom.  Where the policies
legitimately differ (does a read block? does the conflict surface at
the operation or at commit?) the expectations are spelled out per
policy, so the matrix documents the contract instead of averaging over
it.

The schedule explorer (tests/test_schedule_explorer.py) proves the
policies serializable across thousands of interleavings; this file
pins the human-sized semantics a policy switch must preserve.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    KernelConfig,
    TransactionAborted,
    UnbundledKernel,
)
from repro.common.config import CC_POLICIES, ConfigError, TcConfig
from repro.common.errors import ReproError


def make_kernel(policy, optimized=False, **overrides):
    if optimized:
        tc = TcConfig.optimized(cc_policy=policy, **overrides)
    else:
        tc = TcConfig(cc_policy=policy, **overrides)
    kernel = UnbundledKernel(KernelConfig(tc=tc))
    kernel.create_table("t")
    return kernel


@pytest.fixture(params=CC_POLICIES)
def policy(request):
    return request.param


@pytest.fixture
def cc_kernel(policy):
    kernel = make_kernel(policy)
    yield kernel
    kernel.close()


def seed_rows(kernel, keys=(1, 2, 3)):
    with kernel.begin() as txn:
        for key in keys:
            txn.insert("t", key, f"seed.{key}")


class TestConformance:
    def test_policy_reaches_the_tc(self, cc_kernel, policy):
        assert cc_kernel.tc.stats()["cc_policy"] == policy

    def test_four_op_transaction_commits(self, cc_kernel):
        seed_rows(cc_kernel)
        with cc_kernel.begin() as txn:
            txn.insert("t", 10, "new")
            txn.update("t", 1, "updated")
            txn.delete("t", 2)
            assert txn.read("t", 3) == "seed.3"
        with cc_kernel.begin() as check:
            assert check.read("t", 10) == "new"
            assert check.read("t", 1) == "updated"
            assert check.read("t", 2) is None
            assert check.read("t", 3) == "seed.3"

    def test_four_op_transaction_aborts_without_trace(self, cc_kernel):
        seed_rows(cc_kernel)
        txn = cc_kernel.begin()
        txn.insert("t", 10, "new")
        txn.update("t", 1, "updated")
        txn.delete("t", 2)
        assert txn.read("t", 3) == "seed.3"
        txn.abort()
        with cc_kernel.begin() as check:
            assert check.read("t", 10) is None
            assert check.read("t", 1) == "seed.1"
            assert check.read("t", 2) == "seed.2"
            assert [k for k, _ in check.scan("t")] == [1, 2, 3]

    def test_write_write_conflict_resolves(self, policy):
        """Writers keep exclusive record locks under every policy (the
        undo-information discipline), so the second writer either waits
        it out or aborts — and succeeds once the first settles."""
        kernel = make_kernel(policy, lock_timeout=0.05)
        try:
            seed_rows(kernel)
            first = kernel.begin()
            first.update("t", 1, "first")
            second = kernel.begin()
            with pytest.raises((TransactionAborted, ReproError)):
                second.update("t", 1, "second")
            first.commit()
            with kernel.begin() as retry:
                retry.update("t", 1, "second-retry")
            with kernel.begin() as check:
                assert check.read("t", 1) == "second-retry"
        finally:
            kernel.close()

    def test_read_under_active_writer(self, policy):
        """The policy matrix for a read-only transaction hitting a key
        with an uncommitted in-place write:

        - 2pl: the read *blocks* on the writer's X lock (times out here);
        - occ: the read conflict-aborts immediately — never blocks;
        - mvcc: the read returns the committed before-image — never
          blocks, never aborts.
        """
        timeout = 0.1 if policy == "2pl" else 5.0
        kernel = make_kernel(policy, lock_timeout=timeout)
        try:
            seed_rows(kernel)
            writer = kernel.begin()
            writer.update("t", 1, "uncommitted")
            reader = kernel.begin()
            start = time.monotonic()
            if policy == "2pl":
                with pytest.raises((TransactionAborted, ReproError)):
                    reader.read("t", 1)
            elif policy == "occ":
                with pytest.raises(TransactionAborted):
                    reader.read("t", 1)
            else:
                assert reader.read("t", 1) == "seed.1"
                reader.commit()  # before the writer: validation passes
            elapsed = time.monotonic() - start
            if policy != "2pl":
                # Far below lock_timeout: the read never touched a lock.
                assert elapsed < 2.0
            writer.commit()
        finally:
            kernel.close()

    def test_phantom_window_scan_then_insert(self, policy):
        """A committed scan admits no phantom under any policy, but the
        mechanism differs: 2pl gap locks *block* the insert; occ/mvcc
        let the insert commit and fail the scanner's table-stamp
        validation instead."""
        kernel = make_kernel(policy, lock_timeout=0.05)
        try:
            seed_rows(kernel, keys=(2, 4, 6))
            scanner = kernel.begin()
            assert [k for k, _ in scanner.scan("t", 2, 6)] == [2, 4, 6]
            inserter = kernel.begin()
            if policy == "2pl":
                with pytest.raises((TransactionAborted, ReproError)):
                    inserter.insert("t", 5, "phantom")
                scanner.commit()
            else:
                inserter.insert("t", 5, "phantom")
                inserter.commit()
                with pytest.raises(TransactionAborted):
                    scanner.commit()
        finally:
            kernel.close()

    def test_policy_composes_with_optimized_config(self, policy):
        """cc_policy x TcConfig.optimized(): batching, undo cache and
        group commit underneath any policy."""
        kernel = make_kernel(policy, optimized=True)
        try:
            seed_rows(kernel)
            with kernel.begin() as txn:
                txn.insert("t", 20, "a")
                txn.update("t", 1, "opt")
                assert txn.read("t", 20) == "a"
            doomed = kernel.begin()
            doomed.update("t", 2, "doomed")
            doomed.abort()
            with kernel.begin() as check:
                assert check.read("t", 20) == "a"
                assert check.read("t", 1) == "opt"
                assert check.read("t", 2) == "seed.2"
        finally:
            kernel.close()

    def test_read_only_transaction_commits_clean(self, cc_kernel):
        seed_rows(cc_kernel)
        with cc_kernel.begin() as txn:
            assert txn.read("t", 1) == "seed.1"
            assert txn.read("t", 1) == "seed.1"  # repeatable
            assert len(txn.scan("t")) == 3


class TestPolicySpecificSemantics:
    def test_occ_stale_read_fails_validation(self):
        kernel = make_kernel("occ")
        try:
            seed_rows(kernel)
            reader = kernel.begin()
            assert reader.read("t", 1) == "seed.1"
            with kernel.begin() as writer:
                writer.update("t", 1, "newer")
            with pytest.raises(TransactionAborted, match="validation"):
                reader.commit()
            assert kernel.metrics.get("tc.cc_validation_failures") >= 1
        finally:
            kernel.close()

    def test_occ_reads_take_no_locks(self):
        kernel = make_kernel("occ")
        try:
            seed_rows(kernel)
            with kernel.begin() as reader:
                reader.read("t", 1)
                assert kernel.metrics.get("tc.cc_lockfree_reads") >= 1
        finally:
            kernel.close()

    def test_mvcc_overlay_scan_hides_uncommitted_structural_ops(self):
        """An uncommitted insert is invisible and an uncommitted delete
        still visible to a concurrent snapshot scan."""
        kernel = make_kernel("mvcc")
        try:
            seed_rows(kernel, keys=(1, 2, 3))
            writer = kernel.begin()
            writer.insert("t", 4, "uncommitted-insert")
            writer.delete("t", 2)
            scanner = kernel.begin()
            assert [k for k, _ in scanner.scan("t")] == [1, 2, 3]
            assert dict(scanner.scan("t"))[2] == "seed.2"
            writer.commit()
            with kernel.begin() as after:
                assert [k for k, _ in after.scan("t")] == [1, 3, 4]
        finally:
            kernel.close()

    def test_mvcc_first_committer_wins(self):
        kernel = make_kernel("mvcc")
        try:
            seed_rows(kernel)
            reader = kernel.begin()
            assert reader.read("t", 1) == "seed.1"
            with kernel.begin() as first:
                first.update("t", 1, "first-committer")
            with pytest.raises(TransactionAborted, match="validation"):
                reader.commit()
        finally:
            kernel.close()

    def test_mvcc_before_image_read_metric(self):
        kernel = make_kernel("mvcc")
        try:
            seed_rows(kernel)
            writer = kernel.begin()
            writer.update("t", 1, "uncommitted")
            with_reader = kernel.begin()
            assert with_reader.read("t", 1) == "seed.1"
            assert kernel.metrics.get("tc.cc_before_image_reads") >= 1
            with_reader.commit()
            writer.commit()
        finally:
            kernel.close()


class TestConfigVocabulary:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            TcConfig(cc_policy="serial-dreams")

    def test_policies_enumerated(self):
        assert CC_POLICIES == ("2pl", "occ", "mvcc")
