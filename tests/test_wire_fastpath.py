"""The fast-path codec: same messages, fewer bytes, never a wrong decode.

The fast form (§17) drops per-field name tables for Hello-negotiated
numeric type ids and positional fields, so three properties carry the
whole design:

- **equivalence** — every type in the fast vocabulary decodes to the
  exact same value through the fast frame as through the tagged form;
- **integrity** — a truncated or corrupted fast frame raises
  :class:`~repro.net.wire.WireDecodeError`, *never* a wrong message
  (the frame CRC is checked before any payload byte is interpreted);
- **negotiation** — the fast map is the intersection of both peers'
  ``(id, name, signature)`` triples, so version skew (missing type,
  renamed type, drifted field layout, malformed advertisement) degrades
  to the tagged form instead of misdecoding positionally.
"""

from __future__ import annotations

import dataclasses
import enum
import random

import pytest

from repro.common import api
from repro.common.ops import OpResult, OpStatus, ReadOp
from repro.net import rpc, wire
from repro.net.wire import (
    FAST_MAGIC,
    UnknownTypeError,
    WireDecodeError,
    decode_fast_frame,
    encode_fast_frame,
    fast_vocabulary,
    negotiate,
)
from tests.test_wire import _sample_for


def _full_map() -> dict:
    """Both peers at the same version: every vocabulary entry negotiates."""
    return negotiate(fast_vocabulary())


def _fast_types() -> list[type]:
    fast_vocabulary()  # bootstrap the registry
    return [cls for _, cls in sorted(wire._FAST_BY_ID.items())]


def _sample_instance(cls):
    if isinstance(cls, type) and issubclass(cls, enum.Enum):
        return list(cls)[-1]
    kwargs = {f.name: _sample_for(cls, f) for f in dataclasses.fields(cls)}
    return cls(**kwargs)


def _big_batch() -> api.BatchedPerform:
    ops = tuple(
        api.PerformOperation(
            tc_id=1, op_id=i, op=ReadOp(table="t", key=i), eosl=i
        )
        for i in range(1, 9)
    )
    return api.BatchedPerform(tc_id=1, ops=ops, eosl=8)


# -- equivalence --------------------------------------------------------------


@pytest.mark.parametrize("cls", _fast_types(), ids=lambda c: c.__name__)
def test_fast_and_tagged_decode_identically(cls):
    value = _sample_instance(cls)
    tagged = wire.decode(wire.encode(value))
    frame = encode_fast_frame(rpc.PUSH, 9, value, _full_map())
    assert frame[0] == FAST_MAGIC
    kind, seq, fast = decode_fast_frame(frame)
    assert (kind, seq) == (rpc.PUSH, 9)
    assert fast == tagged == value


@pytest.mark.parametrize("cls", _fast_types(), ids=lambda c: c.__name__)
def test_fast_defaults_only_shape_roundtrips(cls):
    if isinstance(cls, type) and issubclass(cls, enum.Enum):
        value = list(cls)[0]
    else:
        try:
            value = cls(tc_id=0)
        except TypeError:
            # Non-message payload types (ops, RecordView) have their own
            # required fields; the sampled shape above covers them.
            pytest.skip("no defaults-only constructor")
    _, _, decoded = decode_fast_frame(
        encode_fast_frame(rpc.PUSH, 0, value, _full_map())
    )
    assert decoded == value


def test_pack_frame_selects_form_by_negotiated_map():
    message = _big_batch()
    fast = rpc.pack_frame(rpc.PUSH, 3, message, _full_map())
    tagged = rpc.pack_frame(rpc.PUSH, 3, message)
    assert fast[0] == FAST_MAGIC and tagged[0] != FAST_MAGIC
    assert rpc.unpack_frame(fast) == rpc.unpack_frame(tagged) == (
        rpc.PUSH, 3, message,
    )
    # The entire point: the hot envelope sheds its per-field name tables.
    assert len(fast) < len(tagged)


def test_values_outside_the_map_nest_tagged_inside_fast_frames():
    # Hello is deliberately not in the fast vocabulary (it is sent before
    # negotiation); inside a fast frame it falls back to the tagged form.
    hello = rpc.Hello(tc_id=0, dc_name="dc1", pid=7, fast_codec=fast_vocabulary())
    kind, seq, decoded = decode_fast_frame(
        encode_fast_frame(rpc.REQUEST, 1, hello, _full_map())
    )
    assert decoded == hello


def test_scratch_buffer_reuse_yields_independent_frames():
    scratch = bytearray()
    one = rpc.pack_frame(rpc.PUSH, 1, api.ControlAck(tc_id=1), _full_map(), scratch)
    two = rpc.pack_frame(rpc.PUSH, 2, _big_batch(), _full_map(), scratch)
    # ``one`` must not have been clobbered by the buffer reuse.
    assert rpc.unpack_frame(one) == (rpc.PUSH, 1, api.ControlAck(tc_id=1))
    assert rpc.unpack_frame(two) == (rpc.PUSH, 2, _big_batch())


# -- integrity: truncation / corruption never yields a wrong message ----------


def test_fuzz_truncation_always_raises():
    frame = encode_fast_frame(rpc.PUSH, 5, _big_batch(), _full_map())
    rng = random.Random(0xF457)
    cuts = {rng.randrange(len(frame)) for _ in range(64)} | {0, 1, 4, len(frame) - 1}
    for cut in sorted(cuts):
        with pytest.raises(WireDecodeError):
            decode_fast_frame(frame[:cut])


def test_fuzz_corruption_always_raises():
    frame = encode_fast_frame(rpc.PUSH, 5, _big_batch(), _full_map())
    rng = random.Random(0xC0DE)
    for _ in range(256):
        pos = rng.randrange(len(frame))
        flip = 1 << rng.randrange(8)
        mutated = bytearray(frame)
        mutated[pos] ^= flip
        with pytest.raises(WireDecodeError):
            decode_fast_frame(bytes(mutated))


def test_fuzz_garbage_extension_always_raises():
    frame = encode_fast_frame(rpc.PUSH, 5, api.ControlAck(tc_id=2), _full_map())
    rng = random.Random(0xBEEF)
    for _ in range(64):
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
        with pytest.raises(WireDecodeError):
            decode_fast_frame(frame + junk)


def test_unknown_fast_id_raises_typed_error():
    # A peer that negotiated an id we do not know (impossible through
    # negotiate(), but bugs and byte flips happen) must fail loudly.
    frame = encode_fast_frame(rpc.PUSH, 1, api.ControlAck(tc_id=1), {api.ControlAck: 999})
    with pytest.raises(UnknownTypeError):
        decode_fast_frame(frame)


def test_tagged_frames_still_unpack_alongside_fast():
    message = api.ControlAck(tc_id=4)
    assert rpc.unpack_frame(rpc.pack_frame(rpc.REPLY, 8, message)) == (
        rpc.REPLY, 8, message,
    )


# -- negotiation: version skew degrades to tagged, loudly not wrongly ---------


def test_negotiation_is_exact_intersection():
    vocab = fast_vocabulary()
    assert len(vocab) == len(wire._FAST_NAMES)
    full = negotiate(vocab)
    assert set(full.values()) == {fid for fid, _, _ in vocab}

    drifted = []
    for fid, name, sig in vocab:
        if name == "PerformOperation":
            sig += 1  # field layout drifted on the peer
        if name == "TxnCommit":
            name = "TxnCommitV2"  # renamed on the peer
        drifted.append((fid, name, sig))
    partial = negotiate(tuple(drifted))
    names = {cls.__name__ for cls in partial}
    assert "PerformOperation" not in names
    assert "TxnCommit" not in names
    assert len(partial) == len(full) - 2


def test_negotiation_with_subset_peer():
    # An older peer advertising only a prefix of the vocabulary: the fast
    # map shrinks to the shared prefix, everything else goes tagged.
    subset = fast_vocabulary()[:5]
    accepted = negotiate(subset)
    assert len(accepted) == 5


def test_malformed_advertisement_degrades_to_tagged():
    assert negotiate(()) == {}
    assert negotiate(None) == {}
    assert negotiate(42) == {}
    assert negotiate(("garbage",)) == {}
    assert negotiate(((1, "PerformOperation"),)) == {}  # missing signature


def test_signature_covers_enum_values():
    # Enum signatures fingerprint name=value pairs: reordering or revaluing
    # members on one side must exclude the enum from the fast map.
    assert wire._signature(OpStatus) != wire._signature(OpResult)
    fid = next(
        fid for fid, cls in wire._FAST_BY_ID.items() if cls is OpStatus
    )
    assert wire._FAST_SIG[fid] == wire._signature(OpStatus)


def test_vocabulary_is_append_only_prefix_stable():
    """Regression pin: ids are positional in ``_FAST_NAMES``, so the first
    entries must never be renumbered (old peers negotiate by id)."""
    vocab = fast_vocabulary()
    assert vocab[0][:2] == (1, "PerformOperation")
    assert [fid for fid, _, _ in vocab] == list(range(1, len(vocab) + 1))
