"""Keep the examples and the CLI green: they are part of the product."""

from __future__ import annotations

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(path), run_name="__main__")
    output = buffer.getvalue()
    assert "OK" in output or "ok" in output


class TestCli:
    def _run(self, *argv: str) -> tuple[int, str]:
        from repro.__main__ import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(list(argv))
        return code, buffer.getvalue()

    def test_demo(self):
        code, output = self._run("demo")
        assert code == 0
        assert "demo OK" in output

    def test_stats(self):
        code, output = self._run("stats")
        assert code == 0
        assert '"records": 500' in output

    def test_experiments(self):
        code, output = self._run("experiments")
        assert code == 0
        assert "FIG1" in output and "bench_fig2_cloud.py" in output

    def test_unknown_command(self):
        code, output = self._run("nope")
        assert code == 1
        assert "Commands" in output
