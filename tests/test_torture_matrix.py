"""Torture matrix: structure churn × crash modes × sync strategies × chaos.

The combination of heavy split/merge churn with interleaved partial
failures is what exposed the consolidation horizon bug; this module keeps
that pressure on permanently, across the full configuration matrix.
"""

from __future__ import annotations

import random

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, PageSyncStrategy, TcConfig
from repro.common.errors import DuplicateKeyError, NoSuchRecordError
from repro.storage.buffer import ResetMode


def churn(kernel, rng, model, steps, keyspace=260):
    for _ in range(steps):
        key = rng.randrange(keyspace)
        txn = kernel.begin()
        try:
            if key in model:
                if rng.random() < 0.5:
                    txn.delete("t", key)
                    txn.commit()
                    del model[key]
                else:
                    txn.update("t", key, rng.randrange(1000))
                    txn.commit()
                    model[key] = None  # value checked via scan comparison
            else:
                txn.insert("t", key, rng.randrange(1000))
                txn.commit()
                model[key] = None
        except (DuplicateKeyError, NoSuchRecordError):
            txn.abort()


def verify(kernel, model):
    with kernel.begin() as txn:
        keys = {key for key, _value in txn.scan("t")}
    assert keys == set(model), (
        f"missing={set(model) - keys} phantom={keys - set(model)}"
    )
    kernel.dc.table("t").structure.validate()


@pytest.mark.parametrize("strategy", list(PageSyncStrategy))
@pytest.mark.parametrize("reset_mode", list(ResetMode))
def test_torture_churn_with_crashes(strategy, reset_mode):
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=512, sync_strategy=strategy, buffer_capacity=24),
            tc=TcConfig(lwm_interval=5),
        )
    )
    kernel.create_table("t")
    rng = random.Random(hash((strategy.value, reset_mode.value)) & 0xFFFF)
    model: dict[int, None] = {}
    crashes = [
        lambda: (kernel.crash_dc(), kernel.recover_dc()),
        lambda: (kernel.crash_tc(), kernel.recover_tc(reset_mode)),
        lambda: (kernel.crash_all(), kernel.recover_all()),
    ]
    for round_index in range(6):
        churn(kernel, rng, model, steps=80)
        crashes[round_index % 3]()
        verify(kernel, model)
        if round_index == 3:
            kernel.checkpoint()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_torture_chaotic_channel_plus_churn(seed):
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=384),
            channel=ChannelConfig(
                loss_rate=0.15, duplicate_rate=0.1, reorder_window=2, seed=seed
            ),
        )
    )
    kernel.create_table("t")
    rng = random.Random(seed * 101)
    model: dict[int, None] = {}
    for round_index in range(4):
        churn(kernel, rng, model, steps=100)
        if round_index % 2 == 0:
            kernel.crash_dc()
            kernel.recover_dc()
        else:
            kernel.crash_tc()
            kernel.recover_tc()
        verify(kernel, model)


def test_torture_multi_tc_churn_with_alternating_crashes():
    """Two TCs churning disjoint halves of one DC; each crashes in turn."""
    from repro.dc.data_component import DataComponent
    from repro.sim.metrics import Metrics
    from repro.tc.transactional_component import TransactionalComponent

    metrics = Metrics()
    dc = DataComponent("dc", config=DcConfig(page_size=512), metrics=metrics)
    dc.create_table("t")
    tcs = []
    for index in range(2):
        tc = TransactionalComponent(metrics=metrics)
        tc.attach_dc(dc)
        tc.ownership_guard = lambda table, key, i=index: key % 2 == i
        tcs.append(tc)
    rng = random.Random(55)
    models: list[dict[int, None]] = [{}, {}]
    for round_index in range(6):
        for index, tc in enumerate(tcs):
            model = models[index]
            for _ in range(50):
                key = rng.randrange(200) * 2 + index  # stay in our half
                txn = tc.begin()
                try:
                    if key in model:
                        txn.delete("t", key)
                        txn.commit()
                        del model[key]
                    else:
                        txn.insert("t", key, round_index)
                        txn.commit()
                        model[key] = None
                except (DuplicateKeyError, NoSuchRecordError):
                    txn.abort()
        victim = round_index % 2
        tcs[victim].crash()
        tcs[victim].restart(ResetMode.RECORD_RESET)
        with tcs[0].begin() as txn:
            keys = {key for key, _v in txn.scan("t")}
        expected = set(models[0]) | set(models[1])
        assert keys == expected, (
            f"round {round_index}: missing={expected - keys} "
            f"phantom={keys - expected}"
        )
        dc.table("t").structure.validate()
