"""Event-loop DC/TC servers (docs/architecture.md §18).

The tentpole claim is O(1) server threads in the number of client
connections: a server's request loop is one ``selectors``-driven thread,
and every connection is a ``Peer`` — fd, reassembly buffer, out-buffer —
not a thread.  The loop is tested bare (framing, backpressure accounting,
malformed-frame rejection, mid-frame disconnect) and through the real
servers: a DC server and a standalone TC server each hold their reported
thread count flat while the client count grows, serve interleaved
sessions concurrently, and keep every §4.2.1 answer exact throughout.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

pytestmark = pytest.mark.process

from repro.net import rpc
from repro.net.eventloop import EventLoop
from repro.net.process import DcClient, RemoteDc
from repro.net.tcclient import RemoteTc
from repro.sim.metrics import Metrics

_LEN = struct.Struct("!i")


def _frame(payload: bytes) -> bytes:
    return _LEN.pack(len(payload)) + payload


class _LoopHarness:
    """An EventLoop on a thread plus one adopted socketpair end."""

    def __init__(self):
        self.metrics = Metrics()
        self.loop = EventLoop(self.metrics)
        self.frames: list[bytes] = []
        self.closed = threading.Event()
        self.server_sock, self.client = socket.socketpair()
        self.peer = self.loop.adopt(
            self.server_sock,
            lambda peer, data: self.frames.append(bytes(data)),
            lambda peer: self.closed.set(),
        )
        self.thread = threading.Thread(target=self.loop.run, daemon=True)
        self.thread.start()

    def wait(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while not predicate() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert predicate()

    def shutdown(self):
        self.loop.stop()
        self.thread.join(timeout=5)
        self.loop.close()
        self.client.close()


class TestEventLoopBare:
    def test_reassembles_split_and_coalesced_frames(self):
        h = _LoopHarness()
        try:
            # Two frames in one write, then one frame dribbled bytewise.
            h.client.sendall(_frame(b"alpha") + _frame(b"beta"))
            for byte in _frame(b"gamma"):
                h.client.sendall(bytes([byte]))
                time.sleep(0.001)
            h.wait(lambda: len(h.frames) == 3)
            assert h.frames == [b"alpha", b"beta", b"gamma"]
        finally:
            h.shutdown()

    def test_slow_reader_defers_frames_not_threads(self):
        """A reader that stops draining gets its frames parked in the
        peer's out-buffer (``frames_deferred`` counts them); no writer
        thread is spawned and the loop keeps serving."""
        h = _LoopHarness()
        try:
            blob = b"z" * (1 << 18)
            before = threading.active_count()
            for _ in range(64):
                h.loop.call_soon(lambda: h.peer.send_frame(blob))
            deferred = h.metrics.counter("eventloop.frames_deferred")
            h.wait(lambda: deferred.value > 0)
            assert threading.active_count() == before
            assert h.peer.pending_out > 0
            # Draining the socket lets the loop flush everything out.
            received = 0
            h.client.settimeout(5)
            while received < 64 * (len(blob) + 4):
                received += len(h.client.recv(1 << 20))
            h.wait(lambda: h.peer.pending_out == 0)
        finally:
            h.shutdown()

    def test_mid_frame_disconnect_closes_cleanly(self):
        h = _LoopHarness()
        try:
            h.client.sendall(_frame(b"whole"))
            h.client.sendall(_LEN.pack(500) + b"only-half")  # then die
            h.client.close()
            h.wait(h.closed.is_set)
            assert h.frames == [b"whole"]  # the partial frame never fired
            assert h.metrics.counters()["eventloop.connections_open"] == 0
        finally:
            h.shutdown()

    def test_malformed_length_drops_connection(self):
        h = _LoopHarness()
        try:
            h.client.sendall(_LEN.pack(-5) + b"junk")
            h.wait(h.closed.is_set)
            assert h.metrics.counters()["eventloop.protocol_errors"] == 1
            with pytest.raises(BrokenPipeError):
                h.peer.send_frame(b"too late")
        finally:
            h.shutdown()

    def test_doorbell_frames_are_consumed_silently(self):
        from repro.net.eventloop import doorbell_frame

        h = _LoopHarness()
        try:
            h.client.sendall(_frame(doorbell_frame()) + _frame(b"real"))
            h.wait(lambda: h.frames)
            # The doorbell *is* delivered as a frame — consuming it is the
            # server's business; nothing else was lost around it.
            kinds = [rpc.unpack_frame(f)[0] for f in h.frames[:1]]
            assert kinds == [rpc.DOORBELL]
        finally:
            h.shutdown()


# -- real servers: flat thread count ------------------------------------------


class TestDcServerScaling:
    def test_thread_count_flat_across_clients(self, tmp_path):
        dc = RemoteDc(
            "dcx",
            journal_path=str(tmp_path / "dcx.journal"),
            listen_path=str(tmp_path / "dcx.sock"),
        )
        clients = []
        try:
            dc.create_table("t")
            first = DcClient("dcx", socket_path=dc.listen_path)
            clients.append(first)
            baseline = first.stats()["threads"]
            for _ in range(8):
                clients.append(DcClient("dcx", socket_path=dc.listen_path))
            stats = clients[-1].stats()
            assert stats["connections"] >= 9
            # The tentpole: nine connections, same server thread count.
            assert stats["threads"] == baseline
        finally:
            for client in clients:
                client.close()
            dc.shutdown()

    def test_interleaved_clients_stay_correct(self, tmp_path):
        """Round-robin requests across many live connections through the
        single loop; every answer stays exact."""
        dc = RemoteDc(
            "dcy",
            journal_path=str(tmp_path / "dcy.journal"),
            listen_path=str(tmp_path / "dcy.sock"),
        )
        clients = []
        try:
            dc.create_table("t")
            clients = [
                DcClient("dcy", socket_path=dc.listen_path) for _ in range(5)
            ]
            for round_no in range(6):
                for idx, client in enumerate(clients):
                    assert "t" in client.stats()["dc"]["tables"]
        finally:
            for client in clients:
                client.close()
            dc.shutdown()


class TestTcServerScaling:
    def _spawn(self, tmp_path, dc, max_sessions):
        sock = str(tmp_path / "tc1.sock")
        argv = [
            sys.executable, "-m", "repro", "serve-tc",
            "--listen", sock,
            "--journal", str(tmp_path / "tc1.journal"),
            "--max-sessions", str(max_sessions),
        ]
        if dc is not None:
            argv += ["--dc", f"{dc.name}={dc.listen_path}"]
        proc = subprocess.Popen(
            argv, env={**os.environ, "PYTHONPATH": "src"}
        )
        deadline = time.monotonic() + 15
        while not os.path.exists(sock) and time.monotonic() < deadline:
            time.sleep(0.02)
        return proc, sock

    def test_thread_count_flat_across_sessions(self, tmp_path):
        proc, sock = self._spawn(tmp_path, None, max_sessions=7)
        clients = []
        try:
            first = RemoteTc("tc1", tc_id=1, socket_path=sock)
            clients.append(first)
            baseline = first.stats()["threads"]
            for _ in range(6):
                clients.append(RemoteTc("tc1", tc_id=1, socket_path=sock))
            stats = clients[-1].stats()
            assert stats["connections"] == 7
            assert stats["threads"] == baseline  # O(1) in sessions
        finally:
            for client in clients:
                client.shutdown()
            assert proc.wait(timeout=15) == 0

    def test_concurrent_sessions_share_one_live_tc(self, tmp_path):
        """Two clients, one event loop, one journal: writes interleave
        through concurrent sessions and both observe each other's commits
        (the pre-§18 server accepted sessions strictly serially)."""
        dc = RemoteDc(
            "dc1",
            journal_path=str(tmp_path / "dc1.journal"),
            listen_path=str(tmp_path / "dc1.sock"),
        )
        proc = None
        try:
            dc.create_table("t", versioned=True)
            proc, sock = self._spawn(tmp_path, dc, max_sessions=2)
            one = RemoteTc("tc1", tc_id=1, socket_path=sock)
            two = RemoteTc("tc1", tc_id=1, socket_path=sock)
            try:
                with one.begin() as txn:
                    txn.insert("t", "from-one", 1)
                with two.begin() as txn:
                    txn.insert("t", "from-two", 2)
                assert one.read_other("t", "from-two") == 2
                assert two.read_other("t", "from-one") == 1
            finally:
                one.shutdown()
                two.shutdown()
            assert proc.wait(timeout=15) == 0
            proc = None
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
            dc.shutdown()
