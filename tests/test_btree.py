"""The DC's B+-tree: structure modifications as system transactions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DcConfig
from repro.common.errors import PageOverflowError
from repro.common.records import VersionedRecord
from repro.dc.dclog import (
    DcLog,
    KeysRemovedRecord,
    PageFreeRecord,
    PageImageRecord,
    RootChangedRecord,
)
from repro.sim.metrics import Metrics
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage


def make_tree(page_size=512, buffer_capacity=1000):
    metrics = Metrics()
    storage = StableStorage(metrics)
    config = DcConfig(page_size=page_size, buffer_capacity=buffer_capacity)
    dclog = DcLog(storage, metrics)
    buffer = BufferPool(storage, config, metrics)
    # Tests that stamp abLSNs by hand act as an always-stable TC.
    tree = BTree(
        "t", storage, buffer, dclog, config, metrics,
        ensure_stable=lambda needed: True,
    )
    return tree, storage, buffer, dclog, metrics


def put(tree, key, value="v"):
    record = VersionedRecord(key=key, committed=value)
    leaf = tree.ensure_room(key, record.encoded_size())
    leaf.put(record)
    return leaf


def remove(tree, key):
    leaf = tree.find_leaf(key)
    removed = leaf.remove(key)
    tree.maybe_consolidate(key)
    return removed


class TestBasicOps:
    def test_empty_tree(self):
        tree, *_ = make_tree()
        assert tree.get_record(1) is None
        assert tree.record_count() == 0
        assert tree.depth() == 1
        tree.validate()

    def test_put_and_get(self):
        tree, *_ = make_tree()
        put(tree, 5, "five")
        record = tree.get_record(5)
        assert record is not None and record.committed == "five"

    def test_many_inserts_split_and_stay_correct(self):
        tree, *_ = make_tree(page_size=512)
        for key in range(300):
            put(tree, key, f"value-{key:04d}")
        assert tree.record_count() == 300
        assert tree.depth() >= 2
        tree.validate()
        for key in (0, 150, 299):
            assert tree.get_record(key).committed == f"value-{key:04d}"

    def test_reverse_and_shuffled_insert_orders(self):
        for order in (range(99, -1, -1), [7, 3, 91, 45, 12, 88, 0, 99, 50]):
            tree, *_ = make_tree(page_size=512)
            for key in order:
                put(tree, key)
            tree.validate()
            assert tree.record_count() == len(list(order))

    def test_record_too_big_raises(self):
        tree, *_ = make_tree(page_size=256)
        with pytest.raises(PageOverflowError):
            put(tree, 1, "x" * 1000)


class TestRangeAndProbes:
    def _loaded(self):
        tree, *rest = make_tree(page_size=512)
        for key in range(0, 100, 2):  # evens only
            put(tree, key)
        return tree

    def test_iter_range_crosses_leaves(self):
        tree = self._loaded()
        keys = [r.key for r in tree.iter_range(10, 50)]
        assert keys == list(range(10, 51, 2))

    def test_iter_range_open_bounds(self):
        tree = self._loaded()
        assert len(list(tree.iter_range(None, None))) == 50
        assert [r.key for r in tree.iter_range(None, 6)] == [0, 2, 4, 6]
        assert [r.key for r in tree.iter_range(94, None)] == [94, 96, 98]

    def test_iter_range_limit(self):
        tree = self._loaded()
        assert len(list(tree.iter_range(None, None, limit=7))) == 7

    def test_next_keys_exclusive(self):
        tree = self._loaded()
        assert tree.next_keys(10, 3) == [12, 14, 16]
        assert tree.next_keys(11, 2) == [12, 14]

    def test_next_keys_inclusive(self):
        tree = self._loaded()
        assert tree.next_keys(10, 3, inclusive=True) == [10, 12, 14]

    def test_next_keys_until(self):
        tree = self._loaded()
        assert tree.next_keys(90, 100, until=96) == [92, 94, 96]

    def test_next_keys_from_start_and_past_end(self):
        tree = self._loaded()
        assert tree.next_keys(None, 2) == [0, 2]
        assert tree.next_keys(98, 5) == []

    def test_next_keys_crosses_leaves(self):
        tree = self._loaded()
        assert tree.next_keys(None, 50) == list(range(0, 100, 2))


class TestSplitLogging:
    def test_split_logs_new_page_physically_and_old_logically(self):
        """Section 5.2.2: new page image + split key only for the old."""
        tree, storage, _buffer, _dclog, metrics = make_tree(page_size=512)
        for key in range(60):
            put(tree, key)
        assert metrics.get("btree.leaf_splits") >= 1
        records = storage.dc_log_entries()
        images = [r for r in records if isinstance(r, PageImageRecord)]
        removals = [r for r in records if isinstance(r, KeysRemovedRecord)]
        assert images and removals
        # The new page image carries records; the pre-split record is tiny.
        assert any(r.image is not None and r.image.records for r in images)
        assert all(r.encoded_size() < 100 for r in removals)

    def test_split_preserves_ablsn_coverage(self):
        """Every operation the pre-split page reflected stays claimed by
        the page now holding the key."""
        tree, *_ = make_tree(page_size=512)
        lsn = 0
        applied: dict[int, int] = {}
        for key in range(80):
            lsn += 1
            leaf = put(tree, key)
            leaf.ablsn_for(1).include(lsn)
            applied[key] = lsn
        tree.validate()
        for key, op_lsn in applied.items():
            leaf = tree.find_leaf(key)
            assert leaf.ablsn_for(1).contains(op_lsn), key

    def test_root_grows_and_root_change_logged(self):
        tree, storage, *_ = make_tree(page_size=512)
        initial_root = tree.root_id
        for key in range(60):
            put(tree, key)
        assert tree.root_id != initial_root
        changes = [
            r for r in storage.dc_log_entries() if isinstance(r, RootChangedRecord)
        ]
        assert changes[-1].new_root == tree.root_id

    def test_deep_tree_inner_splits(self):
        tree, _s, _b, _d, metrics = make_tree(page_size=384)
        for key in range(1200):
            put(tree, key)
        assert tree.depth() >= 3
        assert metrics.get("btree.inner_splits") >= 1
        tree.validate()
        assert tree.record_count() == 1200


class TestConsolidation:
    def test_deletes_trigger_merge_with_merged_ablsn(self):
        tree, storage, _b, _d, metrics = make_tree(page_size=512)
        lsn = 0
        for key in range(100):
            lsn += 1
            leaf = put(tree, key)
            leaf.ablsn_for(1).include(lsn)
        survivors = {}
        for key in range(100):
            if key % 4 != 0:
                remove(tree, key)
            else:
                survivors[key] = True
        tree.validate()
        assert metrics.get("btree.consolidations") >= 1
        assert tree.record_count() == len(survivors)
        # merged page images in the DC log are physical
        frees = [r for r in storage.dc_log_entries() if isinstance(r, PageFreeRecord)]
        assert frees

    def test_merge_skipped_when_no_fit(self):
        tree, *_ , metrics = make_tree(page_size=512)
        for key in range(40):
            put(tree, key, "x" * 40)
        # deleting one record leaves pages too full to merge
        remove(tree, 0)
        tree.validate()

    def test_root_collapse(self):
        tree, _s, _b, _d, metrics = make_tree(page_size=512)
        for key in range(60):
            put(tree, key)
        assert tree.depth() == 2
        for key in range(60):
            remove(tree, key)
        tree.validate()
        assert tree.record_count() == 0
        assert metrics.get("btree.root_collapses") >= 1
        assert tree.depth() == 1

    def test_merge_refused_across_low_water_horizons(self):
        """Regression: pages at unequal low-water horizons (the mid-redo
        situation) must not merge — the max-low-water rule would claim the
        lower side's unreplayed operations (a real lost-update bug found by
        the churn soak test)."""
        tree, *_rest, metrics = make_tree(page_size=512)
        for key in range(60):
            put(tree, key)
        leaf_ids = tree.leaf_ids()
        assert len(leaf_ids) >= 2
        left = tree._fetch(leaf_ids[0])
        right = tree._fetch(leaf_ids[1])
        left.ablsn_for(1).advance_low_water(700)
        right.ablsn_for(1).advance_low_water(118)  # asymmetric horizons
        # drain the right leaf to force a merge attempt
        for key in list(right.keys())[:-1]:
            remove(tree, key)
        assert metrics.get("btree.consolidation_skipped_horizon") >= 1
        tree.validate()
        # equalize horizons (what an LWM broadcast does): merging resumes
        for page_id in tree.leaf_ids():
            tree._fetch(page_id).apply_low_water(1, 700)
        remaining = tree._fetch(tree.leaf_ids()[1])
        if remaining.record_count() > 0:
            remove(tree, remaining.min_key())
        tree.validate()

    def test_horizons_compatible_rules(self):
        from repro.storage.page import LeafPage

        a, b = LeafPage(1), LeafPage(2)
        assert BTree._horizons_compatible(a, b)  # no abLSNs at all
        a.ablsn_for(1).advance_low_water(10)
        assert not BTree._horizons_compatible(a, b)  # present vs missing
        b.ablsn_for(1).advance_low_water(10)
        assert BTree._horizons_compatible(a, b)  # equal
        a.ablsn_for(1).include(15)  # included sets may differ freely
        assert BTree._horizons_compatible(a, b)
        b.ablsn_for(2).advance_low_water(5)  # second TC only on one page
        assert not BTree._horizons_compatible(a, b)

    def test_delete_everything_then_reinsert(self):
        tree, *_ = make_tree(page_size=512)
        for key in range(80):
            put(tree, key)
        for key in range(80):
            remove(tree, key)
        for key in range(80):
            put(tree, key, "again")
        tree.validate()
        assert tree.get_record(40).committed == "again"


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=60)),
        min_size=1,
        max_size=150,
    )
)
def test_btree_matches_dict_model(steps):
    """Property: random insert/delete sequences behave like a dict."""
    tree, *_ = make_tree(page_size=384)
    model: dict[int, str] = {}
    for is_insert, key in steps:
        if is_insert:
            value = f"v{key}"
            put(tree, key, value)
            model[key] = value
        else:
            remove(tree, key)
            model.pop(key, None)
    tree.validate()
    assert tree.record_count() == len(model)
    got = {r.key: r.committed for r in tree.iter_range(None, None)}
    assert got == model
