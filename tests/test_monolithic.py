"""The integrated baseline engine: same semantics, classic machinery."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig, TcConfig
from repro.common.errors import (
    DuplicateKeyError,
    NoSuchRecordError,
    TransactionAborted,
)
from repro.kernel.monolithic import MonolithicEngine, MonoTxnState


@pytest.fixture
def engine():
    engine = MonolithicEngine(DcConfig(page_size=512))
    engine.create_table("t")
    return engine


def populate(engine, count):
    for key in range(count):
        with engine.begin() as txn:
            txn.insert("t", key, f"value-{key:05d}")


class TestBasics:
    def test_insert_read_update_delete(self, engine):
        with engine.begin() as txn:
            txn.insert("t", 1, "a")
            assert txn.read("t", 1) == "a"
            txn.update("t", 1, "b")
            txn.delete("t", 1)
            assert txn.read("t", 1) is None

    def test_duplicate_and_missing_errors(self, engine):
        with engine.begin() as txn:
            txn.insert("t", 1, "a")
        txn = engine.begin()
        with pytest.raises(DuplicateKeyError):
            txn.insert("t", 1, "b")
        with pytest.raises(NoSuchRecordError):
            txn.update("t", 99, "x")
        txn.abort()

    def test_scan_with_bounds(self, engine):
        populate(engine, 50)
        with engine.begin() as txn:
            rows = txn.scan("t", 10, 20)
            assert [key for key, _v in rows] == list(range(10, 21))
            assert len(txn.scan("t", limit=5)) == 5

    def test_splits_under_load(self, engine):
        populate(engine, 300)
        assert engine.metrics.get("mono.splits") > 0
        assert engine.record_count("t") == 300

    def test_abort_rolls_back(self, engine):
        populate(engine, 10)
        txn = engine.begin()
        txn.update("t", 1, "dirty")
        txn.insert("t", 99, "dirty")
        txn.delete("t", 2)
        txn.abort()
        with engine.begin() as check:
            assert check.read("t", 1) == "value-00001"
            assert check.read("t", 99) is None
            assert check.read("t", 2) == "value-00002"

    def test_finished_txn_unusable(self, engine):
        txn = engine.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.read("t", 1)
        assert txn.state is MonoTxnState.COMMITTED


class TestLocking:
    def test_write_conflict_times_out(self):
        engine = MonolithicEngine(
            DcConfig(page_size=512), TcConfig(lock_timeout=0.05)
        )
        engine.create_table("t")
        with engine.begin() as setup:
            setup.insert("t", 1, "v")
        holder = engine.begin()
        holder.update("t", 1, "held")
        other = engine.begin()
        with pytest.raises(Exception):
            other.update("t", 1, "blocked")
        holder.commit()

    def test_scan_gap_locks_block_phantom(self):
        engine = MonolithicEngine(
            DcConfig(page_size=512), TcConfig(lock_timeout=0.05)
        )
        engine.create_table("t")
        for key in range(0, 20, 2):
            with engine.begin() as txn:
                txn.insert("t", key, "v")
        scanner = engine.begin()
        scanner.scan("t", 4, 12)
        blocked = engine.begin()
        with pytest.raises(Exception):
            blocked.insert("t", 7, "phantom")
        scanner.commit()

    def test_no_messages_no_probes(self, engine):
        """The integrated advantage: zero network activity."""
        populate(engine, 50)
        with engine.begin() as txn:
            txn.scan("t")
        assert engine.metrics.get("channel.requests") == 0
        assert engine.metrics.get("tc.probes") == 0


class TestRecovery:
    def test_crash_loses_tail_and_cache_together(self, engine):
        populate(engine, 50)
        lost = engine.crash()
        stats = engine.recover()
        assert engine.record_count("t") == 50

    def test_page_lsn_test_skips_stable_work(self, engine):
        populate(engine, 50)
        engine.checkpoint()  # flushes all pages
        engine.crash()
        stats = engine.recover()
        assert stats["redo"] <= 2
        assert engine.metrics.get("mono.redo_skipped") >= 0

    def test_loser_rolled_back_at_restart(self, engine):
        populate(engine, 20)
        loser = engine.begin()
        loser.update("t", 3, "dirty")
        loser.insert("t", 99, "dirty")
        engine.force_log()
        engine.crash()
        stats = engine.recover()
        assert stats["undo"] == 2
        with engine.begin() as check:
            assert check.read("t", 3) == "value-00003"
            assert check.read("t", 99) is None

    def test_splits_redone_in_original_order(self, engine):
        """Section 5.2.1: integrated SMOs replay exactly where they were."""
        populate(engine, 200)
        engine.crash()
        engine.recover()
        assert engine.record_count("t") == 200
        with engine.begin() as check:
            assert check.read("t", 150) == "value-00150"

    def test_merges_survive_recovery(self, engine):
        populate(engine, 100)
        for key in range(100):
            if key % 4 != 0:  # delete 75% so leaves fall below min fill
                with engine.begin() as txn:
                    txn.delete("t", key)
        assert engine.metrics.get("mono.merges") > 0
        engine.crash()
        engine.recover()
        assert engine.record_count("t") == 25

    def test_repeated_crashes(self, engine):
        populate(engine, 30)
        for _ in range(3):
            engine.crash()
            engine.recover()
        assert engine.record_count("t") == 30

    def test_checkpoint_restart_work_scales_down(self, engine):
        populate(engine, 100)
        engine.crash()
        no_ckpt = engine.recover()["redo"]
        engine.checkpoint()
        populate_extra = engine.begin()
        populate_extra.insert("t", 500, "x")
        populate_extra.commit()
        engine.crash()
        with_ckpt = engine.recover()["redo"]
        assert with_ckpt < no_ckpt / 10


class TestParityWithUnbundled:
    """Both engines run identical logical workloads to identical states —
    the FIG1 benchmark depends on this equivalence."""

    def test_same_final_state(self):
        from repro import KernelConfig, UnbundledKernel
        from repro.common.config import DcConfig as Dc

        mono = MonolithicEngine(DcConfig(page_size=512))
        mono.create_table("t")
        unbundled = UnbundledKernel(KernelConfig(dc=Dc(page_size=512)))
        unbundled.create_table("t")
        script = [
            ("insert", key, f"v{key}") for key in range(40)
        ] + [("update", 5, "u5"), ("delete", 7, None), ("insert", 100, "tail")]
        for engine in (mono, unbundled):
            for action, key, value in script:
                with engine.begin() as txn:
                    getattr(txn, action)(*(a for a in ("t", key, value) if a is not None))
        with mono.begin() as txn_m, unbundled.begin() as txn_u:
            assert txn_m.scan("t") == txn_u.scan("t")
