"""Rollbacks interrupted by a DC outage must complete on DC recovery."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig, TcConfig
from repro.common.errors import TransactionAborted
from repro.tc.transactional_component import TransactionState
from tests.conftest import populate


def kernel_with_short_timeout():
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=512), tc=TcConfig(lock_timeout=0.05))
    )
    kernel.create_table("t")
    return kernel


class TestZombieRollbacks:
    def test_deadlock_abort_during_dc_outage_is_completed_later(self):
        """A lock-timeout abort while the DC is down cannot deliver its
        inverse operations; the compensation must run at DC recovery so no
        phantom uncommitted data survives."""
        kernel = kernel_with_short_timeout()
        populate(kernel, 10)
        victim = kernel.begin()
        victim.update("t", 1, "uncommitted")
        # the DC goes down while the victim holds its X lock
        kernel.crash_dc()
        # another transaction's lock attempt times out; the guard force-
        # aborts IT cleanly (it has no DC work), while the victim's later
        # forced abort cannot reach the DC:
        kernel.tc._force_abort(victim)
        assert victim.state is TransactionState.ABORTED
        assert kernel.metrics.get("tc.zombie_rollbacks") == 1
        # DC recovers: redo repeats history (incl. the victim's update if
        # it was stable), then the zombie compensation reverses it
        kernel.recover_dc()
        assert kernel.metrics.get("tc.zombie_rollbacks_completed") == 1
        with kernel.begin() as check:
            assert check.read("t", 1) == "value-00001"

    def test_zombie_with_unforced_ops_also_clean(self):
        """Even if the zombie's forward ops never reached the stable log,
        recovery + retried compensation must converge to the pre-txn state."""
        kernel = kernel_with_short_timeout()
        populate(kernel, 5)
        victim = kernel.begin()
        victim.insert("t", 99, "phantom?")
        kernel.crash_dc()
        kernel.tc._force_abort(victim)
        kernel.recover_dc()
        with kernel.begin() as check:
            assert check.read("t", 99) is None

    def test_tc_crash_clears_zombies_and_restart_undoes_from_log(self):
        kernel = kernel_with_short_timeout()
        populate(kernel, 5)
        victim = kernel.begin()
        victim.update("t", 2, "dirty")
        kernel.tc.force_log()
        kernel.crash_dc()
        kernel.tc._force_abort(victim)
        assert kernel.metrics.get("tc.zombie_rollbacks") == 1
        # now the TC crashes too before the DC comes back
        kernel.crash_tc()
        kernel.recover_dc()
        kernel.recover_tc()  # loser undo from the stable log
        with kernel.begin() as check:
            assert check.read("t", 2) == "value-00002"

    def test_no_zombies_in_normal_operation(self):
        kernel = kernel_with_short_timeout()
        populate(kernel, 5)
        txn = kernel.begin()
        txn.update("t", 1, "x")
        txn.abort()
        assert kernel.metrics.get("tc.zombie_rollbacks") == 0
