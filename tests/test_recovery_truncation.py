"""Checkpoint-driven log truncation, parallel redo, journal compaction.

The recovery-time story has three legs, each tested here:

- **TC log truncation** — once a checkpoint advances the RSSP, the log
  prefix below it is garbage *except* for records of transactions that
  have not durably ended (restart still needs their undo info).  The
  truncation point is the min of the RSSP and the oldest record of any
  such transaction; EOSL and the LSN generator must survive a truncation
  that empties the stable prefix.
- **Parallel redo** — at TC restart the redo stream fans out per DC;
  correctness must be identical to the sequential replay, and the
  fan-out must silently fall back to sequential whenever determinism
  matters (fault injection, deterministic scheduler, single stream).
- **Journal compaction** — the process-mode DC journal is rewritten from
  history to state behind an atomic ``os.replace``; a crash at any point
  before the swap leaves the old journal fully readable, and replay
  after compaction is equivalent to replay of the full history.
"""

from __future__ import annotations

import pytest

from repro.common.config import ChannelConfig, DcConfig, KernelConfig, TcConfig
from repro.common.lsn import NULL_LSN
from repro.common.ops import InsertOp
from repro.kernel.unbundled import UnbundledKernel
from repro.net.journal import JournalStorage
from repro.sim.faults import FaultInjector
from repro.sim.metrics import Metrics
from repro.tc.log import CommitRecord, OpRecord, TcLog, TxnEndRecord


def append_op(log, txn_id=1, key=1):
    return log.append(
        lambda lsn: OpRecord(
            lsn=lsn,
            txn_id=txn_id,
            op=InsertOp(table="t", key=key, value="v"),
            undo=None,
            dc_name="dc",
        ),
        track_for_lwm=True,
    )


def end_txn(log, txn_id):
    log.append(lambda lsn: CommitRecord(lsn=lsn, txn_id=txn_id))
    return log.append(lambda lsn: TxnEndRecord(lsn=lsn, txn_id=txn_id))


class TestTcLogTruncation:
    def test_truncate_below_drops_only_the_stable_prefix(self):
        log = TcLog(Metrics())
        first = append_op(log, key=0)
        second = append_op(log, key=1)
        log.force()
        volatile = append_op(log, key=2)
        dropped = log.truncate_below(volatile.lsn)
        assert dropped == 2
        # The volatile tail is untouched — crash semantics still apply.
        assert [r.lsn for r in log.all_records()] == [volatile.lsn]
        assert log.truncated_upto == second.lsn

    def test_truncation_point_holds_at_unended_transaction(self):
        """The safe point is min(RSSP, oldest record of a txn without a
        stable TxnEndRecord): restart needs the loser's undo info even
        after its operations completed at the DC."""
        log = TcLog(Metrics())
        done = append_op(log, txn_id=1, key=0)
        end_txn(log, txn_id=1)
        loser = append_op(log, txn_id=2, key=1)  # never ends
        tail = append_op(log, txn_id=3, key=2)
        end_txn(log, txn_id=3)
        log.force()
        limit = tail.lsn + 1  # pretend the RSSP advanced past everything
        assert log.truncation_point(limit) == loser.lsn
        dropped = log.truncate_below(log.truncation_point(limit))
        # Only txn 1's records go; the loser's record survives.
        assert dropped == 3
        assert log.stable_records()[0].lsn == loser.lsn

    def test_truncation_point_respects_limit(self):
        log = TcLog(Metrics())
        first = append_op(log, txn_id=1, key=0)
        end_txn(log, txn_id=1)
        append_op(log, txn_id=2, key=1)
        end_txn(log, txn_id=2)
        log.force()
        assert log.truncation_point(first.lsn) == first.lsn

    def test_eosl_survives_truncating_the_whole_stable_prefix(self):
        log = TcLog(Metrics())
        append_op(log, txn_id=1, key=0)
        last = end_txn(log, txn_id=1)
        log.force()
        before = log.eosl
        assert log.truncate_below(last.lsn + 1) == 3
        assert log.record_count() == 0
        # EOSL never regresses: an empty stable prefix reports the
        # highest truncated LSN, not NULL.
        assert log.eosl == before == last.lsn

    def test_lsn_generator_continues_above_truncated_prefix(self):
        log = TcLog(Metrics())
        append_op(log, txn_id=1, key=0)
        last = end_txn(log, txn_id=1)
        log.force()
        log.truncate_below(last.lsn + 1)
        log.crash()
        log.recover_lsn_generator()
        fresh = append_op(log, txn_id=2, key=1)
        assert fresh.lsn > last.lsn

    def test_truncate_below_null_is_a_no_op(self):
        log = TcLog(Metrics())
        append_op(log)
        log.force()
        assert log.truncate_below(NULL_LSN) == 0
        assert log.record_count() == 1


class TestCheckpointTruncation:
    def _kernel(self, tc=None):
        config = KernelConfig(dc=DcConfig(page_size=1024), tc=tc or TcConfig())
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        return kernel

    def test_checkpoint_truncates_and_restart_stays_correct(self):
        kernel = self._kernel()
        for index in range(60):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        grew_to = kernel.tc.log.record_count()
        assert kernel.checkpoint()
        assert kernel.metrics.get("tclog.truncated_records") > 0
        assert kernel.tc.log.record_count() < grew_to
        for index in range(60, 80):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 80

    def test_checkpoint_with_active_writer_keeps_undo_info(self):
        """An uncommitted writer's records must survive truncation: its
        operations complete (so LWM/RSSP may pass them) but restart still
        needs the undo info to roll the loser back."""
        kernel = self._kernel()
        with kernel.begin() as txn:
            txn.insert("t", 0, "committed")
        loser = kernel.begin()
        loser.insert("t", 99, "uncommitted")
        loser_records = [
            r for r in kernel.tc.log.all_records() if r.txn_id == loser.txn_id
        ]
        assert loser_records
        for index in range(1, 40):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        assert kernel.checkpoint()
        # RSSP advanced (operations all completed), but the truncation
        # point held at the open transaction's oldest record.
        assert kernel.tc.rssp > loser_records[0].lsn
        surviving = {r.lsn for r in kernel.tc.log.stable_records()}
        assert loser_records[0].lsn in surviving
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert txn.read("t", 99) is None  # loser rolled back
            assert txn.read("t", 0) == "committed"
            assert len(txn.scan("t")) == 40

    def test_truncation_disabled_keeps_the_log(self):
        kernel = self._kernel(tc=TcConfig(truncate_log=False))
        for index in range(30):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        count = kernel.tc.log.record_count()
        assert kernel.checkpoint()
        assert kernel.tc.log.record_count() >= count
        assert kernel.metrics.get("tclog.truncations") == 0

    def test_redo_after_checkpoint_truncation_replays_only_tail(self):
        kernel = self._kernel()
        for index in range(20):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        assert kernel.checkpoint()
        for index in range(20, 25):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] <= 5
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 25


class TestParallelRedo:
    def _multi_dc_kernel(self, dc_count, tc=None, faults=None):
        config = KernelConfig(dc=DcConfig(page_size=1024), tc=tc or TcConfig())
        kernel = UnbundledKernel(config, dc_count=dc_count, faults=faults)
        for index in range(dc_count):
            kernel.create_table(f"t{index}", dc_name=f"dc{index + 1}")
        return kernel

    def _load(self, kernel, dc_count, rows=30):
        for index in range(rows):
            with kernel.begin() as txn:
                txn.insert(f"t{index % dc_count}", index, f"value-{index:05d}")

    def _check(self, kernel, dc_count, rows=30):
        with kernel.begin() as txn:
            seen = sum(len(txn.scan(f"t{i}")) for i in range(dc_count))
        assert seen == rows

    def test_parallel_redo_multi_dc_correctness(self):
        kernel = self._multi_dc_kernel(4)
        self._load(kernel, 4)
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] > 0
        assert kernel.metrics.get("tc.redo_parallel_fanouts") == 1
        self._check(kernel, 4)

    def test_sequential_fallback_under_fault_injection(self):
        """Any active FaultInjector forces the deterministic sequential
        path — fault schedules count hits, and a racing fan-out would
        make hit order (and thus the injected fault) nondeterministic."""
        faults = FaultInjector(schedule=[])
        kernel = self._multi_dc_kernel(3, faults=faults)
        self._load(kernel, 3)
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] > 0
        assert kernel.metrics.get("tc.redo_parallel_fanouts") == 0
        self._check(kernel, 3)

    def test_sequential_fallback_when_disabled(self):
        kernel = self._multi_dc_kernel(2, tc=TcConfig(parallel_redo=False))
        self._load(kernel, 2)
        kernel.crash_tc()
        kernel.recover_tc()
        assert kernel.metrics.get("tc.redo_parallel_fanouts") == 0
        self._check(kernel, 2)

    def test_single_dc_never_fans_out(self):
        config = KernelConfig(dc=DcConfig(page_size=1024))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for index in range(10):
            with kernel.begin() as txn:
                txn.insert("t", index, f"value-{index:05d}")
        kernel.crash_tc()
        kernel.recover_tc()
        assert kernel.metrics.get("tc.redo_parallel_fanouts") == 0
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 10

    def test_parallel_equals_sequential_state(self):
        """Same workload, both redo modes: identical visible state."""
        states = []
        for parallel in (True, False):
            kernel = self._multi_dc_kernel(3, tc=TcConfig(parallel_redo=parallel))
            self._load(kernel, 3, rows=24)
            kernel.crash_tc()
            kernel.recover_tc()
            with kernel.begin() as txn:
                states.append(
                    [sorted(txn.scan(f"t{i}")) for i in range(3)]
                )
        assert states[0] == states[1]


class TestJournalCompaction:
    def _populated(self, path):
        storage = JournalStorage(str(path))
        for key in range(8):
            storage.write_metadata(f"k{key}", key)
        for key in range(8):  # supersede: history > state
            storage.write_metadata(f"k{key}", key * 10)
        return storage

    def test_replay_after_compaction_is_equivalent(self, tmp_path):
        path = tmp_path / "dc.journal"
        storage = self._populated(path)
        before = {f"k{i}": storage.read_metadata(f"k{i}") for i in range(8)}
        reclaimed = storage.compact()
        assert reclaimed > 0
        storage.close()
        reopened = JournalStorage(str(path))
        assert reopened.replayed
        after = {f"k{i}": reopened.read_metadata(f"k{i}") for i in range(8)}
        assert after == before
        reopened.close()

    def test_journal_keeps_accepting_writes_after_compaction(self, tmp_path):
        path = tmp_path / "dc.journal"
        storage = self._populated(path)
        storage.compact()
        storage.write_metadata("post", "compaction")
        storage.close()
        reopened = JournalStorage(str(path))
        assert reopened.read_metadata("post") == "compaction"
        assert reopened.read_metadata("k3") == 30
        reopened.close()

    def test_crash_before_replace_leaves_old_journal_intact(
        self, tmp_path, monkeypatch
    ):
        """kill -9 anywhere before the atomic swap = the old journal, whole.

        Simulated by making ``os.replace`` itself die: everything the
        compaction wrote so far lives in a sibling file the next startup
        never looks at."""
        import repro.net.journal as journal_module

        path = tmp_path / "dc.journal"
        storage = self._populated(path)

        def die(src, dst):
            raise OSError("simulated SIGKILL before the swap")

        monkeypatch.setattr(journal_module.os, "replace", die)
        with pytest.raises(OSError):
            storage.compact()
        monkeypatch.undo()

        reopened = JournalStorage(str(path))
        assert reopened.replayed
        for key in range(8):
            assert reopened.read_metadata(f"k{key}") == key * 10
        reopened.close()

    def test_compaction_bounds_journal_growth(self, tmp_path):
        path = tmp_path / "dc.journal"
        storage = JournalStorage(str(path))
        for round_no in range(5):
            for key in range(16):
                storage.write_metadata(f"k{key}", f"round-{round_no}")
        full_history = storage.journal_bytes()
        storage.compact()
        assert storage.journal_bytes() < full_history / 2
        storage.close()


@pytest.mark.process
class TestProcessModeCompaction:
    def _process_kernel(self, tmp_path, dc_count=1):
        config = KernelConfig(
            dc=DcConfig(page_size=1024),
            channel=ChannelConfig(transport="process"),
            data_dir=str(tmp_path),
        )
        kernel = UnbundledKernel(config, dc_count=dc_count)
        kernel.create_table("t")
        return kernel

    def test_sigkill_after_compaction_replays_compacted_journal(self, tmp_path):
        kernel = self._process_kernel(tmp_path)
        try:
            for index in range(50):
                with kernel.begin() as txn:
                    txn.insert("t", index, f"value-{index:05d}")
            # Several checkpointed update rounds: each flush journals a
            # fresh generation of every touched page, so the journal
            # grows with history while live state stays constant.
            for round_no in range(3):
                for index in range(50):
                    with kernel.begin() as txn:
                        txn.update("t", index, f"round-{round_no}-{index:05d}")
                assert kernel.checkpoint()
            history_bytes = kernel.dc.stats()["journal_bytes"]
            assert kernel.dc.checkpoint_dc_log()
            compacted_bytes = kernel.dc.stats()["journal_bytes"]
            assert compacted_bytes < history_bytes
            # A real SIGKILL; the restarted server replays the compacted
            # journal and the TC resends anything above the RSSP.
            kernel.crash_dc()
            kernel.recover_dc()
            with kernel.begin() as txn:
                assert len(txn.scan("t")) == 50
                assert txn.read("t", 7) == "round-2-00007"
        finally:
            kernel.close()

    def test_compaction_then_more_writes_then_sigkill(self, tmp_path):
        kernel = self._process_kernel(tmp_path)
        try:
            for index in range(30):
                with kernel.begin() as txn:
                    txn.insert("t", index, f"value-{index:05d}")
            assert kernel.checkpoint()
            kernel.dc.checkpoint_dc_log()
            for index in range(30, 45):
                with kernel.begin() as txn:
                    txn.insert("t", index, f"value-{index:05d}")
            kernel.crash_dc()
            kernel.recover_dc()
            with kernel.begin() as txn:
                assert len(txn.scan("t")) == 45
        finally:
            kernel.close()
