"""The blocking 2PC comparator (what Section 6.2.2 avoids)."""

from __future__ import annotations

from repro.cloud.two_pc import ParticipantState, TwoPhaseCommitSystem


class TestProtocolOutcomes:
    def test_all_yes_commits(self):
        system = TwoPhaseCommitSystem(["a", "b"])
        outcome = system.commit_transaction()
        assert outcome.committed
        assert all(
            participant.state[1] is ParticipantState.COMMITTED
            for participant in system.participants.values()
        )

    def test_one_no_vote_aborts_globally(self):
        system = TwoPhaseCommitSystem(["a", "b"])
        outcome = system.commit_transaction(votes={"b": False})
        assert not outcome.committed
        assert system.participants["a"].state[1] is ParticipantState.ABORTED

    def test_crashed_participant_aborts(self):
        system = TwoPhaseCommitSystem(["a", "b"])
        system.crash_participant("b")
        outcome = system.commit_transaction()
        assert not outcome.committed


class TestCostModel:
    def test_message_count_is_4n(self):
        for n in (1, 2, 5):
            system = TwoPhaseCommitSystem([f"p{i}" for i in range(n)])
            outcome = system.commit_transaction()
            assert outcome.messages == 4 * n

    def test_log_forces_2n_plus_1(self):
        system = TwoPhaseCommitSystem(["a", "b", "c"])
        outcome = system.commit_transaction()
        assert outcome.log_forces == 2 * 3 + 1

    def test_two_round_trips_of_latency(self):
        system = TwoPhaseCommitSystem(["a", "b"], latency_ms=10.0)
        outcome = system.commit_transaction()
        assert outcome.round_trips == 2
        assert outcome.sim_latency_ms == 40.0

    def test_subset_of_participants(self):
        system = TwoPhaseCommitSystem(["a", "b", "c"])
        outcome = system.commit_transaction(involved=["a", "b"])
        assert outcome.messages == 8


class TestBlockingWindow:
    def test_prepared_participants_counted_as_blocked(self):
        system = TwoPhaseCommitSystem(["a", "b"])
        outcome = system.commit_transaction()
        assert outcome.blocked_participants == 2  # passed through the window

    def test_indoubt_participant_stays_blocked(self):
        """Coordinator 'dies' between phases: the YES voter is stuck —
        the blocking the unbundled versioned design never exhibits."""
        system = TwoPhaseCommitSystem(["a"])
        participant = system.participants["a"]
        participant.prepare(1)
        assert participant.is_blocked(1)
        assert system.blocked_transactions() == 1
        participant.decide(1, commit=True)
        assert system.blocked_transactions() == 0


class TestUnbundledComparison:
    def test_unbundled_w2_needs_fewer_forces_than_2pc(self):
        """The FIG2 claim, in miniature: a cross-machine write needs one
        log force on one TC, vs 2N+1 forces and 4N messages under 2PC."""
        from repro.cloud.movie_site import MovieSite

        site = MovieSite()
        site.add_movie("m", {"title": "M"})
        site.register_user("u", {})
        forces_before = site.metrics.get("tclog.forces")
        site.post_review("u", "m", "review")
        unbundled_forces = site.metrics.get("tclog.forces") - forces_before

        system = TwoPhaseCommitSystem(["dc1", "dc3"])
        outcome = system.commit_transaction()
        assert unbundled_forces < outcome.log_forces
