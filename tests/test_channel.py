"""The simulated transport: loss, duplication, reordering, latency."""

from __future__ import annotations

from repro.common.api import PerformOperation
from repro.common.config import ChannelConfig, DcConfig
from repro.common.ops import InsertOp, ReadOp
from repro.dc.data_component import DataComponent
from repro.net.channel import MessageChannel
from repro.sim.metrics import Metrics


def make_channel(**channel_kwargs):
    metrics = Metrics()
    dc = DataComponent("dc", config=DcConfig(page_size=512), metrics=metrics)
    dc.create_table("t")
    dc.register_tc(1, force_log=lambda lsn: lsn)
    channel = MessageChannel(dc, ChannelConfig(**channel_kwargs), metrics)
    return channel, dc, metrics


def op_message(op_id, key, value="v"):
    return PerformOperation(
        tc_id=1, op_id=op_id, op=InsertOp(table="t", key=key, value=value), eosl=10**9
    )


class TestWellBehaved:
    def test_request_reply(self):
        channel, dc, _m = make_channel()
        reply = channel.request(op_message(1, 1))
        assert reply is not None and reply.result.ok
        assert channel.well_behaved

    def test_crashed_dc_looks_like_loss(self):
        channel, dc, metrics = make_channel()
        dc.crash()
        assert channel.request(op_message(1, 1)) is None
        assert metrics.get("channel.requests_to_crashed_dc") == 1


class TestLossAndDuplication:
    def test_loss_is_deterministic_per_seed(self):
        outcomes = []
        for _ in range(2):
            channel, _dc, _m = make_channel(loss_rate=0.5, seed=7)
            outcomes.append(
                [channel.request(op_message(i, i)) is None for i in range(1, 30)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])  # some were lost
        assert not all(outcomes[0])

    def test_duplicates_absorbed_by_idempotence(self):
        channel, dc, metrics = make_channel(duplicate_rate=1.0)
        channel.request(op_message(1, 1))
        assert metrics.get("channel.requests_duplicated") == 1
        assert metrics.get("dc.duplicate_ops") == 1
        result = dc.perform_operation(1, 99, ReadOp(table="t", key=1))
        assert result.value == "v"

    def test_full_loss_never_delivers(self):
        channel, dc, _m = make_channel(loss_rate=1.0)
        assert channel.request(op_message(1, 1)) is None
        assert dc.perform_operation(1, 99, ReadOp(table="t", key=1)).value is None


class TestReordering:
    def test_pump_delivers_everything(self):
        channel, dc, _m = make_channel(reorder_window=4, seed=3)
        for index in range(20):
            channel.post(op_message(index + 1, index))
        replies = channel.pump()
        assert len(replies) == 20
        assert channel.pending() == 0
        for index in range(20):
            assert dc.perform_operation(1, 900 + index, ReadOp(table="t", key=index)).ok

    def test_reordering_actually_happens(self):
        channel, _dc, metrics = make_channel(reorder_window=4, seed=3)
        for index in range(20):
            channel.post(op_message(index + 1, index))
        channel.pump()
        assert metrics.get("channel.batches_reordered") == 1

    def test_zero_window_preserves_order(self):
        channel, _dc, metrics = make_channel()
        for index in range(10):
            channel.post(op_message(index + 1, index))
        channel.pump()
        assert metrics.get("channel.batches_reordered") == 0


class TestLatencyModel:
    def test_latency_accumulates_per_leg(self):
        channel, *_ = make_channel(latency_ms=5.0)
        channel.request(op_message(1, 1))
        assert channel.sim_time_ms == 10.0  # request + reply

    def test_ops_counter(self):
        channel, dc, _m = make_channel()
        channel.request(op_message(1, 1))
        from repro.common.api import EndOfStableLog

        channel.request(EndOfStableLog(tc_id=1, eosl=5))
        assert channel.requests_sent == 2
        assert channel.ops_sent == 1
