"""The TC's logical log: stability boundary, crash truncation, LWM."""

from __future__ import annotations

import threading

from repro.common.lsn import NULL_LSN
from repro.common.ops import InsertOp
from repro.sim.metrics import Metrics
from repro.tc.log import (
    CommitRecord,
    LwmTracker,
    OpRecord,
    TcLog,
)


def append_op(log, txn_id=1, key=1):
    return log.append(
        lambda lsn: OpRecord(
            lsn=lsn,
            txn_id=txn_id,
            op=InsertOp(table="t", key=key, value="v"),
            undo=None,
            dc_name="dc",
        ),
        track_for_lwm=True,
    )


class TestAppendAndForce:
    def test_lsns_increase_with_append_order(self):
        log = TcLog(Metrics())
        records = [append_op(log, key=index) for index in range(10)]
        lsns = [record.lsn for record in records]
        assert lsns == sorted(lsns)
        assert log.all_records() == records

    def test_eosl_moves_only_on_force(self):
        log = TcLog(Metrics())
        record = append_op(log)
        assert log.eosl == NULL_LSN
        assert log.needs_force(record.lsn)
        log.force()
        assert log.eosl == record.lsn
        assert not log.needs_force(record.lsn)

    def test_read_ids_share_the_sequence(self):
        log = TcLog(Metrics())
        a = append_op(log).lsn
        read_id = log.issue_read_id()
        b = append_op(log).lsn
        assert a < read_id < b

    def test_read_ids_do_not_appear_in_log(self):
        log = TcLog(Metrics())
        log.issue_read_id()
        assert log.record_count() == 0

    def test_concurrent_appends_keep_lsn_order(self):
        log = TcLog(Metrics())

        def worker(base):
            for index in range(200):
                append_op(log, key=base * 1000 + index)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lsns = [record.lsn for record in log.all_records()]
        assert lsns == sorted(lsns)
        assert len(lsns) == 800


class TestCrashSemantics:
    def test_crash_truncates_volatile_tail(self):
        log = TcLog(Metrics())
        stable = append_op(log)
        log.force()
        lost_one = append_op(log)
        lost_two = append_op(log)
        assert log.crash() == 2
        assert [record.lsn for record in log.stable_records()] == [stable.lsn]
        assert log.eosl == stable.lsn

    def test_lsn_generator_continues_above_stable(self):
        log = TcLog(Metrics())
        append_op(log)
        log.force()
        append_op(log)
        log.crash()
        log.recover_lsn_generator()
        fresh = append_op(log)
        assert fresh.lsn > log.stable_records()[0].lsn

    def test_crash_resets_lwm(self):
        log = TcLog(Metrics())
        record = append_op(log)
        log.complete_op(record.lsn)
        assert log.lwm == record.lsn
        log.crash()
        assert log.lwm == NULL_LSN

    def test_stable_records_from(self):
        log = TcLog(Metrics())
        records = [append_op(log, key=index) for index in range(5)]
        log.force()
        tail = list(log.stable_records_from(records[2].lsn))
        assert [record.lsn for record in tail] == [r.lsn for r in records[2:]]


class TestLwmTracker:
    def test_in_order_completion(self):
        tracker = LwmTracker()
        for op_id in (1, 2, 3):
            tracker.register(op_id)
        tracker.complete(1)
        assert tracker.lwm == 1
        tracker.complete(2)
        tracker.complete(3)
        assert tracker.lwm == 3

    def test_gap_holds_the_mark(self):
        """No gaps below the LWM — Section 5.1.2, Establishing LSNlw."""
        tracker = LwmTracker()
        for op_id in (1, 2, 3):
            tracker.register(op_id)
        tracker.complete(3)
        tracker.complete(2)
        assert tracker.lwm == NULL_LSN  # op 1 outstanding
        tracker.complete(1)
        assert tracker.lwm == 3

    def test_sparse_ids(self):
        tracker = LwmTracker()
        tracker.register(5)
        tracker.register(9)
        tracker.complete(5)
        assert tracker.lwm == 5  # 6..8 were never issued, no gap

    def test_outstanding_count(self):
        tracker = LwmTracker()
        tracker.register(1)
        tracker.register(2)
        assert tracker.outstanding() == 2
        tracker.complete(1)
        assert tracker.outstanding() == 1

    def test_log_integration(self):
        log = TcLog(Metrics())
        a = append_op(log)
        read_id = log.issue_read_id()
        assert log.complete_op(a.lsn) == a.lsn  # read still outstanding? no:
        # read_id > a.lsn, so completing `a` advances the mark to a.lsn
        assert log.complete_op(read_id) == read_id


class TestCommitRecords:
    def test_mixed_record_stream(self):
        log = TcLog(Metrics())
        op = append_op(log, txn_id=9)
        commit = log.append(lambda lsn: CommitRecord(lsn=lsn, txn_id=9))
        log.force()
        kinds = [type(r).__name__ for r in log.stable_records()]
        assert kinds == ["OpRecord", "CommitRecord"]
        assert commit.lsn > op.lsn

    def test_bytes_metric_grows(self):
        metrics = Metrics()
        log = TcLog(metrics)
        append_op(log)
        assert metrics.get("tclog.bytes") > 0
