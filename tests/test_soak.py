"""A deterministic soak: sustained mixed load with periodic failures."""

from __future__ import annotations

import random

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig
from repro.common.errors import DuplicateKeyError, NoSuchRecordError
from repro.storage.buffer import ResetMode


def test_soak_mixed_load_with_periodic_failures():
    """4 000 operations, a crash every 400, a checkpoint every 600 — the
    kernel must track a dict oracle exactly throughout."""
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=512, buffer_capacity=32),
            channel=ChannelConfig(loss_rate=0.05, duplicate_rate=0.05, seed=1234),
        )
    )
    kernel.create_table("t")
    rng = random.Random(99)
    model: dict[int, int] = {}
    crash_cycle = [
        lambda: (kernel.crash_dc(), kernel.recover_dc()),
        lambda: (kernel.crash_tc(), kernel.recover_tc(ResetMode.RECORD_RESET)),
        lambda: (kernel.crash_all(), kernel.recover_all()),
        lambda: (kernel.crash_tc(), kernel.recover_tc(ResetMode.DROP_AFFECTED)),
    ]
    operations = 0
    for step in range(4_000):
        if step and step % 400 == 0:
            crash_cycle[(step // 400) % len(crash_cycle)]()
        if step and step % 600 == 0:
            kernel.checkpoint()
        key = rng.randrange(200)
        roll = rng.random()
        txn = kernel.begin()
        try:
            if roll < 0.35:
                txn.insert("t", key, step)
                txn.commit()
                model[key] = step
            elif roll < 0.6:
                txn.update("t", key, step)
                txn.commit()
                model[key] = step
            elif roll < 0.75:
                txn.delete("t", key)
                txn.commit()
                model.pop(key, None)
            elif roll < 0.85:
                # an aborted multi-op transaction leaves no trace
                txn.update("t", key, -1) if key in model else txn.insert(
                    "t", key, -1
                )
                txn.abort()
            else:
                assert txn.read("t", key) == model.get(key)
                txn.commit()
            operations += 1
        except (DuplicateKeyError, NoSuchRecordError):
            txn.abort()
    with kernel.begin() as txn:
        assert dict(txn.scan("t")) == model
    kernel.dc.table("t").structure.validate()
    assert operations > 2_000  # the rest hit duplicate/missing-key aborts


def test_soak_counter_bank_invariant():
    """A 'bank': transfers between 20 numeric accounts under crashes; the
    total balance is invariant (increments are non-idempotent, so any
    replay defect corrupts the sum immediately)."""
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=512),
            channel=ChannelConfig(duplicate_rate=0.1, seed=5),
        )
    )
    kernel.create_table("bank")
    accounts = 20
    with kernel.begin() as txn:
        for account in range(accounts):
            txn.insert("bank", account, 1_000)
    rng = random.Random(7)
    for step in range(600):
        if step and step % 150 == 0:
            kernel.crash_all()
            kernel.recover_all()
        src, dst = rng.sample(range(accounts), 2)
        amount = rng.randrange(1, 50)
        txn = kernel.begin()
        txn.increment("bank", src, -amount)
        txn.increment("bank", dst, amount)
        if rng.random() < 0.15:
            txn.abort()  # rollback must restore both sides
        else:
            txn.commit()
    with kernel.begin() as txn:
        balances = [value for _key, value in txn.scan("bank")]
    assert sum(balances) == accounts * 1_000
