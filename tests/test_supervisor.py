"""Self-healing supervision and graceful degradation.

The paper's recovery mechanisms (Sections 5.2-5.3) assume *something*
notices a crash and drives the restart protocol; these tests pin down that
policy layer:

- a write addressed at a down DC fails fast with a typed
  :class:`ComponentUnavailableError` inside the configured timeout budget
  — never an unbounded retry loop;
- sustained channel loss (the DC is up, the wire is not) surfaces as
  :class:`ResendExhaustedError` with the attempt/backoff accounting;
- :meth:`Supervisor.heal` restarts crashed DCs and TCs, lifts partitions,
  finishes zombie rollbacks, and leaves every acknowledged commit intact.
"""

from __future__ import annotations

import pytest

from repro.common.config import KernelConfig, TcConfig
from repro.common.errors import (
    ComponentUnavailableError,
    CrashedError,
    ResendExhaustedError,
)
from repro.common.ops import ReadFlavor
from repro.kernel.unbundled import UnbundledKernel
from repro.sim.faults import FaultAction, FaultInjector, FaultPoint, FaultRule
from repro.sim.supervisor import Supervisor, SupervisorGaveUp


def build_kernel(
    injector=None,
    budget_ms: float = 200.0,
    attempts: int = 24,
    versioned: bool = False,
):
    config = KernelConfig(
        tc=TcConfig(
            group_commit_size=1,
            op_timeout_budget_ms=budget_ms,
            max_resend_attempts=attempts,
        )
    )
    kernel = UnbundledKernel(config=config, dc_count=2, faults=injector)
    names = list(kernel.dcs)
    kernel.create_table("t", dc_name=names[0], versioned=versioned)
    kernel.create_table("u", dc_name=names[1], versioned=versioned)
    return kernel


def put(kernel, table, key, value):
    txn = kernel.begin()
    txn.insert(table, key, value)
    txn.commit()


class TestFailFast:
    def test_down_dc_raises_typed_error_within_budget(self):
        kernel = build_kernel()
        dc1, dc2 = kernel.dcs.values()
        put(kernel, "t", 1, "a")
        dc1.crash()
        txn = kernel.begin()
        with pytest.raises(ComponentUnavailableError) as excinfo:
            txn.insert("t", 2, "b")
        err = excinfo.value
        # Fail fast: the down state is known, so no resend burn at all.
        assert err.waited_ms <= kernel.tc.config.op_timeout_budget_ms
        assert err.attempts <= kernel.tc.config.max_resend_attempts
        # Typed *and* compatible: it still is a CrashedError.
        assert isinstance(err, CrashedError)

    def test_healthy_dc_keeps_serving_while_other_is_down(self):
        kernel = build_kernel()
        dc1, dc2 = kernel.dcs.values()
        put(kernel, "u", 5, "healthy")
        dc1.crash()
        assert (
            kernel.tc.read_other("u", 5, flavor=ReadFlavor.READ_COMMITTED)
            == "healthy"
        )

    def test_sustained_loss_exhausts_resend_policy(self):
        injector = FaultInjector(
            [
                FaultRule(
                    FaultPoint.CHANNEL_SEND,
                    FaultAction.DROP,
                    target="dc1",
                    after=1,
                    count=10**6,
                )
            ]
        )
        kernel = build_kernel(injector, budget_ms=50.0, attempts=12)
        txn = kernel.begin()
        with pytest.raises(ResendExhaustedError) as excinfo:
            txn.insert("t", 1, "x")
        err = excinfo.value
        assert err.attempts <= 12
        assert err.waited_ms <= 50.0 + kernel.tc.config.resend_backoff_max_ms

    def test_snapshot_on_down_dc_fails_fast_unless_degraded(self):
        kernel = build_kernel(versioned=True)
        dc1, _dc2 = kernel.dcs.values()
        put(kernel, "t", 1, "a")
        put(kernel, "u", 2, "b")
        dc1.crash()
        with pytest.raises(ComponentUnavailableError):
            kernel.tc.begin_snapshot()
        reader = kernel.tc.begin_snapshot(allow_degraded=True)
        assert reader.read("u", 2) == "b"  # the healthy DC still answers
        with pytest.raises(ComponentUnavailableError):
            reader.read("t", 1)  # the down DC fails fast, typed


class TestSupervisorHealing:
    def test_restarts_crashed_dc_and_preserves_commits(self):
        injector = FaultInjector()
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector)
        supervisor.watch_kernel(kernel)
        for key in range(8):
            put(kernel, "t", key, f"v{key}")
        dc1 = next(iter(kernel.dcs.values()))
        dc1.crash()
        assert not supervisor.all_healthy()
        report = supervisor.heal()
        assert report.dc_restarts == 1
        assert supervisor.all_healthy()
        for key in range(8):
            assert (
                kernel.tc.read_other("t", key, flavor=ReadFlavor.READ_COMMITTED)
                == f"v{key}"
            )

    def test_restarts_crashed_tc_and_preserves_commits(self):
        injector = FaultInjector()
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector)
        supervisor.watch_kernel(kernel)
        for key in range(6):
            put(kernel, "t", key, f"v{key}")
        kernel.tc.crash()
        report = supervisor.heal()
        assert report.tc_restarts == 1
        assert supervisor.all_healthy()
        put(kernel, "t", 99, "after-heal")  # fully operational again
        for key in list(range(6)) + [99]:
            expected = "after-heal" if key == 99 else f"v{key}"
            assert (
                kernel.tc.read_other("t", key, flavor=ReadFlavor.READ_COMMITTED)
                == expected
            )

    def test_lifts_partition_and_finishes_zombie_rollback(self):
        injector = FaultInjector(
            [
                FaultRule(
                    FaultPoint.CHANNEL_SEND,
                    FaultAction.PARTITION,
                    target="dc1",
                    after=1,
                )
            ]
        )
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector)
        supervisor.watch_kernel(kernel)
        txn = kernel.begin()
        with pytest.raises(CrashedError):
            txn.insert("t", 1, "doomed")  # partition starts on this send
        # The abort cannot reach the DC either: it parks a zombie rollback.
        try:
            txn.abort()
        except CrashedError:
            pass
        assert kernel.tc.pending_zombies() >= 0  # parked or already empty
        report = supervisor.heal()
        assert report.partitions_lifted == 1
        assert supervisor.all_healthy()
        assert kernel.tc.pending_zombies() == 0
        # Nothing from the aborted transaction is visible.
        assert (
            kernel.tc.read_other("t", 1, flavor=ReadFlavor.READ_COMMITTED) is None
        )

    def test_crash_notices_recorded_and_marked_healed(self):
        injector = FaultInjector()
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector)
        supervisor.watch_kernel(kernel)
        dc1 = next(iter(kernel.dcs.values()))
        dc1.crash()
        kernel.tc.crash()
        assert {(n.component, n.kind) for n in supervisor.notices} == {
            (dc1.name, "dc"),
            (kernel.tc.name, "tc"),
        }
        supervisor.heal()
        assert all(notice.healed for notice in supervisor.notices)

    def test_heal_is_idempotent_noop_when_healthy(self):
        injector = FaultInjector()
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector)
        supervisor.watch_kernel(kernel)
        report = supervisor.heal()
        assert report.rounds == 1
        assert not report.acted

    def test_heals_sigkilled_dc_process(self):
        """Process deployment mode: the 'crash' is a real ``kill -9`` of a
        DC server process, mid-transaction, under the optimized fast-path
        config — the supervisor restarts it (journal replay + §5.2.1 redo
        prompt) and resend + abLSN idempotence converge on exactly-once."""
        import os
        import signal
        import time

        from repro.common.config import ChannelConfig

        config = KernelConfig(
            tc=TcConfig.optimized(),
            channel=ChannelConfig(transport="process", request_timeout_s=15.0),
        )
        with UnbundledKernel(config=config, dc_count=1) as kernel:
            kernel.create_table("t")
            supervisor = Supervisor()
            supervisor.watch_kernel(kernel)
            txn = kernel.begin()
            txn.insert("t", "n", 0)
            txn.commit()
            txn = kernel.begin()
            for _ in range(12):  # batch_max_ops=8: a prefix reaches the DC
                txn.increment("t", "n", 1)
            os.kill(kernel.dc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while not kernel.dc.crashed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not supervisor.all_healthy()
            report = supervisor.heal()
            assert report.dc_restarts == 1
            assert supervisor.all_healthy()
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", "n") == 12  # not 11, not 13: exactly once
            txn.commit()
            assert kernel.dc.restarts == 1

    def test_gave_up_carries_reproduction_recipe(self):
        injector = FaultInjector(seed=77)
        kernel = build_kernel(injector)
        supervisor = Supervisor(injector, max_rounds=2)
        supervisor.watch_kernel(kernel)
        dc1 = next(iter(kernel.dcs.values()))
        dc1.crash()
        dc1.recover = lambda **kwargs: (_ for _ in ()).throw(CrashedError(dc1.name))
        with pytest.raises(SupervisorGaveUp) as excinfo:
            supervisor.heal()
        assert "seed=77" in str(excinfo.value)
        assert excinfo.value.rounds == 2
