"""Snapshot reads (the Section 6.3 extension: "we also see potential for
providing snapshot isolation")."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.common.errors import SnapshotTooOldError
from repro.common.records import TOMBSTONE, VersionedRecord


def snapshot_kernel(retention=100, max_versions=16):
    config = KernelConfig(
        dc=DcConfig(
            page_size=1024,
            snapshot_retention=retention,
            snapshot_max_versions=max_versions,
        )
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("v", versioned=True)
    return kernel


class TestRecordHistory:
    def test_promote_retains_history(self):
        record = VersionedRecord(key=1)
        record.set_pending("v1")
        record.promote_pending(commit_seq=1, keep_history=4)
        record.set_pending("v2")
        record.promote_pending(commit_seq=2, keep_history=4)
        assert record.committed == "v2" and record.commit_seq == 2
        assert record.history == [(1, "v1")]

    def test_snapshot_value_walks_history(self):
        record = VersionedRecord(key=1)
        for seq, value in ((1, "a"), (5, "b"), (9, "c")):
            record.set_pending(value)
            record.promote_pending(commit_seq=seq, keep_history=4)
        assert record.snapshot_value(0) is None  # before creation
        assert record.snapshot_value(1) == "a"
        assert record.snapshot_value(4) == "a"
        assert record.snapshot_value(5) == "b"
        assert record.snapshot_value(100) == "c"

    def test_delete_leaves_tombstone_in_history(self):
        record = VersionedRecord(key=1)
        record.set_pending("alive")
        record.promote_pending(commit_seq=1, keep_history=4)
        record.set_pending(TOMBSTONE)
        record.promote_pending(commit_seq=2, keep_history=4)
        assert record.snapshot_value(1) == "alive"
        assert record.snapshot_value(2) is None
        assert not record.is_dead()  # history keeps the slot alive

    def test_history_cap(self):
        record = VersionedRecord(key=1)
        for seq in range(1, 10):
            record.set_pending(f"v{seq}")
            record.promote_pending(commit_seq=seq, keep_history=3)
        assert len(record.history) <= 3

    def test_prune_history(self):
        record = VersionedRecord(key=1)
        for seq in (1, 2, 3, 4):
            record.set_pending(f"v{seq}")
            record.promote_pending(commit_seq=seq, keep_history=10)
        dropped = record.prune_history(3)
        assert dropped == 2
        assert [seq for seq, _v in record.history] == [3]

    def test_max_seq(self):
        record = VersionedRecord(key=1)
        record.set_pending("a")
        record.promote_pending(commit_seq=7, keep_history=4)
        assert record.max_seq() == 7

    def test_clone_copies_history_deeply(self):
        record = VersionedRecord(key=1)
        record.set_pending("a")
        record.promote_pending(commit_seq=1, keep_history=4)
        clone = record.clone()
        clone.set_pending("b")
        clone.promote_pending(commit_seq=2, keep_history=4)
        assert record.history == []
        assert clone.history == [(1, "a")]


class TestSnapshotReads:
    def test_read_as_of_past_watermarks(self):
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "v1")
        snap1 = kernel.tc.begin_snapshot()
        with kernel.begin() as txn:
            txn.update("v", 1, "v2")
        snap2 = kernel.tc.begin_snapshot()
        with kernel.begin() as txn:
            txn.update("v", 1, "v3")
        assert snap1.read("v", 1) == "v1"
        assert snap2.read("v", 1) == "v2"

    def test_snapshot_does_not_see_later_inserts_or_deletes(self):
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "keep")
            txn.insert("v", 2, "doomed")
        snap = kernel.tc.begin_snapshot()
        with kernel.begin() as txn:
            txn.insert("v", 3, "new")
            txn.delete("v", 2)
        assert snap.read("v", 3) is None
        assert snap.read("v", 2) == "doomed"
        assert snap.scan("v") == [(1, "keep"), (2, "doomed")]

    def test_snapshot_is_transaction_consistent(self):
        """All updates of one transaction share a commit sequence: a
        snapshot sees all of them or none of them."""
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "a0")
            txn.insert("v", 2, "b0")
        snap_before = kernel.tc.begin_snapshot()
        with kernel.begin() as txn:
            txn.update("v", 1, "a1")
            txn.update("v", 2, "b1")
        snap_after = kernel.tc.begin_snapshot()
        assert snap_before.scan("v") == [(1, "a0"), (2, "b0")]
        assert snap_after.scan("v") == [(1, "a1"), (2, "b1")]

    def test_snapshot_never_sees_uncommitted(self):
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "committed")
        writer = kernel.begin()
        writer.update("v", 1, "pending")
        snap = kernel.tc.begin_snapshot()
        assert snap.read("v", 1) == "committed"
        writer.abort()

    def test_snapshot_never_blocks(self):
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "base")
        writer = kernel.begin()
        writer.update("v", 1, "held-under-x-lock")
        snap = kernel.tc.begin_snapshot()
        for _ in range(5):
            assert snap.read("v", 1) == "base"
        writer.commit()

    def test_snapshot_too_old(self):
        kernel = snapshot_kernel(retention=2)
        with kernel.begin() as txn:
            txn.insert("v", 1, "a")
        old = kernel.tc.begin_snapshot()
        for index in range(6):
            with kernel.begin() as txn:
                txn.update("v", 1, f"x{index}")
        with pytest.raises(SnapshotTooOldError):
            old.read("v", 1)
        with pytest.raises(SnapshotTooOldError):
            old.scan("v")

    def test_fresh_snapshot_still_fine_after_churn(self):
        kernel = snapshot_kernel(retention=2)
        with kernel.begin() as txn:
            txn.insert("v", 1, "a")
        for index in range(6):
            with kernel.begin() as txn:
                txn.update("v", 1, f"x{index}")
        snap = kernel.tc.begin_snapshot()
        assert snap.read("v", 1) == "x5"

    def test_retention_zero_disables_history(self):
        kernel = snapshot_kernel(retention=0)
        with kernel.begin() as txn:
            txn.insert("v", 1, "v1")
        with kernel.begin() as txn:
            txn.update("v", 1, "v2")
        record = kernel.dc.table("v").structure.get_record(1)
        assert record.history == []


class TestSnapshotsAcrossFailures:
    def test_version_clock_survives_dc_crash(self):
        """Sequences resume above every stamped version, so new commits
        keep per-record history monotone."""
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "v1")
        with kernel.begin() as txn:
            txn.update("v", 1, "v2")
        clock_before = kernel.dc.version_watermark()
        kernel.crash_dc()
        kernel.recover_dc()
        assert kernel.dc.version_watermark() >= clock_before
        with kernel.begin() as txn:
            txn.update("v", 1, "v3")
        snap = kernel.tc.begin_snapshot()
        assert snap.read("v", 1) == "v3"
        record = kernel.dc.table("v").structure.get_record(1)
        seqs = [seq for seq, _v in record.history] + [record.commit_seq]
        assert seqs == sorted(seqs)

    def test_snapshot_history_survives_tc_crash(self):
        kernel = snapshot_kernel()
        with kernel.begin() as txn:
            txn.insert("v", 1, "v1")
        with kernel.begin() as txn:
            txn.update("v", 1, "v2")
        loser = kernel.begin()
        loser.update("v", 1, "lost")
        kernel.crash_tc()
        kernel.recover_tc()
        snap = kernel.tc.begin_snapshot()
        assert snap.read("v", 1) == "v2"
