"""Cross-module integration and stress: the kernel under hostile settings."""

from __future__ import annotations

import threading

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, TcConfig
from repro.common.records import KEY_MAX, KEY_MIN
from tests.conftest import populate


class TestEvictionPressure:
    def _tiny_buffer_kernel(self):
        config = KernelConfig(dc=DcConfig(page_size=512, buffer_capacity=6))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        return kernel

    def test_workload_survives_constant_eviction(self):
        kernel = self._tiny_buffer_kernel()
        populate(kernel, 200)
        assert kernel.metrics.get("buffer.evictions") > 0
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 200
        kernel.dc.table("t").structure.validate()

    def test_eviction_plus_dc_crash(self):
        kernel = self._tiny_buffer_kernel()
        populate(kernel, 150)
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 150

    def test_eviction_plus_tc_crash(self):
        kernel = self._tiny_buffer_kernel()
        populate(kernel, 150)
        loser = kernel.begin()
        loser.update("t", 10, "dirty")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert txn.read("t", 10) == "value-00010"
            assert len(txn.scan("t")) == 150

    def test_evicted_split_pages_reload_through_dc_log(self):
        """A split's new page may never be flushed; after eviction it must
        reload through the stable-state loader (disk + DC log)."""
        kernel = self._tiny_buffer_kernel()
        populate(kernel, 100)
        # force everything out of cache
        kernel.tc.broadcast_eosl()
        for page_id in list(kernel.dc.buffer.cached_ids()):
            page = kernel.dc.buffer.cached_page(page_id)
            if page is not None and page.dirty:
                kernel.dc.buffer.try_flush(page)
            kernel.dc.buffer.discard(page_id)
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 100


class TestGroupCommitDurability:
    """Force-before-ack at *every* batch size (the regression ordered by
    the FIG1 fast-path work): group commit coalesces who forces, never
    whether stability precedes the acknowledgement."""

    @pytest.mark.parametrize("group_size", [1, 2, 8, 100])
    def test_acknowledged_commit_is_stable_at_every_batch_size(self, group_size):
        config = KernelConfig(tc=TcConfig(group_commit_size=group_size))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        with kernel.begin() as txn:
            txn.insert("t", 1, "durable")
        # commit returned => its record is on the stable log
        assert kernel.tc.log.stable_count() > 0
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert txn.read("t", 1) == "durable"

    @pytest.mark.parametrize("group_size", [1, 3, 100])
    def test_every_acknowledged_commit_survives_a_crash(self, group_size):
        config = KernelConfig(tc=TcConfig(group_commit_size=group_size))
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for key in range(3):
            with kernel.begin() as txn:
                txn.insert("t", key, "v")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 3

    def test_rejects_invalid_group_commit_size(self):
        with pytest.raises(ValueError):
            UnbundledKernel(KernelConfig(tc=TcConfig(group_commit_size=0)))

    def test_concurrent_committers_share_forces(self):
        """With real concurrency, parked committers ride a leader's force:
        fewer forces than commits, yet every commit durable."""
        import sys

        config = KernelConfig(
            tc=TcConfig(group_commit_size=4, group_commit_deadline_ms=200.0)
        )
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        threads, rounds = 4, 8
        # Pre-populate so workers update disjoint keys: updates take only
        # record locks (concurrent tail inserts would serialize on the
        # TABLE_END gap lock and defeat the point of the test).
        for worker_id in range(threads):
            for round_no in range(rounds):
                with kernel.begin() as txn:
                    txn.insert("t", worker_id * 100 + round_no, "seed")
        seed_commits = kernel.metrics.get("tc.commits")
        barrier = threading.Barrier(threads)
        errors = []

        def worker(worker_id):
            try:
                for round_no in range(rounds):
                    txn = kernel.begin()
                    txn.update("t", worker_id * 100 + round_no, "v")
                    barrier.wait(timeout=30)  # commit in lockstep waves
                    txn.commit()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        # Commits are microseconds of pure Python: under the default 5ms
        # GIL slice they would serialize and never overlap.  Aggressive
        # switching makes committers genuinely concurrent.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            workers = [
                threading.Thread(target=worker, args=(n,)) for n in range(threads)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=60)
        finally:
            sys.setswitchinterval(old_interval)
        assert not errors
        commits = kernel.metrics.get("tc.commits") - seed_commits
        forces = kernel.metrics.get("tclog.forces")
        assert commits == threads * rounds
        assert forces <= kernel.metrics.get("tc.commits")
        assert kernel.metrics.get("tclog.group_commit_riders") > 0  # shares happened
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == threads * rounds


class TestHostileChannel:
    def test_loss_duplication_and_reordering_together(self):
        config = KernelConfig(
            dc=DcConfig(page_size=512),
            channel=ChannelConfig(
                loss_rate=0.2, duplicate_rate=0.2, reorder_window=3, seed=99
            ),
        )
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        for key in range(80):
            with kernel.begin() as txn:
                txn.insert("t", key, key * 3)
        with kernel.begin() as txn:
            rows = txn.scan("t")
        assert rows == [(key, key * 3) for key in range(80)]

    def test_hostile_channel_plus_crashes(self):
        config = KernelConfig(
            dc=DcConfig(page_size=512),
            channel=ChannelConfig(loss_rate=0.15, duplicate_rate=0.1, seed=4),
        )
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        populate(kernel, 60)
        kernel.crash_dc()
        kernel.recover_dc()
        loser = kernel.begin()
        loser.update("t", 5, "dirty")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert txn.read("t", 5) == "value-00005"
            assert len(txn.scan("t")) == 60


class TestConcurrentKernelUse:
    def test_threads_on_disjoint_tables(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=1024)))
        for index in range(4):
            kernel.create_table(f"t{index}")
        errors: list[Exception] = []

        def worker(index: int):
            try:
                for op in range(60):
                    with kernel.begin() as txn:
                        txn.insert(f"t{index}", op, f"w{index}-{op}")
                with kernel.begin() as txn:
                    assert len(txn.scan(f"t{index}")) == 60
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_threads_on_one_table_disjoint_ranges(self):
        kernel = UnbundledKernel(
            KernelConfig(
                dc=DcConfig(page_size=1024), tc=TcConfig(lock_timeout=5.0)
            )
        )
        kernel.create_table("t")
        errors: list[Exception] = []

        def worker(index: int):
            base = index * 1000
            try:
                for op in range(50):
                    with kernel.begin() as txn:
                        txn.insert("t", base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 200
        kernel.dc.table("t").structure.validate()


class TestExoticKeysAndValues:
    def test_string_keys(self, kernel):
        words = ["zebra", "apple", "mango", "kiwi", "fig"]
        with kernel.begin() as txn:
            for word in words:
                txn.insert("t", word, word.upper())
        with kernel.begin() as txn:
            rows = txn.scan("t")
        assert [key for key, _v in rows] == sorted(words)

    def test_composite_tuple_keys_with_bounds(self, kernel):
        with kernel.begin() as txn:
            for group in ("a", "b"):
                for member in range(3):
                    txn.insert("t", (group, member), f"{group}{member}")
        with kernel.begin() as txn:
            rows = txn.scan("t", ("a", KEY_MIN), ("a", KEY_MAX))
        assert [key for key, _v in rows] == [("a", 0), ("a", 1), ("a", 2)]

    def test_large_values_force_splits(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=2048)))
        kernel.create_table("t")
        blob = "B" * 500
        with kernel.begin() as txn:
            for key in range(20):
                txn.insert("t", key, blob + str(key))
        assert kernel.metrics.get("btree.leaf_splits") > 0
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as txn:
            assert txn.read("t", 13) == blob + "13"

    def test_value_growth_forces_relocation(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        with kernel.begin() as txn:
            for key in range(8):
                txn.insert("t", key, "small")
        with kernel.begin() as txn:
            txn.update("t", 3, "L" * 300)  # no longer fits in place
        with kernel.begin() as txn:
            assert txn.read("t", 3) == "L" * 300
            assert len(txn.scan("t")) == 8
        kernel.dc.table("t").structure.validate()


class TestHeapTableIntegration:
    def test_heap_through_full_kernel_with_crashes(self):
        kernel = UnbundledKernel()
        kernel.dc.create_table("h", kind="heap", bucket_count=8)
        kernel.tc.refresh_routes(kernel.dc)
        for key in range(40):
            with kernel.begin() as txn:
                txn.insert("h", key, key)
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as txn:
            assert len(txn.scan("h")) == 40
        loser = kernel.begin()
        loser.update("h", 1, "dirty")
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            assert txn.read("h", 1) == 1


class TestDcLogTruncationAcrossCrashes:
    def test_truncated_dc_log_then_dc_crash(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        populate(kernel, 80)
        kernel.tc.checkpoint()
        assert kernel.dc.checkpoint_dc_log()
        assert kernel.dc.storage.dc_log_length() == 0
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 80
        kernel.dc.table("t").structure.validate()

    def test_work_after_truncation_recovers(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("t")
        populate(kernel, 60)
        kernel.tc.checkpoint()
        assert kernel.dc.checkpoint_dc_log()
        for key in range(60, 120):
            with kernel.begin() as txn:
                txn.insert("t", key, f"value-{key:05d}")
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 120
