"""The observability subsystem: spans, histograms, export, fault behavior.

Tier-1 coverage for :mod:`repro.obs` plus the two fault-interaction
properties the subsystem exists for:

- a dropped request's resend shows up as a *sibling retry span* under the
  same transaction root (the lost send tagged ``lost``, the retry tagged
  ``resend``), because the op id carries the trace context across retries;
- spans close cleanly across a DC crash + supervisor-driven restart: every
  collected span is finished, the crashed operation's spans carry error
  tags instead of dangling, and the redo stream gets its own trace.
"""

from __future__ import annotations

import math

import pytest

from repro.common.config import KernelConfig, TcConfig
from repro.common.errors import ReproError
from repro.common.ops import ReadFlavor
from repro.kernel.monolithic import MonolithicEngine
from repro.kernel.unbundled import UnbundledKernel
from repro.obs import (
    Histogram,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    chrome_trace,
    latency_breakdown,
    percentile_block,
    validate_chrome_trace,
)
from repro.sim.faults import FaultAction, FaultInjector, FaultPoint, FaultRule
from repro.sim.supervisor import Supervisor


class TestHistogram:
    def test_percentiles_bounded_relative_error(self):
        hist = Histogram()
        for value in range(1, 1001):
            hist.observe(float(value))
        for q, expected in ((0.50, 500), (0.95, 950), (0.99, 990)):
            assert abs(hist.percentile(q) - expected) / expected < 0.10

    def test_zero_and_negative_values_land_in_zero_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-3.0)
        hist.observe(8.0)
        assert hist.count == 3
        assert hist.percentile(0.01) == 0.0

    def test_merge_equals_combined_observation(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 4.0, 9.0):
            a.observe(value)
        for value in (16.0, 25.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.percentile(1.0) == pytest.approx(25.0, rel=0.10)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_bucket_bounds_are_log_spaced(self):
        hist = Histogram()
        hist.observe(100.0)
        ((low, high, count),) = hist.nonempty_buckets()
        assert count == 1
        assert low <= 100.0 <= high
        assert math.log2(high / low) == pytest.approx(1 / 8, rel=1e-6)


class TestTracer:
    def test_nesting_follows_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.finished for span in spans)

    def test_exception_tags_error_and_still_finishes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.finished_spans()
        assert span.tags["error"] == "ValueError"
        assert span.finished

    def test_request_id_recovers_context_without_active_span(self):
        tracer = Tracer()
        root = tracer.start_trace("txn")
        with tracer.activate(root):
            tracer.bind_request(41)
        # no active span now: the op id alone reconnects the trace
        with tracer.span("dc.execute", request_id=41) as span:
            assert span.trace_id == root.trace_id
            assert span.tags["via_request_id"] is True
        tracer.release_request(41)
        with tracer.span("dc.execute", request_id=41) as span:
            assert span.trace_id != root.trace_id  # released = fresh root

    def test_descendant_names_is_transitive(self):
        tracer = Tracer()
        root = tracer.start_trace("txn")
        with tracer.activate(root):
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        root.finish()
        assert tracer.descendant_names(root) == {"mid", "leaf"}

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 2

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.start_trace("txn") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span is NULL_SPAN
        with NULL_TRACER.activate(NULL_SPAN):
            pass
        NULL_SPAN.finish(outcome="committed")  # no-op, no error
        assert NULL_TRACER.finished_spans() == []


class TestExport:
    def _traced_kernel(self):
        tracer = Tracer()
        kernel = UnbundledKernel(tracer=tracer)
        kernel.create_table("t")
        with kernel.begin() as txn:
            txn.insert("t", 1, "a")
        return tracer

    def test_chrome_trace_is_valid_and_complete(self):
        tracer = self._traced_kernel()
        document = chrome_trace(tracer)
        assert validate_chrome_trace(document) == []
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"txn", "tc.insert", "channel.send", "dc.execute"} <= names
        components = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "tc1" in {c for c in components if c.startswith("tc")} or components

    def test_validate_flags_malformed_documents(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        assert "empty" in validate_chrome_trace({"traceEvents": []})[0]
        bad = {"traceEvents": [{"ph": "X", "name": "s", "pid": 1, "tid": "oops"}]}
        assert any("tid" in problem for problem in validate_chrome_trace(bad))

    def test_breakdown_and_percentile_block(self):
        tracer = self._traced_kernel()
        text = latency_breakdown(tracer)
        assert "dc.execute" in text and "p99_us" in text
        block = percentile_block(tracer)
        assert block["txn"]["count"] >= 1
        assert block["txn"]["p50_us"] > 0

    def test_empty_tracer_exports_cleanly(self):
        tracer = Tracer()
        assert latency_breakdown(tracer) == "(no finished spans)"
        assert validate_chrome_trace(chrome_trace(tracer)) == [
            "traceEvents is empty"
        ]


def build_traced_kernel(injector=None):
    tracer = Tracer()
    config = KernelConfig(tc=TcConfig(group_commit_size=1))
    kernel = UnbundledKernel(config=config, faults=injector, tracer=tracer)
    kernel.create_table("t")
    return tracer, kernel


class TestTracePropagationUnderFaults:
    def test_resend_appears_as_retry_sibling_under_same_root(self):
        injector = FaultInjector()
        tracer, kernel = build_traced_kernel(injector)
        # Arm the drop only now, so table creation traffic is untouched:
        # the next channel send (this txn's insert) is lost once.
        injector.load_schedule(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.DROP, after=1)]
        )
        with kernel.begin() as txn:
            txn.insert("t", 1, "a")
        roots = [
            span
            for span in tracer.finished_spans()
            if span.name == "txn" and span.tags.get("outcome") == "committed"
        ]
        assert len(roots) == 1
        sends = [
            span
            for span in tracer.traces()[roots[0].trace_id]
            if span.name == "channel.send" and span.tags.get("kind") == "PerformOperation"
        ]
        inserts = [s for s in sends if not s.tags.get("resend")]
        retries = [s for s in sends if s.tags.get("resend")]
        assert inserts and retries, "expected a lost send plus a retry span"
        assert inserts[0].tags.get("lost") is True
        # The retry is a sibling: same parent operation, same op id.
        assert retries[0].parent_id == inserts[0].parent_id
        assert retries[0].tags["op_id"] == inserts[0].tags["op_id"]

    def test_spans_close_cleanly_across_dc_crash_and_restart(self):
        injector = FaultInjector()
        tracer, kernel = build_traced_kernel(injector)
        supervisor = Supervisor(injector, kernel.metrics)
        supervisor.watch_kernel(kernel)
        for key in range(4):
            with kernel.begin() as txn:
                txn.insert("t", key, f"v{key}")
        injector.load_schedule(
            [FaultRule(FaultPoint.CHANNEL_SEND, FaultAction.CRASH, after=1)]
        )
        txn = kernel.begin()
        with pytest.raises(ReproError):
            txn.insert("t", 99, "doomed")
            txn.commit()
        try:
            txn.abort()
        except ReproError:
            pass
        supervisor.heal()
        # Post-heal traffic works and is traced end to end.
        with kernel.begin() as verify:
            assert verify.read("t", 0) == "v0"
        spans = tracer.finished_spans()
        assert all(span.finished for span in spans)
        # The doomed transaction's root closed with a terminal outcome...
        dead_roots = [
            s for s in spans if s.name == "txn" and s.tags.get("outcome") == "aborted"
        ]
        assert dead_roots
        # ...its failing operation is error-tagged rather than dangling...
        assert any(
            s.tags.get("error") for s in tracer.traces()[dead_roots[0].trace_id]
        )
        # ...and the restart's redo stream got its own root trace.
        redo_roots = [s for s in spans if s.name == "tc.dc_restart_redo"]
        assert redo_roots
        assert all(
            kernel.tc.read_other("t", key, flavor=ReadFlavor.READ_COMMITTED)
            == f"v{key}"
            for key in range(4)
        )

    def test_mono_engine_traces_commits_for_parity(self):
        tracer = Tracer()
        engine = MonolithicEngine(tracer=tracer)
        engine.create_table("t")
        with engine.begin() as txn:
            txn.insert("t", 1, "a")
        roots = [s for s in tracer.finished_spans() if s.name == "txn"]
        assert roots and roots[0].tags["outcome"] == "committed"
        names = tracer.descendant_names(roots[0])
        assert {"mono.commit", "tc.lock_wait"} <= names
        assert engine.metrics.dist("mono.commit_latency_ms").count == 1
