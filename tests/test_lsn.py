"""AbstractLsn algebra (Section 5.1.2) — unit and property-based tests."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.lsn import LSN_ENCODED_BYTES, AbstractLsn, LsnGenerator, NULL_LSN


class TestLsnGenerator:
    def test_monotonic(self):
        gen = LsnGenerator()
        values = [gen.next() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_last_tracks_issued(self):
        gen = LsnGenerator()
        assert gen.last == NULL_LSN
        gen.next()
        gen.next()
        assert gen.last == 2

    def test_advance_to(self):
        gen = LsnGenerator()
        gen.advance_to(50)
        assert gen.next() == 51

    def test_advance_to_never_regresses(self):
        gen = LsnGenerator()
        for _ in range(10):
            gen.next()
        gen.advance_to(3)
        assert gen.next() == 11

    def test_thread_safety_uniqueness(self):
        gen = LsnGenerator()
        seen: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 4000


class TestAbstractLsnBasics:
    def test_null_contains_nothing(self):
        ablsn = AbstractLsn()
        assert not ablsn.contains(1)
        assert ablsn.contains(0)  # the null LSN precedes everything
        assert ablsn.is_null()

    def test_include_and_contains(self):
        ablsn = AbstractLsn()
        ablsn.include(7)
        assert ablsn.contains(7)
        assert not ablsn.contains(6)
        assert not ablsn.contains(8)

    def test_contains_below_low_water(self):
        ablsn = AbstractLsn(low_water=10)
        for lsn in range(11):
            assert ablsn.contains(lsn)
        assert not ablsn.contains(11)

    def test_out_of_order_includes(self):
        """The motivating case: a later op reaches the page first."""
        ablsn = AbstractLsn()
        ablsn.include(9)  # later op applied first
        assert ablsn.contains(9)
        assert not ablsn.contains(5)  # earlier op NOT claimed — the
        # traditional pageLSN test would wrongly claim it (Section 5.1.1)
        ablsn.include(5)
        assert ablsn.contains(5)

    def test_include_below_low_water_is_noop(self):
        ablsn = AbstractLsn(low_water=10)
        ablsn.include(5)
        assert ablsn.pending_count() == 0

    def test_advance_low_water_prunes(self):
        ablsn = AbstractLsn()
        for lsn in (2, 4, 6, 9):
            ablsn.include(lsn)
        ablsn.advance_low_water(6)
        assert ablsn.low_water == 6
        assert ablsn.included == frozenset({9})
        assert ablsn.contains(3)  # covered by the new low water
        assert ablsn.contains(9)

    def test_advance_low_water_never_regresses(self):
        ablsn = AbstractLsn(low_water=10)
        ablsn.advance_low_water(5)
        assert ablsn.low_water == 10

    def test_max_lsn(self):
        ablsn = AbstractLsn(low_water=3)
        assert ablsn.max_lsn() == 3
        ablsn.include(8)
        assert ablsn.max_lsn() == 8

    def test_lsns_above(self):
        ablsn = AbstractLsn(low_water=5, included=[7, 9])
        assert ablsn.lsns_above(6) == frozenset({7, 9})
        assert ablsn.lsns_above(8) == frozenset({9})
        assert ablsn.lsns_above(9) == frozenset()
        # a low water beyond the bound also signals reflected loss
        assert AbstractLsn(low_water=12).lsns_above(10) == frozenset({12})

    def test_merge_is_union(self):
        a = AbstractLsn(low_water=4, included=[6, 8])
        b = AbstractLsn(low_water=5, included=[7])
        merged = a.merge(b)
        assert merged.low_water == 5
        assert merged.included == frozenset({6, 7, 8})
        for lsn in (1, 5, 6, 7, 8):
            assert merged.contains(lsn)
        assert not merged.contains(9)

    def test_merge_prunes_below_max_low_water(self):
        a = AbstractLsn(low_water=2, included=[3])
        b = AbstractLsn(low_water=10)
        merged = a.merge(b)
        assert merged.included == frozenset()
        assert merged.contains(3)

    def test_snapshot_is_independent(self):
        ablsn = AbstractLsn(low_water=1, included=[5])
        snap = ablsn.snapshot()
        ablsn.include(9)
        assert not snap.contains(9)
        assert snap == AbstractLsn(low_water=1, included=[5])

    def test_equality_and_hash(self):
        a = AbstractLsn(low_water=3, included=[5])
        b = AbstractLsn(low_water=3, included=[5])
        assert a == b
        assert hash(a) == hash(b)
        assert a != AbstractLsn(low_water=3, included=[6])

    def test_encoded_size(self):
        assert AbstractLsn().encoded_size() == LSN_ENCODED_BYTES
        assert (
            AbstractLsn(included=[1, 2, 3]).encoded_size() == 4 * LSN_ENCODED_BYTES
        )

    def test_iter_sorted(self):
        ablsn = AbstractLsn(included=[9, 3, 7])
        assert list(ablsn) == [3, 7, 9]


@settings(max_examples=200)
@given(
    low=st.integers(min_value=0, max_value=50),
    includes=st.lists(st.integers(min_value=1, max_value=100), max_size=20),
    probe=st.integers(min_value=0, max_value=120),
)
def test_contains_matches_reference_model(low, includes, probe):
    """abLSN containment == the obvious set-of-applied-ops model."""
    ablsn = AbstractLsn(low_water=low)
    applied = set(range(low + 1))
    for lsn in includes:
        ablsn.include(lsn)
        applied.add(lsn)
    assert ablsn.contains(probe) == (probe <= low or probe in applied)


@settings(max_examples=200)
@given(
    low_a=st.integers(min_value=0, max_value=30),
    inc_a=st.sets(st.integers(min_value=1, max_value=60), max_size=10),
    low_b=st.integers(min_value=0, max_value=30),
    inc_b=st.sets(st.integers(min_value=1, max_value=60), max_size=10),
    probe=st.integers(min_value=0, max_value=70),
)
def test_merge_covers_both_inputs(low_a, inc_a, low_b, inc_b, probe):
    """Consolidation contract: anything either page reflected, the merged
    page's abLSN must also claim (Section 5.2.2)."""
    a = AbstractLsn(low_water=low_a, included=inc_a)
    b = AbstractLsn(low_water=low_b, included=inc_b)
    merged = a.merge(b)
    if a.contains(probe) or b.contains(probe):
        assert merged.contains(probe)


@settings(max_examples=200)
@given(
    includes=st.sets(st.integers(min_value=1, max_value=100), max_size=20),
    lwm_steps=st.lists(st.integers(min_value=0, max_value=100), max_size=5),
    probe=st.integers(min_value=0, max_value=100),
)
def test_low_water_advance_preserves_containment(includes, lwm_steps, probe):
    """Pruning {LSNin} with a valid LWM never un-claims an operation.

    Validity: the TC only sends an LWM when every op at or below it has
    completed, so we only probe LSNs that were included or <= some LWM.
    """
    ablsn = AbstractLsn()
    for lsn in includes:
        ablsn.include(lsn)
    was_contained = ablsn.contains(probe)
    for lwm in lwm_steps:
        ablsn.advance_low_water(lwm)
    if was_contained:
        assert ablsn.contains(probe)
