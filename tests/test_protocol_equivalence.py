"""Property: every configuration computes the same answers.

The range protocols, sync strategies, channel behaviors and engines are
implementation choices — none may change results.  Hypothesis drives the
same random workload through each configuration and compares final states
pairwise.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KernelConfig, UnbundledKernel
from repro.common.config import (
    ChannelConfig,
    DcConfig,
    PageSyncStrategy,
    RangeLockProtocol,
    TcConfig,
)
from repro.common.errors import DuplicateKeyError, NoSuchRecordError

step = st.tuples(
    st.sampled_from(["insert", "update", "delete", "scan"]),
    st.integers(min_value=0, max_value=30),
)


def run_workload(kernel, steps):
    observed = []
    for action, key in steps:
        txn = kernel.begin()
        try:
            if action == "insert":
                txn.insert("t", key, f"v{key}")
            elif action == "update":
                txn.update("t", key, f"u{key}")
            elif action == "delete":
                txn.delete("t", key)
            else:
                observed.append(tuple(txn.scan("t", key, key + 5)))
            txn.commit()
        except (DuplicateKeyError, NoSuchRecordError):
            txn.abort()
    with kernel.begin() as txn:
        final = tuple(txn.scan("t"))
    return observed, final


def kernel_with(**kwargs):
    config = KernelConfig(
        dc=DcConfig(page_size=512, **kwargs.get("dc", {})),
        tc=TcConfig(**kwargs.get("tc", {})),
        channel=ChannelConfig(**kwargs.get("channel", {})),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    if kwargs.get("boundaries"):
        kernel.tc.protocol.set_boundaries("t", kwargs["boundaries"])
    return kernel


@settings(
    max_examples=35,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=st.lists(step, max_size=40))
def test_range_protocols_agree(steps):
    fetch_ahead = kernel_with(tc={"range_protocol": RangeLockProtocol.FETCH_AHEAD})
    partitions = kernel_with(
        tc={"range_protocol": RangeLockProtocol.RANGE_PARTITION},
        boundaries=[10, 20],
    )
    results = [run_workload(kernel, steps) for kernel in (fetch_ahead, partitions)]
    assert results[0] == results[1]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=st.lists(step, max_size=30))
def test_sync_strategies_agree(steps):
    results = []
    for strategy in PageSyncStrategy:
        kernel = kernel_with(dc={"sync_strategy": strategy})
        results.append(run_workload(kernel, steps))
    assert results[0] == results[1] == results[2]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=st.lists(step, max_size=30),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_hostile_channel_agrees_with_clean(steps, seed):
    clean = kernel_with()
    hostile = kernel_with(
        channel={
            "loss_rate": 0.2,
            "duplicate_rate": 0.15,
            "seed": seed,
        }
    )
    assert run_workload(clean, steps) == run_workload(hostile, steps)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=st.lists(step, max_size=30))
def test_monolithic_agrees_with_unbundled(steps):
    from repro.common.config import DcConfig as Dc
    from repro.kernel.monolithic import MonolithicEngine

    unbundled = kernel_with()
    mono = MonolithicEngine(Dc(page_size=512))
    mono.create_table("t")
    assert run_workload(unbundled, steps) == run_workload(mono, steps)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=st.lists(step, max_size=30))
def test_heap_agrees_with_btree(steps):
    btree = kernel_with()
    heap = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=4096)))
    heap.dc.create_table("t", kind="heap", bucket_count=16)
    heap.tc.refresh_routes(heap.dc)
    assert run_workload(btree, steps) == run_workload(heap, steps)
