"""The schema layer: secondary indexes maintained in the same transaction."""

from __future__ import annotations

import pytest

from repro import UnbundledKernel
from repro.common.errors import ReproError
from repro.schema import Schema


@pytest.fixture
def users():
    kernel = UnbundledKernel()
    schema = Schema(kernel)
    table = schema.table(
        "users",
        indexes={
            "by_email": lambda key, value: value["email"],
            "by_age": lambda key, value: value["age"],
        },
        unique={"by_email"},
    )
    with kernel.begin() as txn:
        table.insert(txn, 1, {"email": "ada@x.org", "age": 36})
        table.insert(txn, 2, {"email": "grace@x.org", "age": 85})
        table.insert(txn, 3, {"email": "alan@x.org", "age": 41})
    return kernel, table


class TestLookups:
    def test_equality_lookup(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            assert table.lookup(txn, "by_email", "grace@x.org") == [2]
            assert table.lookup(txn, "by_email", "nobody@x.org") == []

    def test_range_lookup(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            pairs = table.lookup_range(txn, "by_age", 40, 90)
            assert pairs == [(41, 3), (85, 2)]

    def test_fetch_by(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            rows = table.fetch_by(txn, "by_age", 36)
            assert rows == [(1, {"email": "ada@x.org", "age": 36})]

    def test_unknown_index_rejected(self, users):
        kernel, table = users
        with pytest.raises(ReproError):
            table.index_table("nope")


class TestMaintenance:
    def test_update_moves_index_entries(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            table.update(txn, 1, {"email": "countess@x.org", "age": 36})
        with kernel.begin() as txn:
            assert table.lookup(txn, "by_email", "ada@x.org") == []
            assert table.lookup(txn, "by_email", "countess@x.org") == [1]
            table.verify_indexes(txn)

    def test_update_keeps_unchanged_entries(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            table.update(txn, 1, {"email": "ada@x.org", "age": 37})
        with kernel.begin() as txn:
            assert table.lookup(txn, "by_email", "ada@x.org") == [1]
            assert table.lookup(txn, "by_age", 37) == [1]
            table.verify_indexes(txn)

    def test_delete_removes_entries(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            table.delete(txn, 2)
        with kernel.begin() as txn:
            assert table.lookup(txn, "by_email", "grace@x.org") == []
            table.verify_indexes(txn)

    def test_non_unique_index_holds_duplicates(self, users):
        kernel, table = users
        with kernel.begin() as txn:
            table.insert(txn, 4, {"email": "twin@x.org", "age": 36})
        with kernel.begin() as txn:
            assert table.lookup(txn, "by_age", 36) == [1, 4]

    def test_unique_constraint_enforced(self, users):
        kernel, table = users
        txn = kernel.begin()
        with pytest.raises(ReproError):
            table.insert(txn, 9, {"email": "ada@x.org", "age": 1})
        txn.abort()
        with kernel.begin() as check:
            table.verify_indexes(check)


class TestAtomicity:
    def test_aborted_insert_leaves_no_index_garbage(self, users):
        kernel, table = users
        txn = kernel.begin()
        table.insert(txn, 9, {"email": "ghost@x.org", "age": 1})
        txn.abort()
        with kernel.begin() as check:
            assert table.lookup(check, "by_email", "ghost@x.org") == []
            table.verify_indexes(check)

    def test_mid_transaction_failure_rolls_back_everything(self, users):
        """The unique violation fires after the index entry for by_age was
        already written — rollback must erase it."""
        kernel, table = users
        txn = kernel.begin()
        with pytest.raises(ReproError):
            # by_age entry inserts first (dict order), then by_email's
            # uniqueness check fails
            table.insert(txn, 9, {"age": 99, "email": "ada@x.org"})
        txn.abort()
        with kernel.begin() as check:
            assert table.lookup(check, "by_age", 99) == []
            table.verify_indexes(check)

    def test_indexes_consistent_across_crashes(self, users):
        kernel, table = users
        loser = kernel.begin()
        table.update(loser, 1, {"email": "lost@x.org", "age": 1})
        kernel.crash_all()
        kernel.recover_all()
        with kernel.begin() as check:
            table.verify_indexes(check)
            assert table.lookup(check, "by_email", "ada@x.org") == [1]
            assert table.lookup(check, "by_email", "lost@x.org") == []


class TestSchemaRegistry:
    def test_duplicate_table_rejected(self):
        kernel = UnbundledKernel()
        schema = Schema(kernel)
        schema.table("t")
        with pytest.raises(ReproError):
            schema.table("t")

    def test_unique_on_unknown_index_rejected(self):
        kernel = UnbundledKernel()
        schema = Schema(kernel)
        with pytest.raises(ReproError):
            schema.table("t", indexes={}, unique={"ghost"})

    def test_table_without_indexes(self):
        kernel = UnbundledKernel()
        schema = Schema(kernel)
        table = schema.table("plain")
        with kernel.begin() as txn:
            table.insert(txn, 1, "v")
            assert table.read(txn, 1) == "v"
