"""Direct tests of the TC recovery module's pieces (repro/tc/recovery.py)."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.tc.recovery import TcRestart, resend_redo_stream
from tests.conftest import populate


def two_dc_kernel():
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)), dc_count=2)
    kernel.create_table("a", dc_name="dc1")
    kernel.create_table("b", dc_name="dc2")
    return kernel


class TestResendRedoStream:
    def test_filters_by_dc(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "on-dc1")
            txn.insert("b", 1, "on-dc2")
        before = kernel.metrics.get("dc.resends_received")
        resent = resend_redo_stream(kernel.tc, dc_names={"dc1"})
        assert resent == 1  # only the dc1-routed operation
        resent_all = resend_redo_stream(kernel.tc)
        assert resent_all == 2

    def test_respects_rssp(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "v")
        kernel.checkpoint()
        with kernel.begin() as txn:
            txn.insert("a", 2, "v")
        kernel.tc.force_log()
        assert resend_redo_stream(kernel.tc) == 1  # only the post-ckpt op

    def test_reads_never_resent(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "v")
        with kernel.begin() as txn:
            txn.read("a", 1)
            txn.scan("a")
        kernel.tc.force_log()
        assert resend_redo_stream(kernel.tc) == 1

    def test_resends_are_filtered_by_the_dc(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "v")
        kernel.tc.force_log()
        duplicates_before = kernel.metrics.get("dc.duplicate_ops")
        resend_redo_stream(kernel.tc)
        assert kernel.metrics.get("dc.duplicate_ops") == duplicates_before + 1
        with kernel.begin() as check:
            assert check.scan("a") == [(1, "v")]


class TestAnalysisPass:
    def test_analysis_classifies_transactions(self):
        kernel = two_dc_kernel()
        with kernel.begin() as committed:
            committed.insert("a", 1, "v")
        aborted = kernel.begin()
        aborted.insert("a", 2, "v")
        aborted.abort()
        loser = kernel.begin()
        loser.insert("a", 3, "v")
        kernel.tc.force_log()
        rssp, txns = TcRestart(kernel.tc)._analyze()
        infos = {info_id: info for info_id, info in txns.items() if info.ops}
        states = sorted(
            (info.committed, info.aborted, info.ended) for info in infos.values()
        )
        # committed+ended, aborted+ended, and the open loser
        assert (True, False, True) in states
        assert (False, True, True) in states
        assert (False, False, False) in states

    def test_checkpoint_record_sets_rssp(self):
        kernel = two_dc_kernel()
        populate(kernel, 5, table="a")
        kernel.checkpoint()
        rssp, _txns = TcRestart(kernel.tc)._analyze()
        assert rssp == kernel.tc.rssp


class TestDcRestartFlow:
    def test_on_dc_restart_only_touches_that_dc(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "dc1-data")
            txn.insert("b", 1, "dc2-data")
        dc1 = kernel.dcs["dc1"]
        dc1.crash()
        dc1.recover(notify_tcs=True)  # prompts the TC for dc1 only
        with kernel.begin() as check:
            assert check.read("a", 1) == "dc1-data"
            assert check.read("b", 1) == "dc2-data"

    def test_restart_prompt_skipped_while_tc_down(self):
        kernel = two_dc_kernel()
        with kernel.begin() as txn:
            txn.insert("a", 1, "v")
        kernel.crash_tc()
        dc1 = kernel.dcs["dc1"]
        dc1.crash()
        dc1.recover(notify_tcs=True)  # TC is down; prompt must not explode
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("a", 1) == "v"
