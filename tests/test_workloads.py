"""Workload generators and the Section 2 photo-sharing application."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.common.errors import NoSuchRecordError, ReproError
from repro.kernel.monolithic import MonolithicEngine
from repro.workloads.generator import (
    KeyDistribution,
    OltpMix,
    WorkloadRunner,
    uniform_keys,
    zipf_keys,
)
from repro.workloads.photo_sharing import PhotoSharingApp, extract_phrases


class TestKeyGenerators:
    def test_uniform_deterministic_and_in_range(self):
        keys = uniform_keys(1000, 50, seed=3)
        assert keys == uniform_keys(1000, 50, seed=3)
        assert all(0 <= key < 50 for key in keys)

    def test_zipf_is_skewed(self):
        keys = zipf_keys(5000, 100, skew=1.5, seed=3)
        assert all(0 <= key < 100 for key in keys)
        from collections import Counter

        counts = Counter(keys)
        top = counts.most_common(1)[0][1]
        assert top > len(keys) / 20  # a genuinely hot key exists

    def test_different_seeds_differ(self):
        assert uniform_keys(100, 1000, seed=1) != uniform_keys(100, 1000, seed=2)


class TestWorkloadRunner:
    def _runner(self, engine_begin, **kwargs):
        return WorkloadRunner(engine_begin, "bench", keyspace=100, **kwargs)

    def test_load_then_run_on_unbundled(self):
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=1024)))
        kernel.create_table("bench")
        runner = self._runner(kernel.begin)
        runner.load()
        stats = runner.run(50)
        assert stats.committed == 50
        assert stats.operations == 50 * runner.mix.ops_per_txn
        assert stats.ops_per_second > 0

    def test_same_runner_drives_monolithic(self):
        engine = MonolithicEngine(DcConfig(page_size=1024))
        engine.create_table("bench")
        runner = self._runner(engine.begin)
        runner.load()
        stats = runner.run(50)
        assert stats.committed == 50

    def test_mix_with_all_operation_kinds(self):
        kernel = UnbundledKernel()
        kernel.create_table("bench")
        runner = self._runner(
            kernel.begin,
            mix=OltpMix(updates=0.3, inserts=0.2, deletes=0.05, scans=0.1),
            distribution=KeyDistribution.ZIPF,
        )
        runner.load()
        stats = runner.run(60)
        assert stats.committed + stats.aborted == 60
        # deletes may make later ops miss; those abort cleanly
        assert stats.committed > 0

    def test_load_is_idempotent(self):
        kernel = UnbundledKernel()
        kernel.create_table("bench")
        runner = self._runner(kernel.begin)
        runner.load()
        runner.load()  # duplicates ignored
        with kernel.begin() as txn:
            assert len(txn.scan("bench")) == 100


class TestPhraseExtraction:
    def test_adjacent_pairs(self):
        assert extract_phrases("truly great shot") == ["truly great", "great shot"]

    def test_normalization(self):
        assert extract_phrases("Great, SHOT!") == ["great shot"]

    def test_short_text(self):
        assert extract_phrases("wow") == []
        assert extract_phrases("") == []


class TestPhotoSharingApp:
    @pytest.fixture
    def app(self):
        app = PhotoSharingApp()
        app.register_user("ada", {"name": "Ada"})
        app.register_user("bob", {"name": "Bob"})
        app.upload_photo("p1", "ada", {"title": "Bridge"}, ["bridge", "sf"])
        return app

    def test_referential_integrity_on_upload(self, app):
        with pytest.raises(NoSuchRecordError):
            app.upload_photo("p9", "nobody", {}, [])

    def test_referential_integrity_on_review(self, app):
        with pytest.raises(NoSuchRecordError):
            app.review_photo("missing", "ada", "nice", 4)
        with pytest.raises(NoSuchRecordError):
            app.review_photo("p1", "nobody", "nice", 4)

    def test_rating_validation(self, app):
        with pytest.raises(ReproError):
            app.review_photo("p1", "bob", "meh", 0)

    def test_tag_queries(self, app):
        app.upload_photo("p2", "bob", {"title": "Other"}, ["bridge"])
        assert app.photos_by_tag("bridge") == ["p1", "p2"]
        assert app.photos_by_tag("sf") == ["p1"]
        assert app.photos_by_tag("nothing") == []

    def test_phrase_index_round_trip(self, app):
        app.review_photo("p1", "bob", "truly great composition", 5)
        assert app.photos_matching_phrase("great composition") == ["p1"]
        assert app.photos_matching_phrase("bad phrase") == []

    def test_average_rating(self, app):
        assert app.average_rating("p1") is None
        app.review_photo("p1", "bob", "good", 4)
        app.review_photo("p1", "ada", "great", 5)
        assert app.average_rating("p1") == 4.5

    def test_delete_photo_cascades(self, app):
        app.review_photo("p1", "bob", "truly great composition", 5)
        app.delete_photo("p1")
        assert app.photos_by_tag("bridge") == []
        assert app.reviews_of("p1") == []
        assert app.photos_matching_phrase("great composition") == []

    def test_groups(self, app):
        app.join_group("landscape", "ada")
        app.join_group("landscape", "bob")
        assert app.group_members("landscape") == ["ada", "bob"]

    def test_app_survives_kernel_crash(self, app):
        app.review_photo("p1", "bob", "solid work here", 4)
        app.kernel.crash_all()
        app.kernel.recover_all()
        assert app.average_rating("p1") == 4.0
        assert app.photos_matching_phrase("solid work") == ["p1"]
