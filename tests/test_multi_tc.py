"""Multiple TCs sharing one DC (Section 6): per-TC abLSNs, record-level
reset, versioned read-committed sharing, dirty reads, no 2PC."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig
from repro.common.errors import OwnershipError
from repro.common.ops import ReadFlavor
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import TransactionalComponent


def shared_dc_setup(versioned=False, page_size=4096):
    """One DC, two updater TCs with disjoint (even/odd) key ownership."""
    metrics = Metrics()
    dc = DataComponent("dc", config=DcConfig(page_size=page_size), metrics=metrics)
    dc.create_table("t", versioned=versioned)
    tc1 = TransactionalComponent(metrics=metrics)
    tc2 = TransactionalComponent(metrics=metrics)
    for tc in (tc1, tc2):
        tc.attach_dc(dc)
    tc1.ownership_guard = lambda table, key: key % 2 == 0
    tc2.ownership_guard = lambda table, key: key % 2 == 1
    return dc, tc1, tc2, metrics


class TestDisjointUpdates:
    def test_interleaved_updates_by_two_tcs(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        for key in range(20):
            tc = tc1 if key % 2 == 0 else tc2
            with tc.begin() as txn:
                txn.insert("t", key, f"tc{1 if key % 2 == 0 else 2}-{key}")
        with tc1.begin() as txn:
            rows = txn.scan("t")
        assert len(rows) == 20

    def test_ownership_violation_rejected(self):
        _dc, tc1, _tc2, _m = shared_dc_setup()
        txn = tc1.begin()
        with pytest.raises(OwnershipError):
            txn.insert("t", 1, "odd key, not mine")
        txn.abort()

    def test_pages_carry_per_tc_ablsns(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        with tc1.begin() as txn:
            txn.insert("t", 0, "even")
        with tc2.begin() as txn:
            txn.insert("t", 1, "odd")
        leaf = dc.table("t").structure.find_leaf(0)
        assert tc1.tc_id in leaf.ablsns and tc2.tc_id in leaf.ablsns

    def test_record_owner_chains(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        with tc1.begin() as txn:
            txn.insert("t", 0, "even")
        with tc2.begin() as txn:
            txn.insert("t", 1, "odd")
        leaf = dc.table("t").structure.find_leaf(0)
        assert leaf.get(0).owner_tc == tc1.tc_id
        assert leaf.get(1).owner_tc == tc2.tc_id

    def test_rejected_operation_never_reassigns_ownership(self):
        """A failed (duplicate) insert from the wrong TC must not steal the
        record's owner chain — record-level reset depends on it."""
        dc, tc1, tc2, _m = shared_dc_setup()
        with tc1.begin() as txn:
            txn.insert("t", 0, "tc1's record")
        # drive the DC directly (the TC's own validation would reject
        # earlier): a duplicate insert under tc2's id must fail cleanly
        from repro.common.ops import InsertOp, OpStatus

        result = dc.perform_operation(
            tc2.tc_id, 10_000_000, InsertOp(table="t", key=0, value="steal")
        )
        assert result.status is OpStatus.DUPLICATE
        leaf = dc.table("t").structure.find_leaf(0)
        assert leaf.get(0).owner_tc == tc1.tc_id  # unchanged


class TestTcCrashIsolation:
    """Section 6.1.2: only the failing TC resends and recovers."""

    def test_record_reset_spares_cohabitant(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        with tc1.begin() as txn:
            txn.insert("t", 0, "tc1-committed")
        with tc2.begin() as txn:
            txn.insert("t", 1, "tc2-committed")
        tc1.checkpoint()
        # tc2 commits more work that is acked but not yet stable on disk
        with tc2.begin() as txn:
            txn.update("t", 1, "tc2-newer")
        # tc1 now loses an in-flight update
        loser = tc1.begin()
        loser.update("t", 0, "tc1-lost")
        tc2_ops_before = _m.get("tc.redo_ops")
        tc1.crash()
        tc1.restart(ResetMode.RECORD_RESET)
        # tc2's cached work survived the reset without any tc2 replay
        with tc2.begin() as txn:
            assert txn.read("t", 1) == "tc2-newer"
        with tc1.begin() as txn:
            assert txn.read("t", 0) == "tc1-committed"

    def test_crashed_tc_redo_does_not_involve_other_tc(self):
        dc, tc1, tc2, metrics = shared_dc_setup()
        with tc1.begin() as txn:
            txn.insert("t", 0, "a")
        with tc2.begin() as txn:
            txn.insert("t", 1, "b")
        tc1.crash()
        stats = tc1.restart()
        # tc1 redoes only its own single mutation
        assert stats["redo_ops"] <= 2

    def test_both_tcs_crash_independently(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        for key in range(0, 10, 2):
            with tc1.begin() as txn:
                txn.insert("t", key, "even")
        for key in range(1, 10, 2):
            with tc2.begin() as txn:
                txn.insert("t", key, "odd")
        tc1.crash()
        tc1.restart()
        tc2.crash()
        tc2.restart()
        with tc1.begin() as txn:
            assert len(txn.scan("t")) == 10


class TestVersionedSharing:
    """Section 6.2.2: read committed via versions, without blocking."""

    def test_read_committed_sees_before_version(self):
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=True)
        with tc1.begin() as txn:
            txn.insert("t", 0, "v1")
        writer = tc1.begin()
        writer.update("t", 0, "v2")
        # tc2 reads committed without blocking on tc1's X lock
        assert tc2.read_other("t", 0, ReadFlavor.READ_COMMITTED) == "v1"
        assert tc2.read_other("t", 0, ReadFlavor.DIRTY) == "v2"
        writer.commit()
        assert tc2.read_other("t", 0, ReadFlavor.READ_COMMITTED) == "v2"

    def test_abort_never_exposes_uncommitted(self):
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=True)
        with tc1.begin() as txn:
            txn.insert("t", 0, "keep")
        writer = tc1.begin()
        writer.update("t", 0, "discard")
        writer.abort()
        assert tc2.read_other("t", 0, ReadFlavor.READ_COMMITTED) == "keep"
        assert tc2.read_other("t", 0, ReadFlavor.DIRTY) == "keep"

    def test_no_blocking_reader_during_long_writer(self):
        """Readers never block (the no-2PC, non-blocking property)."""
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=True)
        with tc1.begin() as txn:
            txn.insert("t", 0, "base")
        writer = tc1.begin()
        writer.update("t", 0, "pending")
        for _ in range(5):  # many reads while the writer holds its lock
            assert tc2.read_other("t", 0) == "base"
        writer.commit()

    def test_scan_other_read_committed(self):
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=True)
        for key in range(0, 10, 2):
            with tc1.begin() as txn:
                txn.insert("t", key, f"v{key}")
        writer = tc1.begin()
        writer.update("t", 0, "pending")
        rows = tc2.scan_other("t")
        assert dict(rows)[0] == "v0"
        writer.commit()

    def test_read_own_flavor_rejected_for_read_other(self):
        _dc, _tc1, tc2, _m = shared_dc_setup(versioned=True)
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            tc2.read_other("t", 0, ReadFlavor.OWN)


class TestNonVersionedSharing:
    def test_dirty_reads_always_possible(self):
        """Section 6.2.1: dirty reads need no special DC mechanism."""
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=False)
        writer = tc1.begin()
        writer.insert("t", 0, "uncommitted")
        assert tc2.read_other("t", 0, ReadFlavor.DIRTY) == "uncommitted"
        writer.abort()
        assert tc2.read_other("t", 0, ReadFlavor.DIRTY) is None

    def test_read_only_sharing(self):
        _dc, tc1, tc2, _m = shared_dc_setup(versioned=False)
        with tc1.begin() as txn:
            txn.insert("t", 0, "static")
        # both read concurrently, no coordination
        assert tc2.read_other("t", 0, ReadFlavor.DIRTY) == "static"
        with tc1.begin() as txn:
            assert txn.read("t", 0) == "static"


class TestDcCrashWithMultipleTcs:
    def test_both_tcs_redo_after_dc_crash(self):
        dc, tc1, tc2, _m = shared_dc_setup()
        for key in range(0, 20, 2):
            with tc1.begin() as txn:
                txn.insert("t", key, "even")
        for key in range(1, 20, 2):
            with tc2.begin() as txn:
                txn.insert("t", key, "odd")
        dc.crash()
        dc.recover(notify_tcs=True)  # prompts both TCs
        with tc1.begin() as txn:
            assert len(txn.scan("t")) == 20
