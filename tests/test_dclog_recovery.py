"""DC log, system transactions, the causality gate, stable-page replay."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig
from repro.common.errors import WriteAheadViolation
from repro.common.records import VersionedRecord
from repro.dc.dclog import (
    DcLog,
    KeysRemovedRecord,
    PageFreeRecord,
    PageImageRecord,
    SysTxnCommitRecord,
)
from repro.dc.recovery import DcRecoveryManager, TableDescriptor, stable_page_state
from repro.dc.system_txn import SystemTransaction
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage


def make_env():
    metrics = Metrics()
    storage = StableStorage(metrics)
    dclog = DcLog(storage, metrics)
    return storage, dclog, metrics


def leaf_with(page_id, keys, tc_lsns=()):
    leaf = LeafPage(page_id)
    for key in keys:
        leaf.put(VersionedRecord(key=key, committed=f"v{key}", owner_tc=1))
    for lsn in tc_lsns:
        leaf.ablsn_for(1).include(lsn)
    return leaf


class TestSystemTransactionCommit:
    def test_commit_forces_batch_with_commit_record(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda needed: True)
        leaf = leaf_with(1, [1, 2])
        txn.log_page_image(leaf)
        txn.log_keys_removed(leaf, split_key=2)
        txn.commit()
        records = storage.dc_log_entries()
        assert isinstance(records[-1], SysTxnCommitRecord)
        assert any(isinstance(r, PageImageRecord) for r in records)
        assert any(isinstance(r, KeysRemovedRecord) for r in records)

    def test_dlsns_assigned_in_order_and_stamped_on_pages(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda needed: True)
        leaf = leaf_with(1, [1])
        d1 = txn.log_page_image(leaf)
        d2 = txn.log_keys_removed(leaf, split_key=1)
        assert d2 > d1
        assert leaf.dlsn == d2

    def test_abandoned_txn_leaves_no_stable_trace(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda needed: True)
        txn.log_page_image(leaf_with(1, [1]))
        # never committed
        assert storage.dc_log_length() == 0

    def test_double_commit_rejected(self):
        _s, dclog, metrics = make_env()
        txn = SystemTransaction("x", dclog, metrics, None)
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.commit()


class TestCausalityGate:
    """Leaf images embedding TC operations must be TC-stable before the
    DC log forces them (see dc/system_txn.py docstring)."""

    def test_gate_prompts_for_embedded_tc_ops(self):
        _s, dclog, metrics = make_env()
        prompts: list[dict] = []

        def provider(needed):
            prompts.append(dict(needed))
            return True

        txn = SystemTransaction("split", dclog, metrics, provider)
        txn.log_page_image(leaf_with(1, [1], tc_lsns=[7, 9]))
        txn.commit()
        assert prompts == [{1: 9}]  # the max embedded LSN per TC

    def test_gate_failure_blocks_commit(self):
        _s, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda needed: False)
        txn.log_page_image(leaf_with(1, [1], tc_lsns=[7]))
        with pytest.raises(WriteAheadViolation):
            txn.commit()

    def test_no_provider_with_tc_ops_blocks(self):
        _s, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, None)
        txn.log_page_image(leaf_with(1, [1], tc_lsns=[7]))
        with pytest.raises(WriteAheadViolation):
            txn.commit()

    def test_clean_images_need_no_gate(self):
        _s, dclog, metrics = make_env()
        txn = SystemTransaction("create", dclog, metrics, None)
        txn.log_page_image(leaf_with(1, []))  # no TC ops embedded
        txn.commit()

    def test_logical_records_bypass_gate(self):
        """The pre-split page is logged by split key only — its possibly
        TC-unstable contents never reach the stable DC log, which is why
        the paper's logical choice is load-bearing."""
        _s, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, None)
        dirty_leaf = leaf_with(1, [1, 2], tc_lsns=[99])  # unstable op
        txn.log_keys_removed(dirty_leaf, split_key=2)
        txn.commit()  # no gate needed


class TestStablePageState:
    def test_missing_page_is_none(self):
        storage, _d, _m = make_env()
        assert stable_page_state(storage, 42) is None

    def test_disk_only(self):
        storage, _d, _m = make_env()
        storage.write_page(leaf_with(1, [1, 2]).snapshot())
        state = stable_page_state(storage, 1)
        assert state is not None and len(state.records) == 2

    def test_log_image_overrides_older_disk(self):
        storage, dclog, metrics = make_env()
        old = leaf_with(1, [1])
        storage.write_page(old.snapshot())
        txn = SystemTransaction("split", dclog, metrics, lambda n: True)
        newer = leaf_with(1, [1, 2, 3])
        txn.log_page_image(newer)
        txn.commit()
        state = stable_page_state(storage, 1)
        assert len(state.records) == 3

    def test_newer_disk_wins_over_older_log_image(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda n: True)
        image_page = leaf_with(1, [1])
        txn.log_page_image(image_page)
        txn.commit()
        newer = leaf_with(1, [1, 2])
        newer.dlsn = dclog.last_dlsn + 5
        storage.write_page(newer.snapshot())
        state = stable_page_state(storage, 1)
        assert len(state.records) == 2

    def test_keys_removed_applied_to_older_state(self):
        storage, dclog, metrics = make_env()
        storage.write_page(leaf_with(1, [1, 2, 3, 4]).snapshot())
        txn = SystemTransaction("split", dclog, metrics, None)
        live = leaf_with(1, [1, 2, 3, 4])
        txn.log_keys_removed(live, split_key=3)
        txn.commit()
        state = stable_page_state(storage, 1)
        assert [r.key for r in state.records] == [1, 2]

    def test_keys_removed_skipped_on_newer_state(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, None)
        live = leaf_with(1, [1, 2, 3, 4])
        txn.log_keys_removed(live, split_key=3)
        txn.commit()
        # disk version written after the split already lacks those keys
        post = leaf_with(1, [1, 2])
        post.dlsn = live.dlsn
        storage.write_page(post.snapshot())
        state = stable_page_state(storage, 1)
        assert [r.key for r in state.records] == [1, 2]

    def test_page_free_erases(self):
        storage, dclog, metrics = make_env()
        storage.write_page(leaf_with(1, [1]).snapshot())
        txn = SystemTransaction("merge", dclog, metrics, None)
        txn.log_page_free(1)
        txn.commit()
        assert stable_page_state(storage, 1) is None

    def test_ablsns_survive_replay(self):
        """Physical images carry abLSNs so TC idempotence stays exact
        after SMO replay (Section 5.2.2)."""
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("split", dclog, metrics, lambda n: True)
        page = leaf_with(1, [1], tc_lsns=[5, 9])
        txn.log_page_image(page)
        txn.commit()
        state = stable_page_state(storage, 1)
        assert state.ablsns[1].contains(9)
        assert not state.ablsns[1].contains(6)


class TestCatalogRecovery:
    def test_catalog_record_replayed(self):
        storage, dclog, metrics = make_env()
        recovery = DcRecoveryManager(storage, metrics)
        txn = SystemTransaction("catalog", dclog, metrics, None)
        descriptor = TableDescriptor(name="t", kind="btree", root_id=7)
        txn.log_catalog(descriptor.to_metadata())
        txn.commit()
        catalog = recovery.recover_catalog()
        assert catalog["t"].root_id == 7 and catalog["t"].kind == "btree"

    def test_root_changes_update_catalog(self):
        storage, dclog, metrics = make_env()
        recovery = DcRecoveryManager(storage, metrics)
        txn = SystemTransaction("catalog", dclog, metrics, None)
        txn.log_catalog(TableDescriptor(name="t", kind="btree", root_id=7).to_metadata())
        txn.log_root_changed("t", 9)
        txn.commit()
        txn2 = SystemTransaction("grow", dclog, metrics, None)
        txn2.log_root_changed("t", 12)
        txn2.commit()
        catalog = recovery.recover_catalog()
        assert catalog["t"].root_id == 12

    def test_saved_catalog_plus_log(self):
        storage, dclog, metrics = make_env()
        recovery = DcRecoveryManager(storage, metrics)
        recovery.save_catalog(
            {"t": TableDescriptor(name="t", kind="btree", root_id=3)}
        )
        txn = SystemTransaction("grow", dclog, metrics, None)
        txn.log_root_changed("t", 4)
        txn.commit()
        catalog = recovery.recover_catalog()
        assert catalog["t"].root_id == 4

    def test_descriptor_roundtrip(self):
        descriptor = TableDescriptor(
            name="h", kind="heap", versioned=True, bucket_ids=[1, 2, 3]
        )
        clone = TableDescriptor.from_metadata(descriptor.to_metadata())
        assert clone == descriptor

    def test_truncation_respects_dlsn(self):
        storage, dclog, metrics = make_env()
        txn = SystemTransaction("a", dclog, metrics, None)
        txn.log_page_free(1)
        txn.commit()
        keep_from = dclog.last_dlsn + 1
        txn2 = SystemTransaction("b", dclog, metrics, None)
        txn2.log_page_free(2)
        txn2.commit()
        dclog.truncate_before(keep_from)
        remaining = dclog.stable_records()
        assert all(r.dlsn >= keep_from for r in remaining)
        assert any(isinstance(r, PageFreeRecord) and r.page_id == 2 for r in remaining)
