"""Buffer pool: causality-gated flushing, page-sync strategies, resets."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig, PageSyncStrategy
from repro.common.errors import WriteAheadViolation
from repro.common.records import VersionedRecord
from repro.sim.metrics import Metrics
from repro.storage.buffer import BufferPool, ResetMode
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage


def make_pool(**config_kwargs):
    metrics = Metrics()
    storage = StableStorage(metrics)
    pool = BufferPool(storage, DcConfig(**config_kwargs), metrics)
    return pool, storage, metrics


def dirty_leaf(page_id, tc_id=1, lsns=()):
    leaf = LeafPage(page_id)
    leaf.put(VersionedRecord(key=page_id, committed="v", owner_tc=tc_id))
    for lsn in lsns:
        leaf.ablsn_for(tc_id).include(lsn)
    leaf.dirty = True
    return leaf


class TestFetchAndRegister:
    def test_fetch_miss_loads_from_disk(self):
        pool, storage, metrics = make_pool()
        leaf = dirty_leaf(1)
        storage.write_page(leaf.snapshot())
        fetched = pool.fetch(1)
        assert fetched is not None and fetched.get(1) is not None
        assert metrics.get("buffer.misses") == 1
        assert pool.fetch(1) is fetched
        assert metrics.get("buffer.hits") == 1

    def test_fetch_unknown_page(self):
        pool, *_ = make_pool()
        assert pool.fetch(99) is None

    def test_register_makes_dirty(self):
        pool, *_ = make_pool()
        leaf = LeafPage(1)
        pool.register(leaf)
        assert leaf.dirty
        assert pool.cached_page(1) is leaf

    def test_custom_loader_used_on_miss(self):
        """The DC wires stable_page_state here so DC-log-only pages load."""
        metrics = Metrics()
        storage = StableStorage(metrics)
        target = dirty_leaf(5)
        pool = BufferPool(
            storage,
            DcConfig(),
            metrics,
            loader=lambda pid: target.snapshot() if pid == 5 else None,
        )
        fetched = pool.fetch(5)
        assert fetched is not None and fetched.get(5) is not None


class TestCausalityWal:
    def test_flush_blocked_until_eosl_covers_page(self):
        """Causality: no page stable while its operations could be lost."""
        pool, storage, metrics = make_pool()
        leaf = dirty_leaf(1, tc_id=1, lsns=[10])
        pool.register(leaf)
        assert not pool.try_flush(leaf)
        assert metrics.get("buffer.flush_blocked_wal") == 1
        assert not storage.has_page(1)
        pool.note_eosl(1, 9)
        assert not pool.try_flush(leaf)
        pool.note_eosl(1, 10)
        assert pool.try_flush(leaf)
        assert storage.has_page(1)
        assert not leaf.dirty

    def test_flush_checks_every_tc_on_the_page(self):
        pool, storage, _m = make_pool()
        leaf = dirty_leaf(1, tc_id=1, lsns=[5])
        leaf.ablsn_for(2).include(8)
        pool.register(leaf)
        pool.note_eosl(1, 10)
        assert not pool.try_flush(leaf)  # TC2's op not stable yet
        pool.note_eosl(2, 8)
        assert pool.try_flush(leaf)

    def test_strict_flush_raises(self):
        pool, _s, _m = make_pool()
        leaf = dirty_leaf(1, lsns=[10])
        pool.register(leaf)
        with pytest.raises(WriteAheadViolation):
            pool.flush_page_strict(leaf)

    def test_eosl_never_regresses(self):
        pool, *_ = make_pool()
        pool.note_eosl(1, 10)
        pool.note_eosl(1, 5)
        assert pool.eosl_for(1) == 10


class TestPageSyncStrategies:
    """The three alternatives of Section 5.1.2."""

    def test_full_ablsn_flushes_immediately(self):
        pool, storage, metrics = make_pool(
            sync_strategy=PageSyncStrategy.FULL_ABLSN
        )
        leaf = dirty_leaf(1, lsns=[3, 5, 7])
        pool.register(leaf)
        pool.note_eosl(1, 7)
        assert pool.try_flush(leaf)
        # the full abLSN was written with the page: space model visible
        assert metrics.dist("buffer.flushed_ablsn_bytes").maximum >= 4 * 8

    def test_delay_waits_for_low_water(self):
        pool, storage, metrics = make_pool(sync_strategy=PageSyncStrategy.DELAY)
        leaf = dirty_leaf(1, lsns=[3, 5])
        pool.register(leaf)
        pool.note_eosl(1, 5)
        assert not pool.try_flush(leaf)  # {LSNin} not empty yet
        assert metrics.get("buffer.flush_delayed_sync") == 1
        pool.note_lwm(1, 5)  # prunes the set
        assert leaf.pending_lsn_count() == 0
        assert pool.try_flush(leaf)
        # the flushed image carries a single plain LSN's worth of abLSN
        assert metrics.dist("buffer.flushed_ablsn_bytes").maximum == 8

    def test_prune_then_write_threshold(self):
        pool, _s, _m = make_pool(
            sync_strategy=PageSyncStrategy.PRUNE_THEN_WRITE, prune_threshold=2
        )
        leaf = dirty_leaf(1, lsns=[3, 5, 7])
        pool.register(leaf)
        pool.note_eosl(1, 7)
        assert not pool.try_flush(leaf)
        pool.note_lwm(1, 3)  # two pending remain
        assert pool.try_flush(leaf)

    def test_lwm_prunes_all_cached_pages(self):
        pool, *_ = make_pool()
        a, b = dirty_leaf(1, lsns=[4]), dirty_leaf(2, lsns=[5])
        pool.register(a)
        pool.register(b)
        pool.note_lwm(1, 5)
        assert a.pending_lsn_count() == 0 and b.pending_lsn_count() == 0
        assert a.ablsn_for(1).low_water == 5


class TestEviction:
    def test_lru_eviction_of_clean_pages(self):
        pool, storage, metrics = make_pool(buffer_capacity=3)
        for page_id in range(1, 6):
            leaf = dirty_leaf(page_id)
            leaf.dirty = False
            pool.register(leaf)
            leaf.dirty = False
        # register marks dirty; force-clean then trigger eviction via fetch
        for page in [pool.cached_page(i) for i in pool.cached_ids()]:
            page.dirty = False
        pool._maybe_evict()
        assert len(pool.cached_ids()) <= 3

    def test_dirty_unflushable_pages_survive_eviction(self):
        pool, _s, metrics = make_pool(buffer_capacity=2)
        for page_id in (1, 2, 3, 4):
            pool.register(dirty_leaf(page_id, lsns=[page_id * 10]))
        pool._maybe_evict()
        # nothing flushable (no EOSL) => nothing evicted, counted instead
        assert len(pool.cached_ids()) == 4
        assert metrics.get("buffer.over_capacity") >= 1

    def test_eviction_flushes_dirty_flushable_pages(self):
        pool, storage, _m = make_pool(buffer_capacity=1)
        pool.note_eosl(1, 100)
        pool.register(dirty_leaf(1, lsns=[1]))
        pool.register(dirty_leaf(2, lsns=[2]))
        pool._maybe_evict()
        assert len(pool.cached_ids()) == 1
        assert storage.has_page(1)

    def test_operation_guard_defers_eviction(self):
        pool, *_ = make_pool(buffer_capacity=1)
        pool.note_eosl(1, 100)
        with pool.operation():
            pool.register(dirty_leaf(1, lsns=[1]))
            pool.register(dirty_leaf(2, lsns=[2]))
            assert len(pool.cached_ids()) == 2  # deferred while active
        assert len(pool.cached_ids()) == 1  # ran at quiesce


class TestCheckpointFlush:
    def test_flush_for_checkpoint_all_clear(self):
        pool, storage, _m = make_pool()
        pool.note_eosl(1, 100)
        pool.register(dirty_leaf(1, lsns=[5]))
        pool.register(dirty_leaf(2, lsns=[6]))
        assert pool.flush_for_checkpoint(new_rssp=10)
        assert storage.page_count() == 2
        assert pool.dirty_count() == 0

    def test_flush_for_checkpoint_reports_blocked_old_ops(self):
        pool, *_ = make_pool()
        pool.register(dirty_leaf(1, lsns=[5]))  # EOSL never sent
        assert not pool.flush_for_checkpoint(new_rssp=10)

    def test_blocked_page_with_only_new_ops_does_not_fail_checkpoint(self):
        pool, *_ = make_pool()
        pool.register(dirty_leaf(1, lsns=[50]))  # above new_rssp
        assert pool.flush_for_checkpoint(new_rssp=10)


class TestCrashAndReset:
    def test_crash_clears_everything_volatile(self):
        pool, storage, _m = make_pool()
        pool.note_eosl(1, 10)
        pool.register(dirty_leaf(1, lsns=[5]))
        pool.try_flush(pool.cached_page(1))
        pool.crash()
        assert pool.cached_ids() == []
        assert pool.eosl_for(1) == 0
        assert storage.has_page(1)  # stable state survives

    def _pool_with_lost_state(self):
        """Page 1: only stable ops.  Page 2: a lost op (LSN 20 > LSNst 10).
        Page 3: multi-TC with TC1's lost op and TC2's data."""
        pool, storage, metrics = make_pool()
        pool.note_eosl(1, 10)
        p1 = dirty_leaf(1, tc_id=1, lsns=[5])
        pool.register(p1)
        pool.try_flush(p1)
        p2 = dirty_leaf(2, tc_id=1, lsns=[7])
        pool.register(p2)
        pool.try_flush(p2)
        p2.ablsn_for(1).include(20)
        p2.dirty = True
        p3 = dirty_leaf(3, tc_id=1, lsns=[6])
        p3.put(VersionedRecord(key=333, committed="tc2", owner_tc=2))
        p3.ablsn_for(2).include(8)
        pool.note_eosl(2, 8)
        pool.register(p3)
        pool.try_flush(p3)
        p3.ablsn_for(1).include(21)
        record = p3.get(3).clone()
        record.committed = "lost-update"
        p3.put(record)
        p3.dirty = True
        return pool, storage, metrics

    def test_full_drop(self):
        pool, *_ = self._pool_with_lost_state()
        stats = pool.reset_after_tc_crash(1, stable_lsn=10, mode=ResetMode.FULL_DROP)
        assert stats["dropped"] == 3
        assert pool.cached_ids() == []

    def test_drop_affected_only(self):
        pool, *_ = self._pool_with_lost_state()
        stats = pool.reset_after_tc_crash(
            1, stable_lsn=10, mode=ResetMode.DROP_AFFECTED
        )
        assert stats["dropped"] == 2  # pages 2 and 3
        assert pool.cached_ids() == [1]

    def test_record_reset_preserves_other_tc(self):
        """Section 6.1.2: only the failed TC's records are reset on shared
        pages; the co-resident TC keeps its cached work."""
        pool, _s, _m = self._pool_with_lost_state()
        stats = pool.reset_after_tc_crash(
            1, stable_lsn=10, mode=ResetMode.RECORD_RESET
        )
        assert stats["record_reset"] == 1  # page 3 (multi-TC)
        assert stats["dropped"] == 1  # page 2 (single-TC)
        page3 = pool.cached_page(3)
        assert page3 is not None
        assert page3.get(3).committed == "v"  # rolled back to disk state
        assert page3.get(333).committed == "tc2"  # other TC untouched
        assert not page3.ablsn_for(1).contains(21)
        assert page3.ablsn_for(2).contains(8)

    def test_unaffected_pages_untouched(self):
        pool, *_ = self._pool_with_lost_state()
        pool.reset_after_tc_crash(1, stable_lsn=10, mode=ResetMode.DROP_AFFECTED)
        assert pool.cached_page(1) is not None
