"""The RDF triple store: Section 1.1's 'RDF engine as a DC' made concrete."""

from __future__ import annotations

import pytest

from repro.workloads.rdf_store import TripleStore


@pytest.fixture
def store():
    store = TripleStore()
    store.add_all(
        [
            ("ada", "knows", "grace"),
            ("ada", "knows", "alan"),
            ("grace", "knows", "alan"),
            ("ada", "works_at", "analytical-engines"),
            ("grace", "works_at", "navy"),
            ("alan", "works_at", "bletchley"),
        ]
    )
    return store


class TestAssertions:
    def test_add_and_has(self, store):
        assert store.has("ada", "knows", "grace")
        assert not store.has("grace", "knows", "ada")

    def test_duplicate_add_returns_false(self, store):
        assert not store.add("ada", "knows", "grace")
        assert store.count() == 6

    def test_remove(self, store):
        assert store.remove("ada", "knows", "grace")
        assert not store.has("ada", "knows", "grace")
        assert store.count() == 5

    def test_remove_missing_returns_false(self, store):
        assert not store.remove("nobody", "knows", "anyone")

    def test_all_orderings_stay_in_sync(self, store):
        """The three physical tables are one logical relation."""
        store.add("x", "y", "z")
        store.remove("ada", "knows", "alan")
        with store.kernel.begin() as txn:
            counts = {
                table: len(txn.scan(f"triples_{table}"))
                for table in ("spo", "pos", "osp")
            }
        assert len(set(counts.values())) == 1

    def test_add_all_skips_duplicates(self, store):
        added = store.add_all(
            [("ada", "knows", "grace"), ("new", "knows", "ada")]
        )
        assert added == 1


class TestPatterns:
    def test_fully_bound(self, store):
        assert store.match("ada", "knows", "grace") == [("ada", "knows", "grace")]

    def test_subject_bound(self, store):
        rows = store.match("ada", None, None)
        assert len(rows) == 3
        assert all(s == "ada" for s, _p, _o in rows)

    def test_predicate_bound(self, store):
        rows = store.match(None, "works_at", None)
        assert len(rows) == 3

    def test_object_bound(self, store):
        rows = store.match(None, None, "alan")
        assert {s for s, _p, _o in rows} == {"ada", "grace"}

    def test_predicate_object_bound(self, store):
        rows = store.match(None, "knows", "alan")
        assert {s for s, _p, _o in rows} == {"ada", "grace"}

    def test_subject_object_bound_uses_osp(self, store):
        rows = store.match("ada", None, "alan")
        assert rows == [("ada", "knows", "alan")]

    def test_all_wildcards(self, store):
        assert len(store.match()) == 6

    def test_no_match(self, store):
        assert store.match("nobody", None, None) == []

    def test_ordering_choice(self, store):
        assert store._pick_ordering(("s", None, None))[0] == "spo"
        assert store._pick_ordering((None, "p", None))[0] == "pos"
        assert store._pick_ordering((None, None, "o"))[0] == "osp"
        assert store._pick_ordering((None, "p", "o"))[0] == "pos"


class TestGraphQueries:
    def test_objects_and_subjects(self, store):
        assert sorted(store.objects("ada", "knows")) == ["alan", "grace"]
        assert sorted(store.subjects("knows", "alan")) == ["ada", "grace"]

    def test_predicates_of(self, store):
        assert store.predicates_of("ada") == ["knows", "works_at"]

    def test_neighbors_multi_hop(self, store):
        one_hop = store.neighbors("ada", max_hops=1)
        assert "grace" in one_hop and "alan" in one_hop
        two_hops = store.neighbors("ada", max_hops=2)
        assert "navy" in two_hops and "bletchley" in two_hops


class TestTransactionality:
    def test_assertion_is_atomic_across_orderings(self, store):
        """A failed multi-ordering insert leaves no partial state."""
        # force a failure midway: pre-insert the POS row only, manually
        with store.kernel.begin() as txn:
            txn.insert("triples_pos", ("p", "o", "s"), True)
        assert not store.add("s", "p", "o")  # duplicate in POS -> abort
        with store.kernel.begin() as txn:
            assert txn.read("triples_spo", ("s", "p", "o")) is None
            assert txn.read("triples_osp", ("o", "s", "p")) is None

    def test_survives_full_crash(self, store):
        store.kernel.crash_all()
        store.kernel.recover_all()
        assert store.count() == 6
        assert store.has("grace", "works_at", "navy")

    def test_survives_dc_crash_mid_usage(self, store):
        store.add("new", "knows", "ada")
        store.kernel.crash_dc()
        store.kernel.recover_dc()
        assert store.has("new", "knows", "ada")
        assert store.count() == 7
