"""Introspection (stats) and simulation determinism."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig
from tests.conftest import populate


class TestStats:
    def test_dc_stats_shape(self, populated_kernel):
        stats = populated_kernel.dc.stats()
        assert stats["tables"]["t"]["records"] == 120
        assert stats["tables"]["t"]["kind"] == "btree"
        assert stats["tables"]["t"]["depth"] >= 2
        assert stats["tables"]["t"]["leaves"] >= 2
        assert stats["cached_pages"] > 0
        assert stats["dclog_records"] > 0

    def test_tc_stats_shape(self, populated_kernel):
        stats = populated_kernel.tc.stats()
        assert stats["log_records"] > 120
        assert stats["stable_records"] <= stats["log_records"]
        assert stats["eosl"] > 0
        assert stats["lwm"] > 0
        assert stats["dcs_attached"] == 1
        assert stats["active_transactions"] == 0
        assert stats["locks_held"] == 0

    def test_stats_track_activity(self, kernel):
        txn = kernel.begin()
        txn.insert("t", 1, "v")
        mid = kernel.tc.stats()
        assert mid["active_transactions"] == 1
        assert mid["locks_held"] > 0
        txn.commit()
        after = kernel.tc.stats()
        assert after["active_transactions"] == 0
        assert after["locks_held"] == 0

    def test_heap_stats(self):
        kernel = UnbundledKernel()
        kernel.dc.create_table("h", kind="heap", bucket_count=8)
        stats = kernel.dc.stats()
        assert stats["tables"]["h"]["kind"] == "heap"
        assert stats["tables"]["h"]["leaves"] == 8

    def test_stats_after_crash_recovery(self, populated_kernel):
        populated_kernel.crash_all()
        populated_kernel.recover_all()
        stats = populated_kernel.dc.stats()
        assert stats["tables"]["t"]["records"] == 120


class TestDeterminism:
    def _run(self, seed):
        config = KernelConfig(
            dc=DcConfig(page_size=512),
            channel=ChannelConfig(
                loss_rate=0.2, duplicate_rate=0.1, reorder_window=3, seed=seed
            ),
        )
        kernel = UnbundledKernel(config)
        kernel.create_table("t")
        populate(kernel, 40)
        with kernel.begin() as txn:
            rows = tuple(txn.scan("t"))
        counters = kernel.metrics.counters()
        return rows, counters

    def test_same_seed_same_everything(self):
        """The simulation is fully deterministic: identical seeds produce
        identical final state AND identical mechanism counters (resends,
        duplicates, flushes...)."""
        rows_a, counters_a = self._run(seed=77)
        rows_b, counters_b = self._run(seed=77)
        assert rows_a == rows_b
        assert counters_a == counters_b

    def test_different_seed_same_state_different_path(self):
        rows_a, counters_a = self._run(seed=1)
        rows_b, counters_b = self._run(seed=2)
        assert rows_a == rows_b  # correctness is seed-independent
        assert counters_a != counters_b  # the path taken is not
