"""API message types, metrics, and configuration surfaces."""

from __future__ import annotations

import threading

import pytest

from repro.common.api import (
    CheckpointReply,
    CheckpointRequest,
    CrashNotice,
    EndOfStableLog,
    LowWaterMark,
    OperationReply,
    PerformOperation,
    RestartBegin,
    WatermarkReply,
    WatermarkRequest,
)
from repro.common.config import (
    ChannelConfig,
    DcConfig,
    KernelConfig,
    PageSyncStrategy,
    RangeLockProtocol,
    TcConfig,
)
from repro.common.ops import InsertOp
from repro.sim.metrics import Distribution, Metrics


class TestMessages:
    def test_messages_are_frozen(self):
        message = PerformOperation(tc_id=1, op_id=5, op=InsertOp(table="t", key=1))
        with pytest.raises(AttributeError):
            message.op_id = 6  # type: ignore[misc]

    def test_defaults(self):
        assert EndOfStableLog(tc_id=1).eosl == 0
        assert LowWaterMark(tc_id=1).lwm == 0
        assert CheckpointRequest(tc_id=1).new_rssp == 0
        assert RestartBegin(tc_id=1).reset_mode == "record_reset"
        assert WatermarkReply(tc_id=1).watermark == 0
        assert CrashNotice(tc_id=0).dc_name == ""

    def test_reply_correlation_fields(self):
        reply = OperationReply(tc_id=1, op_id=7, result=None)
        assert reply.op_id == 7

    def test_equality(self):
        a = WatermarkRequest(tc_id=1)
        b = WatermarkRequest(tc_id=1)
        assert a == b


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.get("x") == 5
        assert metrics.get("missing") == 0
        assert metrics.counters() == {"x": 5}

    def test_distributions(self):
        metrics = Metrics()
        for value in (1.0, 3.0, 5.0):
            metrics.observe("lat", value)
        dist = metrics.dist("lat")
        assert dist.count == 3
        assert dist.mean == 3.0
        assert dist.minimum == 1.0 and dist.maximum == 5.0
        assert metrics.dist("missing").count == 0

    def test_distribution_empty_mean(self):
        assert Distribution().mean == 0.0

    def test_reset(self):
        metrics = Metrics()
        metrics.incr("x")
        metrics.observe("y", 1)
        metrics.reset()
        assert metrics.get("x") == 0 and metrics.dist("y").count == 0

    def test_merged_with(self):
        a, b = Metrics(), Metrics()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("y")
        merged = a.merged_with(b)
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["distributions"] == {}

    def test_merged_with_keeps_distributions(self):
        a, b = Metrics(), Metrics()
        for value in (1.0, 2.0):
            a.observe("lat", value)
        for value in (3.0, 5.0):
            b.observe("lat", value)
        b.observe("bytes", 128.0)
        merged = a.merged_with(b)
        lat = merged["distributions"]["lat"]
        assert lat["count"] == 4
        assert lat["total"] == 11.0
        assert lat["min"] == 1.0 and lat["max"] == 5.0
        assert lat["p50"] is not None and lat["p99"] is not None
        assert merged["distributions"]["bytes"]["count"] == 1
        # neither source is mutated by the merge
        assert a.dist("lat").count == 2 and b.dist("lat").count == 2

    def test_snapshot_has_percentiles(self):
        metrics = Metrics()
        for value in range(1, 101):
            metrics.observe("lat", float(value))
        row = metrics.snapshot()["distributions"]["lat"]
        # log-bucket estimates: relative error is bounded by the bucket
        # ratio (~9%), so check a band, not equality
        assert 0.85 * 50 <= row["p50"] <= 1.15 * 50
        assert 0.85 * 95 <= row["p95"] <= 1.15 * 95
        assert 0.85 * 99 <= row["p99"] <= 1.15 * 99
        assert metrics.dist("lat").percentile(0.5) == row["p50"]

    def test_thread_safety(self):
        metrics = Metrics()

        def worker():
            for _ in range(1000):
                metrics.incr("n")
                metrics.observe("d", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.get("n") == 8000
        assert metrics.dist("d").count == 8000


class TestConfig:
    def test_kernel_config_composes_defaults(self):
        config = KernelConfig()
        assert isinstance(config.dc, DcConfig)
        assert isinstance(config.tc, TcConfig)
        assert isinstance(config.channel, ChannelConfig)

    def test_default_strategy_and_protocol(self):
        assert DcConfig().sync_strategy is PageSyncStrategy.FULL_ABLSN
        assert TcConfig().range_protocol is RangeLockProtocol.FETCH_AHEAD

    def test_snapshots_disabled_by_default(self):
        assert DcConfig().snapshot_retention == 0

    def test_well_behaved_channel_by_default(self):
        config = ChannelConfig()
        assert config.loss_rate == 0.0
        assert config.reorder_window == 0
