"""Out-of-order execution (Section 5.1): why pageLSN fails, why abLSN works.

These tests reproduce the paper's motivating scenario directly: a later
operation (higher LSN) reaches a page before an earlier one, the page
becomes stable in between, and recovery must still re-execute exactly the
missing operation.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import ChannelConfig, DcConfig, KernelConfig
from repro.common.lsn import AbstractLsn
from repro.common.ops import InsertOp, RangeReadOp, ReadOp
from repro.dc.data_component import DataComponent
from repro.net.channel import MessageChannel
from repro.common.api import PerformOperation
from repro.sim.metrics import Metrics


def make_dc(page_size=512):
    dc = DataComponent("dc", config=DcConfig(page_size=page_size))
    dc.create_table("t")
    dc.register_tc(1, force_log=lambda lsn: lsn)
    return dc


class TestTraditionalTestFails:
    """Section 5.1.1: Operation LSN <= Page LSN is wrong out of order."""

    def test_page_lsn_would_mask_earlier_op(self):
        """Simulate the broken engine: a single page LSN set to the max
        applied LSN claims LSN 5 is applied when only 9 was."""
        page_lsn = 0
        applied = set()
        # op 9 executes first
        page_lsn = max(page_lsn, 9)
        applied.add(9)
        # traditional test for op 5: 5 <= page_lsn -> "already applied"
        assert 5 <= page_lsn  # the WRONG conclusion
        assert 5 not in applied  # ...while the truth is it never ran

    def test_ablsn_gives_right_answer_in_same_scenario(self):
        ablsn = AbstractLsn()
        ablsn.include(9)
        assert not ablsn.contains(5)  # redo required — correct
        assert ablsn.contains(9)


class TestEndToEndOutOfOrder:
    def test_shuffled_delivery_reaches_consistent_state(self):
        """Non-conflicting ops (distinct keys) delivered in random order,
        then the full stream replayed in LSN order (as TC redo would):
        exactly-once semantics must hold."""
        dc = make_dc()
        ops = [
            (lsn, InsertOp(table="t", key=lsn * 2, value=f"v{lsn}"))
            for lsn in range(1, 81)
        ]
        shuffled = ops[:]
        random.Random(7).shuffle(shuffled)
        for lsn, op in shuffled:
            assert dc.perform_operation(1, lsn, op).ok
        # replay everything in order — all must be filtered
        duplicates_before = dc.metrics.get("dc.duplicate_ops")
        for lsn, op in ops:
            assert dc.perform_operation(1, lsn, op).ok
        assert dc.metrics.get("dc.duplicate_ops") - duplicates_before == 80
        result = dc.perform_operation(1, 999, RangeReadOp(table="t"))
        assert len(result.records) == 80

    def test_out_of_order_then_dc_crash_then_redo(self):
        """The full Section 5.1 scenario: out-of-order apply, a flush makes
        the page stable with a 'gap' in its abLSN, the DC crashes, and redo
        re-executes exactly the gap."""
        dc = make_dc()
        # LSN 2 arrives first, LSN 1 never arrives before the flush+crash.
        dc.perform_operation(1, 2, InsertOp(table="t", key=20, value="two"))
        dc.end_of_stable_log(1, 100)  # pretend the TC log is stable
        dc.buffer.flush_all()
        dc.crash()
        dc.recover(notify_tcs=False)
        # TC redo resends both, in order.
        assert dc.perform_operation(
            1, 1, InsertOp(table="t", key=10, value="one")
        ).ok
        before = dc.metrics.get("dc.duplicate_ops")
        assert dc.perform_operation(
            1, 2, InsertOp(table="t", key=20, value="DUP")
        ).ok
        assert dc.metrics.get("dc.duplicate_ops") == before + 1  # filtered
        assert dc.perform_operation(1, 50, ReadOp(table="t", key=10)).value == "one"
        assert dc.perform_operation(1, 51, ReadOp(table="t", key=20)).value == "two"

    def test_reordering_channel_end_to_end(self):
        dc = make_dc()
        channel = MessageChannel(
            dc, ChannelConfig(reorder_window=6, seed=11), dc.metrics
        )
        for lsn in range(1, 41):
            channel.post(
                PerformOperation(
                    tc_id=1,
                    op_id=lsn,
                    op=InsertOp(table="t", key=lsn, value=f"v{lsn}"),
                    eosl=0,
                )
            )
        replies = channel.pump()
        assert len(replies) == 40
        result = dc.perform_operation(1, 999, RangeReadOp(table="t"))
        assert [view.key for view in result.records] == list(range(1, 41))


class TestLwmInteraction:
    def test_lwm_prunes_after_out_of_order_completion(self):
        dc = make_dc()
        for lsn in (3, 1, 2):  # out of order
            dc.perform_operation(1, lsn, InsertOp(table="t", key=lsn, value="v"))
        leaf = dc.table("t").structure.find_leaf(1)
        assert leaf.pending_lsn_count() == 3
        dc.low_water_mark(1, 3)
        assert leaf.pending_lsn_count() == 0
        assert leaf.ablsn_for(1).low_water == 3
        # idempotence still exact after pruning
        before = dc.metrics.get("dc.duplicate_ops")
        dc.perform_operation(1, 2, InsertOp(table="t", key=2, value="dup"))
        assert dc.metrics.get("dc.duplicate_ops") == before + 1

    def test_record_level_lsn_space_comparison(self):
        """Section 5.1.1 rejects record-level LSNs as 'very expensive in
        the space required'; quantify the claim our abLSN avoids."""
        dc = make_dc()
        for lsn in range(1, 31):
            dc.perform_operation(1, lsn, InsertOp(table="t", key=lsn, value="v"))
        dc.low_water_mark(1, 30)
        leaf_ids = dc.table("t").structure.leaf_ids()
        ablsn_bytes = sum(
            dc.table("t").structure._fetch(page_id).ablsn_overhead_bytes()
            for page_id in leaf_ids
        )
        record_level_bytes = 8 * 30  # one LSN per record
        assert ablsn_bytes < record_level_bytes
