"""The fixed-page hashed heap: the paper's "simple storage structure"."""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig
from repro.common.errors import PageOverflowError
from repro.common.records import VersionedRecord
from repro.dc.dclog import DcLog
from repro.sim.metrics import Metrics
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableStorage
from repro.storage.heap import HashedHeap


def make_heap(bucket_count=8, page_size=4096):
    metrics = Metrics()
    storage = StableStorage(metrics)
    config = DcConfig(page_size=page_size)
    dclog = DcLog(storage, metrics)
    buffer = BufferPool(storage, config, metrics)
    heap = HashedHeap(
        "h", storage, buffer, dclog, config, metrics, bucket_count=bucket_count
    )
    return heap, storage, metrics


def put(heap, key, value="v"):
    record = VersionedRecord(key=key, committed=value)
    leaf = heap.ensure_room(key, record.encoded_size())
    leaf.put(record)
    return leaf


class TestHeapBasics:
    def test_creation_logs_buckets_durably(self):
        heap, storage, _m = make_heap(bucket_count=4)
        assert len(heap.bucket_ids) == 4
        assert storage.dc_log_length() >= 5  # 4 images + commit

    def test_put_get(self):
        heap, *_ = make_heap()
        put(heap, "a", 1)
        assert heap.get_record("a").committed == 1
        assert heap.get_record("b") is None

    def test_stable_routing(self):
        heap, *_ = make_heap()
        assert heap.find_leaf("x").page_id == heap.find_leaf("x").page_id

    def test_never_splits(self):
        heap, *_ = make_heap()
        assert heap.maybe_consolidate("x") is False

    def test_overflow_is_hard_error(self):
        heap, *_ = make_heap(bucket_count=1, page_size=256)
        with pytest.raises(PageOverflowError):
            for index in range(100):
                put(heap, index, "x" * 20)

    def test_range_is_sorted_despite_hashing(self):
        heap, *_ = make_heap()
        for key in (9, 1, 5, 3, 7):
            put(heap, key)
        assert [r.key for r in heap.iter_range(None, None)] == [1, 3, 5, 7, 9]
        assert [r.key for r in heap.iter_range(3, 7)] == [3, 5, 7]
        assert len(list(heap.iter_range(None, None, limit=2))) == 2

    def test_next_keys(self):
        heap, *_ = make_heap()
        for key in (2, 4, 6):
            put(heap, key)
        assert heap.next_keys(2, 5) == [4, 6]
        assert heap.next_keys(2, 5, inclusive=True) == [2, 4, 6]
        assert heap.next_keys(None, 2) == [2, 4]
        assert heap.next_keys(2, 5, until=4) == [4]

    def test_record_count(self):
        heap, *_ = make_heap()
        for key in range(20):
            put(heap, key)
        assert heap.record_count() == 20
