"""Shared-memory rings: the co-located data plane (architecture.md §18).

Three layers, bottom up.  The ring itself is an SPSC frame queue over a
``multiprocessing.shared_memory`` segment — fill/wrap/drain arithmetic,
the parked-flag doorbell handshake, and corrupt-length rejection are pure
unit tests.  One layer up, the *same bytes* must mean the same thing on
ring and pipe: every registered wire message round-trips through a ring
unchanged, so the shm lane is a transport, not a dialect.  At the top,
``transport="shm"`` kernels run real workloads, survive real ``kill -9``
on either component, and heal by re-creating segments under the §5.2.1
pinned names — with zero segments left in ``/dev/shm`` afterwards.
"""

from __future__ import annotations

import dataclasses
import glob
import os
import signal
import time

import pytest

pytestmark = pytest.mark.process

from repro.common import api
from repro.common.config import ChannelConfig, ConfigError, KernelConfig, TcConfig
from repro.kernel.unbundled import UnbundledKernel
from repro.net import rpc, shm, wire
from repro.net.shm import ShmError, ShmLink, ShmRing, link_names, ring_capacity
from repro.sim.supervisor import Supervisor


def _segment_paths() -> list[str]:
    return glob.glob("/dev/shm/repro_*")


def kill_process(pid: int, proxy) -> None:
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while not proxy.crashed and time.monotonic() < deadline:
        time.sleep(0.01)
    assert proxy.crashed


# -- the ring itself ----------------------------------------------------------


class TestRing:
    def test_capacity_is_largest_power_of_two(self):
        assert ring_capacity(4096) == 4096
        assert ring_capacity(5000) == 4096
        assert ring_capacity(1 << 20) == 1 << 20
        with pytest.raises(ShmError):
            ring_capacity(100)

    def test_roundtrip_and_fifo(self, tmp_path):
        ring = ShmRing.create("repro_test_fifo", 4096)
        try:
            frames = [bytes([i]) * (i * 7 % 50 + 1) for i in range(20)]
            for frame in frames:
                assert ring.try_send(frame)
            assert [ring.try_recv() for _ in frames] == frames
            assert ring.try_recv() is None
        finally:
            ring.close(unlink=True)

    def test_fill_then_drain_then_wrap(self):
        """Cursors are mod-2**32 totals; the data region wraps seamlessly."""
        ring = ShmRing.create("repro_test_wrap", 4096)
        try:
            payload = b"x" * 100
            sent = drained = 0
            # Many laps around a 4 KiB ring proves the two-part copies.
            for lap in range(200):
                while ring.try_send(payload):
                    sent += 1
                while ring.try_recv() is not None:
                    drained += 1
            assert sent == drained
            assert sent > 40  # the ring filled up repeatedly
        finally:
            ring.close(unlink=True)

    def test_oversized_frame_refused_not_truncated(self):
        ring = ShmRing.create("repro_test_big", 4096)
        try:
            assert not ring.try_send(b"y" * 4096)  # never fits
            assert ring.try_recv() is None
            assert ring.max_frame == ring.capacity // 4
        finally:
            ring.close(unlink=True)

    def test_parked_flag_is_read_and_clear(self):
        ring = ShmRing.create("repro_test_park", 4096)
        try:
            assert not ring.take_parked()
            ring.park()
            assert ring.take_parked()  # producer consumed the flag...
            assert not ring.take_parked()  # ...exactly once
            ring.park()
            ring.unpark()
            assert not ring.take_parked()
        finally:
            ring.close(unlink=True)

    def test_corrupt_length_raises_not_hangs(self):
        ring = ShmRing.create("repro_test_bad", 4096)
        try:
            assert ring.try_send(b"ok")
            # Scribble an absurd frame length where the consumer will look.
            ring._buf[shm.HEADER_BYTES : shm.HEADER_BYTES + 4] = (
                b"\xff\xff\xff\xff"
            )
            with pytest.raises(ShmError):
                ring.try_recv()
        finally:
            ring.close(unlink=True)

    def test_attach_sees_creator_frames(self):
        creator = ShmRing.create("repro_test_attach", 4096)
        try:
            creator.try_send(b"hello")
            attached = ShmRing.attach("repro_test_attach")
            try:
                assert attached.try_recv() == b"hello"
            finally:
                attached.close()
        finally:
            creator.close(unlink=True)

    def test_create_replaces_stale_segment(self):
        """§5.2.1 pinning: a respawned creator reclaims its old name."""
        stale = ShmRing.create("repro_test_stale", 4096)
        stale.try_send(b"old-incarnation")
        # Simulate SIGKILL: the segment lingers, nobody unlinked it.
        fresh = ShmRing.create("repro_test_stale", 4096)
        try:
            assert fresh.try_recv() is None  # fresh header, no stale frames
        finally:
            stale.close()
            fresh.close(unlink=True)


class TestLink:
    def test_pinned_names_are_stable_and_distinct(self):
        assert link_names("tag-a") == link_names("tag-a")
        assert link_names("tag-a") != link_names("tag-b")
        c2s, s2c = link_names("tag-a")
        assert c2s != s2c

    def test_owner_unlinks_attacher_does_not(self):
        before = set(_segment_paths())
        link = ShmLink.create("repro-test-owner", 8192)
        created = set(_segment_paths()) - before
        assert len(created) == 2
        server = ShmLink.attach(link.c2s.name, link.s2c.name)
        server.close()
        assert set(_segment_paths()) - before == created  # still mapped
        link.close()
        assert set(_segment_paths()) - before == set()

    def test_unlink_by_tag_cleans_orphans(self):
        link = ShmLink.create("repro-test-orphan", 8192)
        del link  # owner "died" without close(); segments linger
        shm.unlink_by_tag("repro-test-orphan")
        names = link_names("repro-test-orphan")
        assert not any(
            os.path.exists(f"/dev/shm/{name}") for name in names
        )


# -- wire equivalence ---------------------------------------------------------


def _all_message_types():
    return [
        cls
        for cls in wire.registered_types().values()
        if isinstance(cls, type)
        and dataclasses.is_dataclass(cls)
        and issubclass(cls, api.Message)
    ]


@pytest.mark.parametrize(
    "cls", _all_message_types(), ids=lambda c: c.__name__
)
def test_whole_vocabulary_rides_the_ring(cls):
    """Every wire message survives a ring hop byte-identically: the shm
    lane carries the very frames the pipe does (fast codec included)."""
    ring = ShmRing.create(f"repro_test_{cls.__name__.lower()[:18]}", 1 << 16)
    try:
        message = cls(tc_id=3)
        frame = rpc.pack_frame(rpc.REQUEST, 17, message)
        assert ring.try_send(frame)
        kind, seq, decoded = rpc.unpack_frame(ring.try_recv())
        assert (kind, seq) == (rpc.REQUEST, 17)
        assert decoded == message
    finally:
        ring.close(unlink=True)


# -- config gate --------------------------------------------------------------


class TestShmConfig:
    def test_transport_shm_is_process_family(self):
        cfg = ChannelConfig(transport="shm")
        assert cfg.process_family
        assert not ChannelConfig(transport="inproc").process_family

    def test_shm_rejects_tcp_and_tiny_rings(self):
        with pytest.raises(ConfigError):
            ChannelConfig(transport="shm", listen_host="127.0.0.1")
        with pytest.raises(ConfigError):
            ChannelConfig(transport="shm", shm_ring_bytes=64)


# -- end to end ---------------------------------------------------------------


def shm_config(tc_processes: int = 0, **channel) -> KernelConfig:
    return KernelConfig(
        tc=TcConfig.optimized(),
        channel=ChannelConfig(
            transport="shm", request_timeout_s=15.0, **channel
        ),
        tc_processes=tc_processes,
    )


class TestShmKernel:
    def test_workload_runs_on_rings_and_cleans_up(self):
        before = set(_segment_paths())
        kernel = UnbundledKernel(config=shm_config(), dc_count=2)
        try:
            kernel.create_table("t", dc_name="dc1")
            for i in range(50):
                txn = kernel.begin()
                txn.insert("t", i, f"v{i}")
                txn.commit()
            txn = kernel.begin()
            assert txn.read("t", 42) == "v42"
            txn.commit()
            counters = kernel.metrics.snapshot()["counters"]
            assert counters.get("remote_dc.shm_attached") == 2
            assert "remote_dc.shm_attach_failures" not in counters
        finally:
            kernel.close()
        assert set(_segment_paths()) == before  # no leaked segments

    def test_dc_sigkill_heals_with_recreated_segments(self):
        """A killed DC loses its ring mappings; the §5.2.1 heal re-creates
        the *same* pinned names and traffic resumes on fresh rings."""
        kernel = UnbundledKernel(config=shm_config(), dc_count=1)
        try:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", 1, "before")
            txn.commit()
            dc = kernel.dc
            names = link_names(dc._shm_link_tag())
            kill_process(dc.pid, dc)
            dc.recover(notify_tcs=True)
            assert link_names(dc._shm_link_tag()) == names  # pinned
            txn = kernel.begin()
            assert txn.read("t", 1) == "before"
            txn.insert("t", 2, "after")
            txn.commit()
            counters = kernel.metrics.snapshot()["counters"]
            assert counters.get("remote_dc.shm_attached") == 2  # 1 + heal
        finally:
            kernel.close()

    def test_tc_sigkill_heals_both_hops(self):
        """Full topology: client→TC and TC→DC both ride rings; killing the
        TC and restarting re-establishes shm on both."""
        before = set(_segment_paths())
        kernel = UnbundledKernel(config=shm_config(tc_processes=1), dc_count=1)
        try:
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", 1, "durable")
            txn.commit()
            kill_process(kernel.tc.pid, kernel.tc)
            kernel.tc.restart()
            txn = kernel.begin()
            assert txn.read("t", 1) == "durable"
            txn.commit()
            counters = kernel.metrics.snapshot()["counters"]
            assert counters.get("remote_tc.shm_attached") == 2  # 1 + heal
        finally:
            kernel.close()
        assert set(_segment_paths()) == before

    def test_supervisor_heals_shm_kernel(self):
        """The duck-typed heal path needs no shm-specific code: ring
        re-creation lives inside the proxy's restart."""
        kernel = UnbundledKernel(config=shm_config(tc_processes=1), dc_count=1)
        try:
            supervisor = Supervisor(None, kernel.metrics)
            supervisor.watch_kernel(kernel)
            kernel.create_table("t")
            txn = kernel.begin()
            txn.insert("t", 1, "v")
            txn.commit()
            kill_process(kernel.dc.pid, kernel.dc)
            healed = supervisor.heal()
            assert healed
            txn = kernel.begin()
            assert txn.read("t", 1) == "v"
            txn.commit()
        finally:
            kernel.close()

    def test_oversized_values_fall_back_to_pipe(self):
        """Frames above max_frame take the pipe mid-stream; replies still
        correlate (the reply gate absorbs cross-lane reordering)."""
        kernel = UnbundledKernel(
            config=shm_config(shm_ring_bytes=4096), dc_count=1
        )
        try:
            kernel.create_table("t")
            # Beyond a 4 KiB ring's max_frame (1 KiB) yet within a page.
            big = "x" * 2000
            txn = kernel.begin()
            txn.insert("t", 1, big)
            txn.insert("t", 2, "small")
            txn.commit()
            txn = kernel.begin()
            assert txn.read("t", 1) == big
            assert txn.read("t", 2) == "small"
            txn.commit()
        finally:
            kernel.close()
