"""The deterministic schedule explorer end to end.

Covers the tentpole contracts:

- **determinism** — one seed is one schedule: decisions, recorded events
  and the oracle verdict are bit-identical across runs;
- **replay** — a recorded decision trace re-executes the exact
  interleaving via the ``trace`` strategy, and a saved ``(seed, trace)``
  artifact round-trips through JSON;
- **soundness** — with strict 2PL on, sweeps across all strategies (with
  and without an injected DC crash + interleaved recovery) find zero
  serialization cycles and zero recovery-ordering violations;
- **teeth (negative control)** — with read locks weakened
  (``TcConfig.unsafe_skip_read_locks``) the oracle finds a serialization
  cycle within 200 schedules, and delta-debugging shrinks the failing
  trace to a minimal replayable artifact;
- **pluggable CC** — the same sweeps run per concurrency-control policy
  (2pl / occ / mvcc) and stay clean, each policy judged under the graph
  mode its honest semantics satisfy (event-order for 2pl, MVSG for
  occ/mvcc); the occ negative control (skip commit validation) and the
  mvcc negative control (read newest bytes instead of the snapshot) are
  each caught within 200 schedules under the *same* judge that passes
  the honest policy, then minimized to replayable artifacts.
"""

from __future__ import annotations

import pytest

from repro.sim.explore import (
    ExploreConfig,
    explore,
    load_artifact,
    minimize_failure,
    replay_artifact,
    run_schedule,
    save_artifact,
)
from repro.sim.schedule import (
    DeterministicScheduler,
    PctStrategy,
    RandomWalkStrategy,
    RoundRobinStrategy,
    minimize_trace,
)


def _signature(outcome):
    """The schedule's identity: decisions + the event stream shape."""
    return (
        outcome.decisions,
        [(e["seq"], e["point"], e.get("task"), e.get("target")) for e in outcome.events],
        outcome.report.anomaly(),
    )


class TestSchedulerUnit:
    def test_tasks_interleave_one_at_a_time(self):
        log = []

        def worker(name):
            def run():
                from repro.sim import schedule

                for i in range(3):
                    log.append((name, i))
                    schedule.maybe_yield("test.point", name)

            return run

        scheduler = DeterministicScheduler(RoundRobinStrategy(budget=1))
        scheduler.spawn("a", worker("a"))
        scheduler.spawn("b", worker("b"))
        scheduler.run()
        assert sorted(log) == [(n, i) for n in "ab" for i in range(3)]
        # budget=1 round-robin: strict alternation while both live.
        assert log[0][0] != log[1][0]

    def test_same_seed_same_decisions(self):
        def build(seed):
            def worker(name):
                def run():
                    from repro.sim import schedule

                    for _ in range(4):
                        schedule.maybe_yield("test.point", name)

                return run

            scheduler = DeterministicScheduler(RandomWalkStrategy(seed))
            for name in ("a", "b", "c"):
                scheduler.spawn(name, worker(name))
            scheduler.run()
            return list(scheduler.decisions)

        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_minimize_trace_prefix_and_chunks(self):
        # "Fails" whenever decisions 3 and 7 both survive.
        def still_fails(candidate):
            return len(candidate) > 7 and candidate[3] == 3 and candidate[7] == 7

        minimal = minimize_trace(list(range(12)), still_fails)
        assert still_fails(minimal)
        assert len(minimal) <= 8


class TestDeterminism:
    @pytest.mark.parametrize("strategy", ["random", "pct", "rr"])
    def test_identical_reruns(self, strategy):
        first = run_schedule(11, ExploreConfig(), strategy=strategy)
        second = run_schedule(11, ExploreConfig(), strategy=strategy)
        assert _signature(first) == _signature(second)

    def test_crash_schedules_are_deterministic_too(self):
        config = ExploreConfig(crash=True)
        first = run_schedule(3, config, strategy="random")
        second = run_schedule(3, config, strategy="random")
        assert _signature(first) == _signature(second)
        assert any(e["point"] == "dc.crash" for e in first.events)
        assert any(e["point"] == "dc.recover.ready" for e in first.events)

    def test_trace_replay_reproduces_schedule(self):
        original = run_schedule(5, ExploreConfig(), strategy="pct")
        replay = run_schedule(
            5, ExploreConfig(), strategy="trace", trace=original.decisions
        )
        assert _signature(replay) == _signature(original)

    def test_checkpoint_schedules_are_deterministic(self):
        config = ExploreConfig(checkpoint=True)
        first = run_schedule(13, config, strategy="random")
        second = run_schedule(13, config, strategy="random")
        assert _signature(first) == _signature(second)
        # the checkpoint task actually reached its decision points
        assert any(e["point"] == "tc.checkpoint" for e in first.events)
        assert any(e["point"] == "tc.checkpoint.done" for e in first.events)

    def test_checkpoint_trace_replay(self):
        config = ExploreConfig(checkpoint=True)
        original = run_schedule(21, config, strategy="pct")
        replay = run_schedule(
            21, config, strategy="trace", trace=original.decisions
        )
        assert _signature(replay) == _signature(original)


class TestLockedSweepIsClean:
    def test_small_sweep_no_anomalies(self):
        summary = explore(
            ExploreConfig(),
            schedules=30,
            strategies=("random", "pct", "rr"),
            crash_modes=(False, True),
            base_seed=100,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        assert summary.explored == 30
        assert summary.committed > 0

    def test_checkpoint_sweep_no_anomalies(self):
        """Checkpoint/truncation decision points interleaved with live
        transactions — and with a DC crash + recovery task — must stay
        serializable with a clean recovery ordering."""
        summary = explore(
            ExploreConfig(),
            schedules=24,
            strategies=("random", "pct"),
            crash_modes=(False, True),
            checkpoint_modes=(True,),
            base_seed=400,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        assert summary.explored == 24
        assert any("+ckpt" in key for key in summary.per_variant)

    @pytest.mark.slow
    def test_acceptance_sweep_500_schedules(self):
        """The acceptance criterion: 500 schedules (random + PCT, with and
        without injected DC crashes) — zero cycles, zero recovery-ordering
        violations."""
        summary = explore(
            ExploreConfig(),
            schedules=500,
            strategies=("random", "pct"),
            crash_modes=(False, True),
            base_seed=0,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        assert summary.explored == 500


class TestNegativeControl:
    def test_weakened_read_locks_caught_and_minimized(self, tmp_path):
        config = ExploreConfig(skip_read_locks=True)
        summary = explore(
            config,
            schedules=200,
            strategies=("random", "pct"),
            crash_modes=(False,),
            base_seed=0,
            stop_on_anomaly=True,
        )
        failure = summary.first_failure
        assert failure is not None, "oracle failed to catch broken 2PL"
        assert failure.report.cycle is not None
        assert summary.explored <= 200

        artifact = minimize_failure(failure, config)
        assert len(artifact["trace"]) <= len(failure.decisions)
        assert "cycle" in artifact["anomaly"]

        # The artifact round-trips through JSON and still reproduces.
        path = save_artifact(artifact, str(tmp_path / "failure.json"))
        replayed = replay_artifact(load_artifact(path))
        assert replayed.report.cycle is not None

    def test_locked_counterpart_of_failing_seed_is_clean(self):
        """The same seed that cycles without read locks is serializable
        with them — the anomaly is the knob's fault, not the workload's."""
        weak = ExploreConfig(skip_read_locks=True)
        summary = explore(
            weak,
            schedules=200,
            strategies=("random", "pct"),
            crash_modes=(False,),
            base_seed=0,
            stop_on_anomaly=True,
        )
        failure = summary.first_failure
        assert failure is not None
        locked = run_schedule(
            failure.seed, ExploreConfig(), strategy=failure.strategy
        )
        assert locked.report.anomaly() is None


CC_POLICIES = ("2pl", "occ", "mvcc")


class TestCcPolicySweeps:
    """The pluggable-CC soundness sweeps: every policy, same workload,
    zero oracle anomalies."""

    @pytest.mark.parametrize("policy", CC_POLICIES)
    def test_determinism_per_policy(self, policy):
        config = ExploreConfig(cc_policy=policy)
        first = run_schedule(19, config, strategy="random")
        second = run_schedule(19, config, strategy="random")
        assert _signature(first) == _signature(second)

    @pytest.mark.parametrize("policy", CC_POLICIES)
    def test_small_sweep_per_policy(self, policy):
        summary = explore(
            ExploreConfig(cc_policy=policy),
            schedules=24,
            strategies=("random", "pct"),
            crash_modes=(False, True),
            base_seed=100,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        assert summary.explored == 24
        assert summary.committed > 0

    def test_cc_policies_sweep_mode(self):
        """``cc_policies=`` crosses the policy into the variant matrix and
        labels each variant, so one sweep covers all three policies."""
        summary = explore(
            ExploreConfig(),
            schedules=18,
            strategies=("random",),
            crash_modes=(False,),
            cc_policies=CC_POLICIES,
            base_seed=300,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        for policy in CC_POLICIES:
            assert summary.per_variant.get(f"random+{policy}", 0) == 6

    @pytest.mark.slow
    @pytest.mark.parametrize("policy", CC_POLICIES)
    def test_acceptance_sweep_200_per_policy(self, policy):
        """The acceptance criterion: >=200 locked schedules per policy
        (random + PCT, with and without injected DC crashes) — zero
        oracle anomalies."""
        summary = explore(
            ExploreConfig(cc_policy=policy),
            schedules=200,
            strategies=("random", "pct"),
            crash_modes=(False, True),
            base_seed=0,
            stop_on_anomaly=True,
        )
        assert summary.anomalies == 0, summary.first_failure.anomaly
        assert summary.explored == 200


class TestCcNegativeControls:
    """Each weakened policy must be caught by the *same* judge that
    passes its honest counterpart — that is what gives the clean sweeps
    teeth."""

    def _catch_and_replay(self, config, tmp_path):
        summary = explore(
            config,
            schedules=200,
            strategies=("random", "pct"),
            crash_modes=(False,),
            base_seed=0,
            stop_on_anomaly=True,
        )
        failure = summary.first_failure
        assert failure is not None, "oracle failed to catch the weakened policy"
        assert summary.explored <= 200

        artifact = minimize_failure(failure, summary.first_failure_config)
        assert len(artifact["trace"]) <= len(failure.decisions)
        assert artifact["anomaly"] is not None

        # The artifact round-trips through JSON and still reproduces.
        path = save_artifact(artifact, str(tmp_path / "failure.json"))
        replayed = replay_artifact(load_artifact(path))
        assert replayed.report.anomaly() is not None
        return failure

    def test_occ_skip_validation_caught_and_minimized(self, tmp_path):
        failure = self._catch_and_replay(
            ExploreConfig(cc_policy="occ", skip_validation=True), tmp_path
        )
        # The honest counterpart of the failing seed sweeps clean: the
        # anomaly is the missing validation's fault, not the workload's.
        honest = run_schedule(
            failure.seed, ExploreConfig(cc_policy="occ"), strategy=failure.strategy
        )
        assert honest.report.anomaly() is None

    def test_mvcc_read_newest_caught_and_minimized(self, tmp_path):
        failure = self._catch_and_replay(
            ExploreConfig(cc_policy="mvcc", mvcc_read_newest=True), tmp_path
        )
        honest = run_schedule(
            failure.seed, ExploreConfig(cc_policy="mvcc"), strategy=failure.strategy
        )
        assert honest.report.anomaly() is None

    def test_mvcc_skip_validation_write_skew_caught(self):
        """Without read-set validation mvcc is plain snapshot isolation:
        first-committer-wins no longer kills write skew, and the MVSG
        finds the r->w / r->w cycle."""
        summary = explore(
            ExploreConfig(cc_policy="mvcc", skip_validation=True),
            schedules=200,
            strategies=("random", "pct"),
            crash_modes=(False,),
            base_seed=0,
            stop_on_anomaly=True,
        )
        assert summary.first_failure is not None
