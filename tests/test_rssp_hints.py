"""DC-initiated contract termination (Section 4.2.1's spontaneous hint)."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from tests.conftest import populate


def ready_kernel(dc_count=1):
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=512)), dc_count=dc_count
    )
    if dc_count == 1:
        kernel.create_table("t")
    return kernel


def make_stable(kernel):
    kernel.tc.force_log()
    kernel.tc.broadcast_eosl()
    kernel.tc.broadcast_lwm()


class TestSpontaneousAdvance:
    def test_dc_checkpoint_hints_the_tc(self):
        kernel = ready_kernel()
        populate(kernel, 40)
        assert kernel.tc.rssp == 0
        make_stable(kernel)
        assert kernel.dc.checkpoint_dc_log()
        assert kernel.tc.rssp > 0
        assert kernel.metrics.get("tc.rssp_hint_advances") == 1

    def test_hinted_rssp_shrinks_restart_redo(self):
        kernel = ready_kernel()
        populate(kernel, 40)
        make_stable(kernel)
        kernel.dc.checkpoint_dc_log()
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] == 0
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 40

    def test_hint_never_regresses(self):
        kernel = ready_kernel()
        populate(kernel, 20)
        make_stable(kernel)
        kernel.dc.checkpoint_dc_log()
        first = kernel.tc.rssp
        kernel.dc.hint_rssp_advance()  # same state: no regression
        assert kernel.tc.rssp == first

    def test_no_hint_while_dirty_pages_remain(self):
        kernel = ready_kernel()
        populate(kernel, 20)  # never flushed
        kernel.dc.hint_rssp_advance()
        assert kernel.tc.rssp == 0  # dirty cache: contract stays live

    def test_multi_dc_requires_all_hints(self):
        """The RSSP is a global minimum: one DC's hint alone must not
        advance it."""
        kernel = ready_kernel(dc_count=2)
        kernel.create_table("a", dc_name="dc1")
        kernel.create_table("b", dc_name="dc2")
        with kernel.begin() as txn:
            txn.insert("a", 1, "v")
            txn.insert("b", 1, "v")
        make_stable(kernel)
        kernel.dcs["dc1"].checkpoint_dc_log()
        assert kernel.tc.rssp == 0  # dc2 has not hinted yet
        kernel.dcs["dc2"].checkpoint_dc_log()
        assert kernel.tc.rssp > 0

    def test_hint_plus_explicit_checkpoint_coexist(self):
        kernel = ready_kernel()
        populate(kernel, 20)
        make_stable(kernel)
        kernel.dc.checkpoint_dc_log()
        hinted = kernel.tc.rssp
        for key in range(100, 110):  # fresh work after the hint
            with kernel.begin() as txn:
                txn.insert("t", key, "v")
        assert kernel.checkpoint()
        assert kernel.tc.rssp >= hinted
