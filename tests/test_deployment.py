"""The declarative deployment builder (generalized Figure 2)."""

from __future__ import annotations

import pytest

from repro.cloud.deployment import CloudDeployment
from repro.common.errors import OwnershipError, ReproError


def build_two_region():
    deployment = CloudDeployment()
    deployment.add_dc("east", latency_ms=0.0)
    deployment.add_dc("west", latency_ms=0.0)
    deployment.add_tc("writer")
    deployment.add_tc("reader", read_only=True)
    deployment.create_table("orders", dc="east", versioned=True)
    deployment.create_table(
        "events", partitions=["east", "west"], versioned=True
    )
    deployment.grant("writer", "orders", lambda key: True)
    deployment.grant("writer", "events", lambda key: True)
    deployment.build()
    for tc in deployment.tcs.values():
        for dc in deployment.dcs.values():
            tc.refresh_routes(dc)
    return deployment


class TestBuilder:
    def test_basic_workflow(self):
        deployment = build_two_region()
        writer = deployment.tc("writer")
        with writer.begin() as txn:
            txn.insert("orders", 1, {"sku": "x"})
        with writer.begin() as txn:
            assert txn.read("orders", 1)["sku"] == "x"

    def test_read_only_tc_cannot_write(self):
        deployment = build_two_region()
        reader = deployment.tc("reader")
        txn = reader.begin()
        with pytest.raises(OwnershipError):
            txn.insert("orders", 2, {})
        txn.abort()

    def test_read_only_tc_reads_committed(self):
        deployment = build_two_region()
        writer, reader = deployment.tc("writer"), deployment.tc("reader")
        with writer.begin() as txn:
            txn.insert("orders", 1, "committed")
        open_txn = writer.begin()
        open_txn.update("orders", 1, "pending")
        assert reader.read_other("orders", 1) == "committed"
        open_txn.commit()
        assert reader.read_other("orders", 1) == "pending"

    def test_partitioned_table_routing(self):
        deployment = build_two_region()
        events = deployment.partitioned("events")
        writer = deployment.tc("writer")
        for key in range(20):
            with writer.begin() as txn:
                events.insert(txn, key, f"event-{key}")
        east = deployment.dc("east")
        west = deployment.dc("west")
        east_count = east.table("events@0").structure.record_count()
        west_count = west.table("events@1").structure.record_count()
        assert east_count + west_count == 20
        assert east_count > 0 and west_count > 0

    def test_machines_touched_helper(self):
        deployment = build_two_region()
        writer = deployment.tc("writer")

        def single_dc_write():
            with writer.begin() as txn:
                txn.insert("orders", 99, {})

        _r, machines = deployment.machines_touched(single_dc_write)
        assert machines == 1

    def test_duplicate_declarations_rejected(self):
        deployment = CloudDeployment()
        deployment.add_dc("a")
        with pytest.raises(ReproError):
            deployment.add_dc("a")
        deployment.add_tc("t")
        with pytest.raises(ReproError):
            deployment.add_tc("t")

    def test_double_build_rejected(self):
        deployment = CloudDeployment()
        deployment.add_dc("a")
        deployment.add_tc("t")
        deployment.build()
        with pytest.raises(ReproError):
            deployment.build()

    def test_crash_recover_everything(self):
        deployment = build_two_region()
        writer = deployment.tc("writer")
        events = deployment.partitioned("events")
        with writer.begin() as txn:
            txn.insert("orders", 1, "v")
            events.insert(txn, 5, "e")
        deployment.crash_everything()
        deployment.recover_everything()
        with writer.begin() as txn:
            assert txn.read("orders", 1) == "v"
            assert events.read(txn, 5) == "e"
