"""TC crash recovery: redo from RSSP, loser undo, cleanup completion."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig
from repro.storage.buffer import ResetMode
from repro.tc.log import CompensationRecord, TxnEndRecord
from tests.conftest import populate


def small_kernel(**channel_kwargs):
    config = KernelConfig(
        dc=DcConfig(page_size=512),
        channel=ChannelConfig(**channel_kwargs) if channel_kwargs else ChannelConfig(),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestVolatileTailLoss:
    def test_unlogged_txn_disappears(self):
        kernel = small_kernel()
        populate(kernel, 20)
        txn = kernel.begin()
        txn.insert("t", 500, "lost")
        txn.update("t", 3, "lost-update")
        lost = kernel.crash_tc()
        assert lost >= 2
        stats = kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", 500) is None
            assert check.read("t", 3) == "value-00003"
            assert len(check.scan("t")) == 20

    def test_committed_work_survives(self):
        kernel = small_kernel()
        populate(kernel, 30)
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert len(check.scan("t")) == 30

    def test_new_transactions_after_restart(self):
        kernel = small_kernel()
        populate(kernel, 5)
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as txn:
            txn.insert("t", 100, "fresh")
        with kernel.begin() as check:
            assert check.read("t", 100) == "fresh"

    def test_lsns_continue_above_stable_log(self):
        kernel = small_kernel()
        populate(kernel, 5)
        top = kernel.tc.log.last_lsn
        kernel.crash_tc()
        kernel.recover_tc()
        assert kernel.tc.log.last_lsn >= top


class TestStableLosers:
    def test_forced_loser_rolled_back(self):
        kernel = small_kernel()
        populate(kernel, 20)
        loser = kernel.begin()
        loser.update("t", 5, "dirty")
        loser.insert("t", 500, "dirty")
        loser.delete("t", 6)
        kernel.tc.force_log()  # loser ops now stable
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["losers"] == 1
        assert stats["undo_ops"] == 3
        with kernel.begin() as check:
            assert check.read("t", 5) == "value-00005"
            assert check.read("t", 500) is None
            assert check.read("t", 6) == "value-00006"

    def test_crash_during_rollback_resumes_from_undo_next(self):
        """A loser with some CLRs already stable is resumed, not redone
        from scratch (the undo_next chain)."""
        kernel = small_kernel()
        populate(kernel, 10)
        loser = kernel.begin()
        for key in range(5):
            loser.update("t", key, f"dirty-{key}")
        kernel.tc.force_log()
        # roll back only part of it by hand, as if the TC died mid-abort:
        # CLRs for the two newest ops, with undo_next pointing onward.
        from repro.tc.log import AbortRecord

        tc = kernel.tc
        tc.log.append(lambda lsn: AbortRecord(lsn=lsn, txn_id=loser.txn_id))
        ops_desc = list(reversed(loser.op_records))
        for index in range(2):
            record = ops_desc[index]
            undo_next = ops_desc[index + 1].lsn
            clr = tc.log.append(
                lambda lsn, r=record, nxt=undo_next: CompensationRecord(
                    lsn=lsn,
                    txn_id=loser.txn_id,
                    op=r.undo,
                    undo_next=nxt,
                    dc_name=r.dc_name,
                ),
                track_for_lwm=True,
            )
            tc._perform(record.dc_name, record.undo, clr.lsn)
            tc._complete_op(clr.lsn)
        tc.force_log()
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["losers"] == 1
        assert stats["undo_ops"] == 3  # only the remaining three
        with kernel.begin() as check:
            for key in range(5):
                assert check.read("t", key) == f"value-{key:05d}"

    def test_multiple_losers(self):
        kernel = small_kernel()
        populate(kernel, 10)
        losers = []
        for index in range(3):
            txn = kernel.begin()
            txn.update("t", index, f"dirty-{index}")
            losers.append(txn)
        kernel.tc.force_log()
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["losers"] == 3
        with kernel.begin() as check:
            for index in range(3):
                assert check.read("t", index) == f"value-{index:05d}"

    def test_restart_is_idempotent(self):
        """Crash again right after restart: same final state."""
        kernel = small_kernel()
        populate(kernel, 10)
        loser = kernel.begin()
        loser.update("t", 1, "dirty")
        kernel.tc.force_log()
        kernel.crash_tc()
        kernel.recover_tc()
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", 1) == "value-00001"
            assert len(check.scan("t")) == 10


class TestCheckpointing:
    def test_checkpoint_advances_rssp_and_shrinks_redo(self):
        kernel = small_kernel()
        populate(kernel, 30)
        assert kernel.checkpoint()
        rssp = kernel.tc.rssp
        assert rssp > 0
        with kernel.begin() as txn:
            txn.insert("t", 100, "after")
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["rssp"] == rssp
        assert stats["redo_ops"] <= 3
        with kernel.begin() as check:
            assert check.read("t", 100) == "after"

    def test_checkpoint_without_new_work_cheap_restart(self):
        kernel = small_kernel()
        populate(kernel, 10)
        kernel.checkpoint()
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] == 0

    def test_repeated_checkpoints_monotone(self):
        kernel = small_kernel()
        populate(kernel, 5)
        kernel.checkpoint()
        first = kernel.tc.rssp
        populate_more = kernel.begin()
        populate_more.insert("t", 900, "x")
        populate_more.commit()
        kernel.checkpoint()
        assert kernel.tc.rssp >= first


class TestResetModes:
    @pytest.mark.parametrize(
        "mode",
        [ResetMode.FULL_DROP, ResetMode.DROP_AFFECTED, ResetMode.RECORD_RESET],
    )
    def test_all_modes_recover_correctly(self, mode):
        kernel = small_kernel()
        populate(kernel, 40)
        loser = kernel.begin()
        loser.update("t", 7, "dirty")
        kernel.crash_tc()
        kernel.recover_tc(mode)
        with kernel.begin() as check:
            assert check.read("t", 7) == "value-00007"
            assert len(check.scan("t")) == 40


class TestRecoveryUnderLossyChannel:
    def test_restart_with_lossy_channel(self):
        kernel = small_kernel(loss_rate=0.2, seed=13)
        populate(kernel, 25)
        loser = kernel.begin()
        loser.update("t", 2, "dirty")
        kernel.tc.force_log()
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", 2) == "value-00002"
            assert len(check.scan("t")) == 25


class TestCommittedCleanupCompletion:
    def test_committed_txn_gets_end_record(self):
        kernel = small_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "v")
        # remove the TxnEnd from the volatile tail by crashing before force
        # (commit forced the log through the commit record, TxnEnd after)
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["completed"] >= 0  # completion pass ran
        ends = [
            r
            for r in kernel.tc.log.stable_records()
            if isinstance(r, TxnEndRecord)
        ]
        assert ends


class TestTxnIdReuseAcrossIncarnations:
    """Regression: a respawned TC *process* starts with a fresh txn-id
    counter, so before restart learned to bump the allocator past the
    stable log it would reuse ids from earlier incarnations.  Restart
    analysis groups records by txn id, so a reused id merged two
    unrelated transactions — observed in the process-mode chaos sweep as
    an acknowledged committed update regressing to its before-image
    (the merged "transaction" was undone past the commit).  Model the
    respawn by resetting the in-memory counter, which is exactly the
    state a fresh process starts from.
    """

    @staticmethod
    def _respawn(kernel):
        import itertools

        kernel.crash_tc()
        kernel.tc._txn_ids = itertools.count(1)  # what a fresh process has
        return kernel.recover_tc()

    def test_restart_bumps_allocator_past_stable_log(self):
        kernel = small_kernel()
        populate(kernel, 3)
        logged = max(r.txn_id for r in kernel.tc.log.stable_records())
        self._respawn(kernel)
        txn = kernel.begin()
        try:
            assert txn.txn_id > logged
        finally:
            txn.abort()

    def test_loser_with_reused_id_is_undone(self):
        """Two reincarnation cycles.  Without the allocator bump the
        second incarnation's in-flight loser reuses the id of a finished
        first-incarnation transaction; analysis then sees an ended
        transaction and skips the undo, leaking the uncommitted update.
        """
        kernel = small_kernel()
        with kernel.begin() as txn:
            txn.insert("t", 1, "one")
        with kernel.begin() as txn:
            txn.insert("t", 2, "two")
        self._respawn(kernel)
        with kernel.begin() as txn:  # committed work of incarnation 2
            txn.update("t", 1, "one.v2")
        loser = kernel.begin()  # in flight at the next crash
        loser.update("t", 2, "uncommitted")
        kernel.tc.force_log()  # its op record must survive the crash
        self._respawn(kernel)
        with kernel.begin() as check:
            assert check.read("t", 1) == "one.v2"
            assert check.read("t", 2) == "two"
