"""Stable storage: atomic page writes, crash separation, metadata, DC log."""

from __future__ import annotations

from repro.common.records import VersionedRecord
from repro.dc.dclog import PageFreeRecord
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage


def image(page_id, n=1):
    leaf = LeafPage(page_id)
    for key in range(n):
        leaf.put(VersionedRecord(key=key, committed=f"v{key}"))
    return leaf.snapshot()


class TestPages:
    def test_write_read_roundtrip(self):
        storage = StableStorage()
        storage.write_page(image(1, 3))
        loaded = storage.read_page(1)
        assert loaded is not None and len(loaded.records) == 3

    def test_read_missing(self):
        assert StableStorage().read_page(9) is None

    def test_overwrite_is_atomic_replacement(self):
        storage = StableStorage()
        storage.write_page(image(1, 1))
        storage.write_page(image(1, 5))
        assert len(storage.read_page(1).records) == 5

    def test_free_page(self):
        storage = StableStorage()
        storage.write_page(image(1))
        storage.free_page(1)
        assert storage.read_page(1) is None
        storage.free_page(1)  # idempotent

    def test_page_ids_and_counts(self):
        storage = StableStorage()
        for page_id in (3, 1, 2):
            storage.write_page(image(page_id))
        assert sorted(storage.page_ids()) == [1, 2, 3]
        assert storage.page_count() == 3
        assert storage.total_bytes() > 0
        assert storage.has_page(2)


class TestAllocation:
    def test_monotonic_ids(self):
        storage = StableStorage()
        ids = [storage.allocate_page_id() for _ in range(10)]
        assert ids == sorted(ids) and len(set(ids)) == 10

    def test_note_allocated_advances(self):
        storage = StableStorage()
        storage.note_allocated(50)
        assert storage.allocate_page_id() == 51

    def test_note_allocated_never_regresses(self):
        storage = StableStorage()
        for _ in range(5):
            storage.allocate_page_id()
        storage.note_allocated(2)
        assert storage.allocate_page_id() == 6


class TestMetadataAndLog:
    def test_metadata_roundtrip(self):
        storage = StableStorage()
        storage.write_metadata("k", {"a": 1})
        assert storage.read_metadata("k") == {"a": 1}
        assert storage.read_metadata("missing", "default") == "default"

    def test_dc_log_append_and_truncate(self):
        storage = StableStorage()
        storage.append_dc_log([PageFreeRecord(dlsn=1, page_id=1)])
        storage.append_dc_log([PageFreeRecord(dlsn=2, page_id=2)])
        assert storage.dc_log_length() == 2
        storage.truncate_dc_log(keep_from_dlsn=2)
        remaining = storage.dc_log_entries()
        assert len(remaining) == 1 and remaining[0].dlsn == 2

    def test_metrics_counters(self):
        metrics = Metrics()
        storage = StableStorage(metrics)
        storage.write_page(image(1))
        storage.read_page(1)
        assert metrics.get("disk.page_writes") == 1
        assert metrics.get("disk.page_reads") == 1
