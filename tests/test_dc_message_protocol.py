"""The DC's message-level protocol surface (Section 4.2.1), driven raw."""

from __future__ import annotations

import pytest

from repro.common.api import (
    CheckpointReply,
    CheckpointRequest,
    ControlAck,
    EndOfStableLog,
    LowWaterMark,
    Message,
    OperationReply,
    PerformOperation,
    RestartBegin,
    WatermarkReply,
    WatermarkRequest,
)
from repro.common.config import DcConfig
from repro.common.errors import CrashedError, ReproError
from repro.common.lsn import NULL_LSN
from repro.common.ops import InsertOp, ReadOp
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics


@pytest.fixture
def dc():
    component = DataComponent("dc", config=DcConfig(page_size=512))
    component.create_table("t")
    component.register_tc(1, force_log=lambda lsn: lsn)
    return component


class TestDispatch:
    def test_perform_operation_roundtrip(self, dc):
        reply = dc.handle(
            PerformOperation(
                tc_id=1, op_id=1, op=InsertOp(table="t", key=1, value="v")
            )
        )
        assert isinstance(reply, OperationReply)
        assert reply.op_id == 1 and reply.result.ok

    def test_piggybacked_eosl_recorded(self, dc):
        dc.handle(
            PerformOperation(
                tc_id=1, op_id=1, op=InsertOp(table="t", key=1, value="v"), eosl=42
            )
        )
        assert dc.buffer.eosl_for(1) == 42

    def test_control_message_replies(self, dc):
        # Contract-state control messages are acked, so a lossy channel can
        # resend them until delivery; LWM is an advisory hint and is not.
        assert isinstance(dc.handle(EndOfStableLog(tc_id=1, eosl=5)), ControlAck)
        assert dc.handle(LowWaterMark(tc_id=1, lwm=3)) is None
        assert isinstance(dc.handle(RestartBegin(tc_id=1, stable_lsn=0)), ControlAck)

    def test_checkpoint_request_reply(self, dc):
        dc.handle(
            PerformOperation(
                tc_id=1, op_id=1, op=InsertOp(table="t", key=1, value="v"), eosl=100
            )
        )
        dc.handle(LowWaterMark(tc_id=1, lwm=1))
        reply = dc.handle(CheckpointRequest(tc_id=1, new_rssp=2))
        assert isinstance(reply, CheckpointReply)
        assert reply.granted_rssp == 2

    def test_checkpoint_blocked_without_eosl(self, dc):
        dc.handle(
            PerformOperation(
                tc_id=1, op_id=1, op=InsertOp(table="t", key=1, value="v"), eosl=0
            )
        )
        reply = dc.handle(CheckpointRequest(tc_id=1, new_rssp=2))
        assert reply.granted_rssp == NULL_LSN  # WAL refuses the flush

    def test_watermark_request(self, dc):
        reply = dc.handle(WatermarkRequest(tc_id=1))
        assert isinstance(reply, WatermarkReply)
        assert reply.watermark == 0 and reply.floor == 0

    def test_unknown_message_type_raises(self, dc):
        class Bogus(Message):
            pass

        with pytest.raises(ReproError):
            dc.handle(Bogus(tc_id=1))

    def test_crashed_dc_rejects_all_messages(self, dc):
        dc.crash()
        with pytest.raises(CrashedError):
            dc.handle(EndOfStableLog(tc_id=1, eosl=1))


class TestRestartBeginModes:
    @pytest.mark.parametrize("mode", ["full_drop", "drop_affected", "record_reset"])
    def test_reset_mode_strings_accepted(self, dc, mode):
        dc.handle(
            PerformOperation(
                tc_id=1, op_id=1, op=InsertOp(table="t", key=1, value="v"), eosl=0
            )
        )
        dc.handle(RestartBegin(tc_id=1, stable_lsn=0, reset_mode=mode))
        if mode == "full_drop":
            assert dc.buffer.cached_ids() == []

    def test_invalid_reset_mode_rejected(self, dc):
        with pytest.raises(ValueError):
            dc.handle(RestartBegin(tc_id=1, stable_lsn=0, reset_mode="nonsense"))


class TestIdempotenceAtMessageLevel:
    def test_duplicate_message_same_reply_shape(self, dc):
        message = PerformOperation(
            tc_id=1, op_id=7, op=InsertOp(table="t", key=1, value="v")
        )
        first = dc.handle(message)
        second = dc.handle(message)
        assert first.result.ok and second.result.ok
        read = dc.handle(
            PerformOperation(tc_id=1, op_id=9, op=ReadOp(table="t", key=1))
        )
        assert read.result.value == "v"

    def test_reads_have_no_side_effects(self, dc):
        for op_id in range(10, 20):
            dc.handle(
                PerformOperation(tc_id=1, op_id=op_id, op=ReadOp(table="t", key=1))
            )
        leaf = dc.table("t").structure.find_leaf(1)
        assert leaf.ablsn_for(1).pending_count() == 0
