"""Additional hypothesis suites on core invariants."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.lsn import NULL_LSN
from repro.sim.metrics import Metrics
from repro.tc.lock_manager import _COMPATIBLE, LockManager, LockMode, combined_mode
from repro.tc.log import LwmTracker


@settings(max_examples=200)
@given(
    ids=st.lists(
        st.integers(min_value=1, max_value=100), unique=True, min_size=1, max_size=30
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_lwm_tracker_random_completion_orders(ids, seed):
    """Whatever the completion order, the LWM is always the largest id
    below which nothing is outstanding — and ends at the max."""
    ids = sorted(ids)
    tracker = LwmTracker()
    for op_id in ids:
        tracker.register(op_id)
    completion = list(ids)
    random.Random(seed).shuffle(completion)
    completed: set[int] = set()
    for op_id in completion:
        tracker.complete(op_id)
        completed.add(op_id)
        lwm = tracker.lwm
        # everything at or below the mark is completed
        assert all(other in completed for other in ids if other <= lwm)
        # the next registered id above the mark (if any) is incomplete,
        # or the mark is already at the global max
        pending = [other for other in ids if other not in completed]
        if pending:
            assert lwm < min(pending)
    assert tracker.lwm == max(ids)


@settings(max_examples=100, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # txn
            st.sampled_from(list(LockMode)),
            st.integers(min_value=0, max_value=3),  # resource
            st.booleans(),  # acquire or release-all
        ),
        max_size=40,
    )
)
def test_lock_table_never_holds_incompatible_pairs(steps):
    """Invariant: after any sequence of grants/releases, no two distinct
    holders of one resource hold incompatible modes."""
    manager = LockManager(Metrics(), deadlock_detection=True, timeout=0.01)
    for txn, mode, resource, is_acquire in steps:
        try:
            if is_acquire:
                manager.acquire(txn, resource, mode, timeout=0.01)
            else:
                manager.release_all(txn)
        except Exception:
            manager.release_all(txn)  # victims release their locks
        for entry_resource in range(4):
            stripe = manager._stripe_of(entry_resource)
            entry = stripe.table.get(entry_resource)
            if entry is None:
                continue
            holders = list(entry.holders.items())
            for i, (txn_a, mode_a) in enumerate(holders):
                for txn_b, mode_b in holders[i + 1 :]:
                    assert _COMPATIBLE[(mode_a, mode_b)], (
                        entry_resource,
                        holders,
                    )


@settings(max_examples=200)
@given(a=st.sampled_from(list(LockMode)), b=st.sampled_from(list(LockMode)))
def test_combined_mode_is_commutative_and_covering(a, b):
    ab = combined_mode(a, b)
    ba = combined_mode(b, a)
    assert ab is ba
    # the combination is at least as strong as both inputs
    assert combined_mode(ab, a) is ab
    assert combined_mode(ab, b) is ab


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    deltas=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=1, max_size=20
    ),
    crash_at=st.integers(min_value=0, max_value=20),
)
def test_increment_counter_matches_sum_across_crashes(deltas, crash_at):
    """Counter invariant: committed increments sum exactly, across a
    crash-recovery anywhere in the sequence (non-idempotent op, so any
    double- or missed-apply shows up immediately)."""
    from repro import KernelConfig, UnbundledKernel
    from repro.common.config import DcConfig

    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
    kernel.create_table("t")
    with kernel.begin() as txn:
        txn.insert("t", "c", 0)
    applied = 0
    for index, delta in enumerate(deltas):
        if index == crash_at:
            kernel.crash_all()
            kernel.recover_all()
        with kernel.begin() as txn:
            txn.increment("t", "c", delta)
        applied += delta
    with kernel.begin() as txn:
        assert txn.read("t", "c") == applied


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100), max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_heap_matches_dict_under_random_ops(keys, seed):
    from repro.common.config import DcConfig
    from repro.common.records import VersionedRecord
    from repro.dc.dclog import DcLog
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import StableStorage
    from repro.storage.heap import HashedHeap

    metrics = Metrics()
    storage = StableStorage(metrics)
    heap = HashedHeap(
        "h",
        storage,
        BufferPool(storage, DcConfig(), metrics),
        DcLog(storage, metrics),
        DcConfig(),
        metrics,
        bucket_count=4,
    )
    rng = random.Random(seed)
    model: dict[int, str] = {}
    for key in keys:
        if rng.random() < 0.7:
            record = VersionedRecord(key=key, committed=f"v{key}")
            heap.ensure_room(key, record.encoded_size())
            heap.find_leaf(key).put(record)
            model[key] = f"v{key}"
        else:
            heap.find_leaf(key).remove(key)
            model.pop(key, None)
    got = {record.key: record.committed for record in heap.iter_range(None, None)}
    assert got == model
    assert heap.record_count() == len(model)