"""Logical operations: inverses, mutability flags, result helpers."""

from __future__ import annotations

from repro.common.ops import (
    DeleteOp,
    DiscardVersionsOp,
    InsertOp,
    OpResult,
    OpStatus,
    ProbeNextKeysOp,
    PromoteVersionsOp,
    RangeReadOp,
    ReadFlavor,
    ReadOp,
    UpdateOp,
    inverse_of,
)


class TestMutatesFlags:
    def test_mutating_ops(self):
        assert InsertOp(table="t", key=1, value="v").MUTATES
        assert UpdateOp(table="t", key=1, value="v").MUTATES
        assert DeleteOp(table="t", key=1).MUTATES
        assert PromoteVersionsOp(table="t", keys=(1,)).MUTATES
        assert DiscardVersionsOp(table="t", keys=(1,)).MUTATES

    def test_read_ops_do_not_mutate(self):
        assert not ReadOp(table="t", key=1).MUTATES
        assert not RangeReadOp(table="t").MUTATES
        assert not ProbeNextKeysOp(table="t").MUTATES


class TestInverses:
    """Rollback submits inverses in reverse order (Section 4.1.1, 2b)."""

    def test_insert_inverts_to_delete(self):
        op = InsertOp(table="t", key=1, value="v")
        inverse = inverse_of(op, OpResult.okay())
        assert isinstance(inverse, DeleteOp)
        assert inverse.key == 1 and inverse.table == "t"

    def test_delete_inverts_to_insert_of_prior(self):
        op = DeleteOp(table="t", key=1)
        inverse = inverse_of(op, OpResult.okay(prior="old"))
        assert isinstance(inverse, InsertOp)
        assert inverse.value == "old"

    def test_update_inverts_to_update_of_prior(self):
        op = UpdateOp(table="t", key=1, value="new")
        inverse = inverse_of(op, OpResult.okay(prior="old"))
        assert isinstance(inverse, UpdateOp)
        assert inverse.value == "old"

    def test_versioned_ops_have_no_pointwise_inverse(self):
        """Versioned rollback is a wholesale DiscardVersions instead."""
        for op in (
            InsertOp(table="t", key=1, value="v", versioned=True),
            UpdateOp(table="t", key=1, value="v", versioned=True),
            DeleteOp(table="t", key=1, versioned=True),
        ):
            assert inverse_of(op, OpResult.okay(prior="x")) is None

    def test_reads_have_no_inverse(self):
        assert inverse_of(ReadOp(table="t", key=1), OpResult.okay()) is None

    def test_double_inverse_roundtrip(self):
        op = UpdateOp(table="t", key=1, value="new")
        inv = inverse_of(op, OpResult.okay(prior="old"))
        back = inverse_of(inv, OpResult.okay(prior="new"))
        assert isinstance(back, UpdateOp) and back.value == "new"


class TestOpResult:
    def test_okay(self):
        result = OpResult.okay(value="v", prior="p")
        assert result.ok and result.value == "v" and result.prior == "p"

    def test_statuses(self):
        assert OpResult.not_found().status is OpStatus.NOT_FOUND
        assert OpResult.duplicate().status is OpStatus.DUPLICATE
        assert OpResult.error("boom").message == "boom"
        assert not OpResult.error("boom").ok


class TestEncodedSizes:
    def test_insert_size_includes_payload(self):
        small = InsertOp(table="t", key=1, value="a")
        large = InsertOp(table="t", key=1, value="a" * 100)
        assert large.encoded_size() - small.encoded_size() == 99

    def test_cleanup_size_scales_with_keys(self):
        one = PromoteVersionsOp(table="t", keys=(1,))
        many = PromoteVersionsOp(table="t", keys=tuple(range(10)))
        assert many.encoded_size() > one.encoded_size()

    def test_all_ops_have_positive_size(self):
        ops = [
            InsertOp(table="t", key=1, value="v"),
            UpdateOp(table="t", key=1, value="v"),
            DeleteOp(table="t", key=1),
            ReadOp(table="t", key=1),
            RangeReadOp(table="t", low=1, high=2),
            ProbeNextKeysOp(table="t", after=1),
            PromoteVersionsOp(table="t", keys=(1,)),
            DiscardVersionsOp(table="t", keys=(1,)),
        ]
        for op in ops:
            assert op.encoded_size() > 0


class TestReadFlavors:
    def test_default_flavor_is_own(self):
        assert ReadOp(table="t", key=1).flavor is ReadFlavor.OWN

    def test_frozen(self):
        op = ReadOp(table="t", key=1)
        try:
            op.key = 2  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
