"""The Figure 2 cloud scenario and the partitioning/ownership layer."""

from __future__ import annotations

import pytest

from repro.cloud.movie_site import MovieSite
from repro.cloud.partitioning import (
    HashPartitionMap,
    OwnershipRegistry,
    PartitionedTable,
)
from repro.common.errors import OwnershipError


@pytest.fixture
def site():
    site = MovieSite()
    for mid in ("m1", "m2", "m3"):
        site.add_movie(mid, {"title": mid.upper()})
    for uid in ("u1", "u2", "u3", "u4"):
        site.register_user(uid, {"name": uid})
    site.post_review("u1", "m1", "loved it")
    site.post_review("u2", "m1", "hated it")
    site.post_review("u1", "m2", "fine")
    return site


class TestPartitioningPrimitives:
    def test_hash_partition_stability(self):
        pmap = HashPartitionMap(4)
        assert pmap.partition_of("k") == pmap.partition_of("k")
        assert 0 <= pmap.partition_of("k") < 4

    def test_extract_routes_composite_keys_together(self):
        pmap = HashPartitionMap(4, extract=lambda key: key[0])
        assert pmap.partition_of(("m1", "u1")) == pmap.partition_of(("m1", "u9"))

    def test_partitioned_table_names(self):
        table = PartitionedTable("reviews", HashPartitionMap(2))
        assert sorted(table.all_physical_names()) == ["reviews@0", "reviews@1"]
        assert table.physical_name("k") in table.all_physical_names()

    def test_single_partition_requires_count(self):
        with pytest.raises(ValueError):
            HashPartitionMap(0)

    def test_ownership_registry_disjointness_check(self):
        registry = OwnershipRegistry()

        class FakeTc:
            def __init__(self, tc_id):
                self.tc_id = tc_id
                self.ownership_guard = None

        a, b = FakeTc(1), FakeTc(2)
        registry.grant(a, "users", lambda uid: uid % 2 == 0)
        registry.grant(b, "users", lambda uid: uid % 2 == 1)
        registry.assert_disjoint("users", [a, b], list(range(10)))
        registry.grant(b, "users", lambda uid: True)  # now overlapping
        with pytest.raises(ValueError):
            registry.assert_disjoint("users", [a, b], list(range(10)))

    def test_logical_of_physical_name(self):
        assert OwnershipRegistry.logical_of("reviews@1") == "reviews"
        assert OwnershipRegistry.logical_of("users") == "users"


class TestWorkloads:
    def test_w1_single_machine_clustered_read(self, site):
        reviews, machines = site.machines_touched(site.reviews_for_movie, "m1")
        assert len(reviews) == 2
        assert machines == 1

    def test_w2_two_machines_no_2pc(self, site):
        _r, machines = site.machines_touched(site.post_review, "u3", "m1", "ok")
        assert machines == 2
        assert site.metrics.get("twopc.messages") == 0

    def test_w3_single_machine(self, site):
        _r, machines = site.machines_touched(
            site.update_profile, "u1", {"name": "U1", "bio": "x"}
        )
        assert machines == 1

    def test_w4_single_machine_clustered_read(self, site):
        mine, machines = site.machines_touched(site.my_reviews, "u1")
        assert len(mine) == 2
        assert machines == 1

    def test_w2_maintains_both_clusterings(self, site):
        site.post_review("u4", "m3", "new")
        assert any(uid == "u4" for (_m, uid), _v in site.reviews_for_movie("m3"))
        assert any(mid == "m3" for (_u, mid), _v in site.my_reviews("u4"))

    def test_reviews_cluster_by_movie(self, site):
        """All reviews of one movie live on one DC (the physical schema)."""
        name_m1 = site.reviews.physical_name(("m1", None))
        for uid in ("u1", "u2", "u3", "u4"):
            assert site.reviews.physical_name(("m1", uid)) == name_m1


class TestSharingSemantics:
    def test_reader_sees_committed_only(self, site):
        tc = site.owner_of("u1")
        txn = tc.begin()
        site.reviews.insert(txn, ("m3", "u1"), "uncommitted")
        assert site.reviews_for_movie("m3") == []  # read committed
        txn.commit()
        assert len(site.reviews_for_movie("m3")) == 1

    def test_aborted_review_never_visible(self, site):
        tc = site.owner_of("u1")
        txn = tc.begin()
        site.reviews.insert(txn, ("m3", "u1"), "oops")
        txn.abort()
        assert site.reviews_for_movie("m3") == []

    def test_reader_never_blocks_on_writer(self, site):
        tc = site.owner_of("u1")
        txn = tc.begin()
        site.reviews.insert(txn, ("m3", "u1"), "pending")
        for _ in range(3):
            site.reviews_for_movie("m1")  # different movie: trivially fine
            site.reviews_for_movie("m3")  # same movie: nonblocking via versions
        txn.commit()

    def test_ownership_enforced(self, site):
        wrong_tc = [
            tc for tc in site.updaters if tc is not site.owner_of("u1")
        ][0]
        txn = wrong_tc.begin()
        with pytest.raises(OwnershipError):
            txn.update("users", "u1", {"hacked": True})
        txn.abort()


class TestCloudFailures:
    def test_updater_crash_leaves_reader_and_peer_running(self, site):
        victim_index = site.updaters.index(site.owner_of("u1"))
        txn = site.owner_of("u1").begin()
        site.reviews.insert(txn, ("m3", "u1"), "will be lost")
        site.crash_updater(victim_index)
        # reader and the other updater continue unaffected
        assert len(site.reviews_for_movie("m1")) == 2
        # find (or mint) a user owned by the surviving updater — string
        # hashing is randomized per process, so probe candidates
        other_user = next(
            uid
            for uid in (f"candidate-{n}" for n in range(64))
            if site.owner_of(uid) is not site.updaters[victim_index]
        )
        site.register_user(other_user, {"name": other_user})
        site.post_review(other_user, "m3", "still running")
        site.recover_updater(victim_index)
        reviews = site.reviews_for_movie("m3")
        assert [uid for (_m, uid), _v in reviews] == [other_user]
        # and the recovered TC can post again
        site.post_review("u1", "m3", "back")
        assert len(site.reviews_for_movie("m3")) == 2

    def test_review_dc_crash_recovers_from_both_tcs(self, site):
        dc = site.movie_dcs[0]
        dc.crash()
        dc.recover(notify_tcs=True)
        total = sum(len(site.reviews_for_movie(m)) for m in ("m1", "m2", "m3"))
        assert total == 3
