"""Torn-tail edge cases of the DC server journal (net/journal.py).

The journal promises torn-write = no-write: a frame whose mutating call
never returned must vanish on replay, and everything before it must
survive byte-for-byte.  These tests tamper with the file directly to hit
the cuts a real SIGKILL can produce mid-``write()``:

- a final record truncated inside its payload (header intact);
- a payload cut that still *unpickles* — only the CRC catches it;
- a zero-length tail record (header present, empty frame);
- a partial header (fewer bytes than the frame header itself);
- a frame ending exactly at the file boundary (must replay whole).
"""

from __future__ import annotations

import pickle
import struct
import zlib

import pytest

from repro.net.journal import _HEADER, JournalStorage


def _make_journal(path, entries):
    storage = JournalStorage(str(path))
    for key, value in entries:
        storage.write_metadata(key, value)
    storage.close()
    return path


def _frames(path):
    """Parse the raw file into (header_offset, length, crc, payload) tuples."""
    data = path.read_bytes()
    frames = []
    pos = 0
    while pos + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, pos)
        payload = data[pos + _HEADER.size : pos + _HEADER.size + length]
        frames.append((pos, length, crc, payload))
        pos += _HEADER.size + length
    return frames


class TestTornTail:
    def test_truncated_final_record_is_dropped(self, tmp_path):
        path = _make_journal(
            tmp_path / "j.bin", [("a", 1), ("b", 2), ("c", 3)]
        )
        frames = _frames(path)
        last_start = frames[-1][0]
        data = path.read_bytes()
        # Cut inside the final payload: header claims more than remains.
        path.write_bytes(data[: last_start + _HEADER.size + 2])

        storage = JournalStorage(str(path))
        assert storage.read_metadata("a") == 1
        assert storage.read_metadata("b") == 2
        assert storage.read_metadata("c") is None  # torn -> no write
        # The tail was truncated to a clean frame boundary: new appends
        # land after the surviving frames and themselves replay.
        storage.write_metadata("d", 4)
        storage.close()
        reopened = JournalStorage(str(path))
        assert reopened.read_metadata("b") == 2
        assert reopened.read_metadata("d") == 4
        reopened.close()

    def test_crc_rejects_truncation_that_still_unpickles(self, tmp_path):
        """A cut landing on a valid pickle must not replay as a frame.

        The length prefix alone cannot catch this shape: we rewrite the
        final record so its payload *is* a loadable pickle of a different
        (shorter) mutation, but keep the original CRC.  Only the checksum
        distinguishes "frame the writer finished" from "bytes that happen
        to parse"."""
        path = _make_journal(tmp_path / "j.bin", [("a", 1), ("victim", 2)])
        frames = _frames(path)
        last_start, length, crc, payload = frames[-1]
        impostor = pickle.dumps(
            (2, ("victim", 999)), protocol=pickle.HIGHEST_PROTOCOL
        )
        assert zlib.crc32(impostor) != crc
        data = path.read_bytes()
        tampered = (
            data[:last_start]
            + _HEADER.pack(len(impostor), crc)  # stale CRC, "torn" payload
            + impostor
        )
        path.write_bytes(tampered)

        storage = JournalStorage(str(path))
        assert storage.read_metadata("a") == 1
        # Without the CRC this would read 999; with it the frame is torn.
        assert storage.read_metadata("victim") is None
        assert storage.metrics.get("journal.crc_rejected") == 1
        storage.close()

    def test_zero_length_tail_record(self, tmp_path):
        """A header announcing an empty frame: CRC matches b'', pickle
        cannot — replay must stop cleanly, keeping prior frames."""
        path = _make_journal(tmp_path / "j.bin", [("a", 1)])
        with open(path, "ab") as handle:
            handle.write(_HEADER.pack(0, zlib.crc32(b"")))

        storage = JournalStorage(str(path))
        assert storage.read_metadata("a") == 1
        storage.write_metadata("b", 2)
        storage.close()
        reopened = JournalStorage(str(path))
        assert reopened.read_metadata("a") == 1
        assert reopened.read_metadata("b") == 2
        reopened.close()

    def test_partial_header_tail(self, tmp_path):
        """Fewer tail bytes than one frame header (the smallest tear)."""
        path = _make_journal(tmp_path / "j.bin", [("a", 1), ("b", 2)])
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00\x00")  # 3 of the header's 8 bytes

        storage = JournalStorage(str(path))
        assert storage.read_metadata("a") == 1
        assert storage.read_metadata("b") == 2
        storage.close()

    def test_record_spanning_exact_buffer_boundary(self, tmp_path):
        """A frame engineered to end exactly on a 4096-byte boundary.

        Replay must consume it whole (no off-by-one at the "buffer edge")
        and a subsequent frame starting exactly at the boundary replays
        too."""
        path = tmp_path / "j.bin"
        storage = JournalStorage(str(path))
        storage.write_metadata("pad", "x")
        base = path.stat().st_size
        # Size one value so header + payload lands the file exactly at
        # 4096 (pickle's string-length encoding varies, so probe exactly).
        def frame_size(fill):
            frame = pickle.dumps(
                (2, ("big", "y" * fill)), protocol=pickle.HIGHEST_PROTOCOL
            )
            return _HEADER.size + len(frame)

        fill = next(
            n for n in range(1, 4096) if base + frame_size(n) == 4096
        )
        storage.write_metadata("big", "y" * fill)
        assert path.stat().st_size == 4096
        storage.write_metadata("after", "z")
        storage.close()

        reopened = JournalStorage(str(path))
        assert reopened.read_metadata("big") == "y" * fill
        assert reopened.read_metadata("after") == "z"
        reopened.close()

    def test_clean_journal_replays_everything(self, tmp_path):
        path = _make_journal(
            tmp_path / "j.bin", [(f"k{i}", i) for i in range(10)]
        )
        storage = JournalStorage(str(path))
        assert storage.replayed
        for i in range(10):
            assert storage.read_metadata(f"k{i}") == i
        storage.close()
