"""Group commit (docs/architecture.md §9.3): shared forces, full durability.

These are deterministic unit tests of
:class:`~repro.tc.log.GroupCommitCoalescer`: the test thread plays extra
committers by calling ``enter()`` itself, so a spawned waiter provably
parks (``waiting < committers`` and the deadline is far away) and the
leader election is exercised without timing races.  End-to-end
force-before-ack at every batch size lives in test_integration_stress.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.sim.metrics import Metrics
from repro.tc.log import CommitRecord, GroupCommitCoalescer, TcLog


def commit_lsn(log, txn_id=1):
    return log.append(lambda lsn: CommitRecord(lsn=lsn, txn_id=txn_id)).lsn


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.001)


class TestCoalescerBasics:
    def test_size_one_forces_per_commit(self):
        log = TcLog(Metrics())
        coal = GroupCommitCoalescer(log, size=1, deadline_ms=1.0)
        lsn = commit_lsn(log)
        coal.wait_stable(lsn, log.force)
        assert log.eosl >= lsn
        assert log.metrics.get("tclog.forces") == 1

    def test_single_committer_never_sleeps(self):
        """waiting >= committers holds immediately for a lone committer, so
        even an hour-long deadline costs nothing (the zero-overhead-when-
        unused property of the knob)."""
        log = TcLog(Metrics())
        coal = GroupCommitCoalescer(log, size=8, deadline_ms=3_600_000.0)
        coal.enter()
        lsn = commit_lsn(log)
        start = time.monotonic()
        coal.wait_stable(lsn, log.force)
        coal.exit()
        assert time.monotonic() - start < 1.0
        assert log.eosl >= lsn
        assert log.metrics.get("tclog.group_commit_leads") == 1
        assert log.metrics.get("tclog.group_commit_riders") == 0

    def test_already_stable_lsn_skips_the_force(self):
        log = TcLog(Metrics())
        coal = GroupCommitCoalescer(log, size=4, deadline_ms=1.0)
        lsn = commit_lsn(log)
        log.force()
        before = log.metrics.get("tclog.forces")
        coal.enter()
        coal.wait_stable(lsn, log.force)
        coal.exit()
        assert log.metrics.get("tclog.forces") == before

    def test_rejects_invalid_parameters(self):
        log = TcLog(Metrics())
        with pytest.raises(ValueError):
            GroupCommitCoalescer(log, size=0, deadline_ms=1.0)
        with pytest.raises(ValueError):
            GroupCommitCoalescer(log, size=2, deadline_ms=-1.0)


class TestLeaderElection:
    def test_two_committers_share_one_force(self):
        """The second committer to park leads (waiting == committers) and
        its single force covers the first, who rides."""
        metrics = Metrics()
        log = TcLog(metrics)
        coal = GroupCommitCoalescer(log, size=8, deadline_ms=30_000.0)
        coal.enter()  # the rider
        coal.enter()  # this thread, still "running"
        rider_lsn = commit_lsn(log, txn_id=1)
        rider = threading.Thread(
            target=lambda: coal.wait_stable(rider_lsn, log.force)
        )
        rider.start()
        # waiting=1 < committers=2 and the deadline is far away: parked.
        wait_until(lambda: coal._waiting == 1)
        assert log.metrics.get("tclog.forces") == 0
        leader_lsn = commit_lsn(log, txn_id=2)
        coal.wait_stable(leader_lsn, log.force)  # waiting==committers: lead
        rider.join(timeout=5.0)
        assert not rider.is_alive()
        coal.exit()
        coal.exit()
        assert log.eosl >= leader_lsn
        assert metrics.get("tclog.forces") == 1
        assert metrics.get("tclog.group_commit_leads") == 1
        assert metrics.get("tclog.group_commit_riders") == 1

    def test_full_group_leads_without_waiting_for_stragglers(self):
        """waiting >= size elects a leader even while other committers are
        still running their transactions."""
        metrics = Metrics()
        log = TcLog(metrics)
        coal = GroupCommitCoalescer(log, size=2, deadline_ms=30_000.0)
        for _ in range(3):  # a third committer never reaches wait_stable
            coal.enter()
        lsns = [commit_lsn(log, txn_id=i) for i in (1, 2)]
        threads = [
            threading.Thread(target=lambda l=lsn: coal.wait_stable(l, log.force))
            for lsn in lsns
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        for _ in range(3):
            coal.exit()
        assert log.eosl >= max(lsns)
        assert metrics.get("tclog.forces") == 1

    def test_deadline_bounds_commit_latency(self):
        """A parked waiter whose group never fills elects itself once the
        flush deadline elapses — latency is bounded, not best-effort."""
        log = TcLog(Metrics())
        coal = GroupCommitCoalescer(log, size=8, deadline_ms=25.0)
        coal.enter()
        coal.enter()  # a phantom committer that never commits
        lsn = commit_lsn(log)
        start = time.monotonic()
        coal.wait_stable(lsn, log.force)  # waiting=1 < committers=2: parks
        elapsed = time.monotonic() - start
        coal.exit()
        coal.exit()
        assert log.eosl >= lsn
        assert elapsed >= 0.02  # it did wait for the deadline...
        assert elapsed < 5.0  # ...but not forever

    def test_departing_committer_promotes_the_waiter(self):
        """exit() re-evaluates the election: when the other in-flight
        committer aborts instead of committing, the parked waiter must not
        sit out its whole deadline."""
        log = TcLog(Metrics())
        coal = GroupCommitCoalescer(log, size=8, deadline_ms=30_000.0)
        coal.enter()  # the waiter
        coal.enter()  # the aborter
        lsn = commit_lsn(log)
        waiter = threading.Thread(target=lambda: coal.wait_stable(lsn, log.force))
        waiter.start()
        wait_until(lambda: coal._waiting == 1)
        coal.exit()  # the aborter leaves; waiting >= committers now holds
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        coal.exit()
        assert log.eosl >= lsn
