"""The TC service tier end to end (docs/architecture.md §16).

The final unbundling step: the TC itself becomes an OS process.  These
tests drive router → TC server process → DC server processes with *zero*
in-process TC/DC objects on the client side, then make failure real —
``kill -9`` a TC server mid-commit and check the §5.3.2 journal-replay +
record-reset + redo/undo protocol converges, with the supervisor's
standard heal policy doing the driving.

Increments stay the canary: a non-idempotent operation applied twice (a
journal replay not absorbed by abLSNs) or zero times (an acknowledged
commit lost by the durable log) shows up as a wrong sum.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.process

from repro.cloud.partitioning import stable_key_hash
from repro.cloud.router import TcServiceDeployment, TcServiceRouter
from repro.common.config import ChannelConfig, KernelConfig, TcConfig
from repro.common.errors import CrashedError, ReproError, TcRedirect
from repro.kernel.unbundled import UnbundledKernel
from repro.net.tcclient import RemoteTc
from repro.sim.supervisor import Supervisor


def kill_tc(tc: RemoteTc) -> None:
    """A real ``kill -9`` on the TC server, then wait for the proxy."""
    os.kill(tc.pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while not tc.crashed and time.monotonic() < deadline:
        time.sleep(0.01)
    assert tc.crashed


@pytest.fixture
def deployment():
    with TcServiceDeployment(tc_count=2, dc_count=2, partitions=8) as dep:
        dep.create_table("t")
        yield dep


class TestEndToEnd:
    def test_four_op_txn_spans_three_process_tiers(self, deployment):
        """Router → TC process → DC processes, all distinct from us."""
        router = deployment.router
        me = os.getpid()
        tc_pids = {tc.pid for tc in deployment.tcs.values()}
        dc_pids = {dc.pid for dc in deployment.dcs.values()}
        assert me not in tc_pids and me not in dc_pids
        assert not (tc_pids & dc_pids) and len(tc_pids) == 2 and len(dc_pids) == 2

        def txn_fn(tc):
            with tc.begin() as txn:
                txn.insert("t", "acct", 0)
                txn.increment("t", "acct", 7)
                txn.increment("t", "acct", 5)
                assert txn.read("t", "acct") == 12
            return tc.name

        served_by = router.execute("acct", txn_fn)
        assert served_by == router.owner_of("acct").name
        assert router.read_other("t", "acct") == 12
        # No in-process TC/DC objects anywhere on the client side: the
        # deployment's components are all proxies over pipes/sockets.
        from repro.dc.data_component import DataComponent
        from repro.tc.transactional_component import TransactionalComponent

        for component in (*deployment.tcs.values(), *deployment.dcs.values()):
            assert not isinstance(
                component, (DataComponent, TransactionalComponent)
            )

    def test_abort_on_error_context_manager(self, deployment):
        owner = deployment.router.owner_of("k")
        with owner.begin() as txn:
            txn.insert("t", "k", 1)
        with pytest.raises(RuntimeError):
            with owner.begin() as txn:
                txn.update("t", "k", 2)
                raise RuntimeError("boom")
        assert owner.read_other("t", "k") == 1  # the update rolled back

    def test_cross_tc_read_committed_sharing(self, deployment):
        """The non-owning TC reads the owner's committed writes, not its
        in-flight ones (Section 6.3 over real process boundaries)."""
        router = deployment.router
        owner = router.owner_of("shared")
        other = next(
            tc for tc in deployment.tcs.values() if tc.name != owner.name
        )
        with owner.begin() as txn:
            txn.insert("t", "shared", 10)
        assert other.read_other("t", "shared") == 10
        txn = owner.begin()
        txn.update("t", "shared", 99)
        # uncommitted: the other TC still sees the committed version
        assert other.read_other("t", "shared") == 10
        txn.commit()
        assert other.read_other("t", "shared") == 99


class TestRouting:
    def test_exclusive_key_range_ownership(self, deployment):
        """Every partition has exactly one owner, and the guards agree
        with the router's stable hash for every probed key."""
        router = deployment.router
        tc_names = sorted(deployment.tcs)
        seen_owners = set()
        for key in range(64):
            partition = router.partition_of(key)
            owner = router.owner_of(key)
            assert owner.name == tc_names[partition % len(tc_names)]
            seen_owners.add(owner.name)
            # the owner accepts the write; every other TC bounces it
            with owner.begin() as txn:
                txn.insert("t", key, key)
            for tc in deployment.tcs.values():
                if tc.name == owner.name:
                    continue
                with pytest.raises(TcRedirect):
                    with tc.begin() as txn:
                        txn.update("t", key, -1)
        assert seen_owners == set(tc_names)  # both TCs own something

    def test_misrouted_request_bounces_with_retryable_redirect(
        self, deployment
    ):
        router = deployment.router
        owner = router.owner_of("hot")
        wrong = next(
            tc for tc in deployment.tcs.values() if tc.name != owner.name
        )
        with pytest.raises(TcRedirect) as err:
            with wrong.begin() as txn:
                txn.insert("t", "hot", 1)
        assert err.value.owner == owner.name  # the bounce names the owner
        # router.execute follows the redirect and lands the write
        followed_before = router.redirects_followed

        def write_via(tc):
            with tc.begin() as txn:
                txn.insert("t", "hot", 42)
            return tc.name

        # Force a misroute by always starting on the wrong TC.
        try:
            served_by = write_via(wrong)
        except TcRedirect as redirect:
            served_by = write_via(router.by_name[redirect.owner])
        assert served_by == owner.name
        assert router.read_other("t", "hot") == 42
        assert router.redirects_followed == followed_before  # manual retry

    def test_redirect_carries_stable_partition(self, deployment):
        """The guard and the router use the same process-independent
        hash, so the redirect's owner is exactly the router's owner."""
        router = deployment.router
        for key in ("a", "b", (1, "x"), 17, b"bytes"):
            partition = stable_key_hash(key) % deployment.partitions
            assert router.partition_of(key) == partition


class TestCrashHealing:
    def test_killed_tc_ranges_reserved_after_heal(self, deployment):
        """kill -9 the owner mid-batch; after the supervisor heals, the
        same TC serves the same ranges and the increment canary is exact."""
        router = deployment.router
        supervisor = Supervisor()
        supervisor.watch_deployment(deployment)
        owner = router.owner_of("counter")
        with owner.begin() as txn:
            txn.insert("t", "counter", 0)
        for _ in range(12):
            with owner.begin() as txn:
                txn.increment("t", "counter", 1)
        # an uncommitted increment is in flight when the SIGKILL lands
        txn = owner.begin()
        txn.increment("t", "counter", 100)
        kill_tc(owner)
        report = supervisor.heal()
        assert report.tc_restarts == 1
        # committed survives, uncommitted vanished (§5.3.2 undo)
        assert owner.read_other("t", "counter") == 12
        # the healed TC serves its old ranges again
        assert router.owner_of("counter").name == owner.name
        with owner.begin() as txn:
            txn.increment("t", "counter", 1)
        assert router.read_other("t", "counter") == 13
        # and still bounces keys it does not own
        foreign = next(
            key
            for key in range(100)
            if router.owner_of(key).name != owner.name
        )
        with pytest.raises(TcRedirect):
            with owner.begin() as txn:
                txn.insert("t", foreign, 1)

    def test_kill_mid_commit_converges(self, deployment):
        """SIGKILL racing the commit: the outcome must be all-or-nothing,
        decided by whether the commit record reached the durable journal."""
        router = deployment.router
        supervisor = Supervisor()
        supervisor.watch_deployment(deployment)
        owner = router.owner_of("mid")
        with owner.begin() as txn:
            txn.insert("t", "mid", 0)
        committed = 0
        for round_no in range(6):
            txn = owner.begin()
            txn.increment("t", "mid", 1)
            if round_no == 3:
                os.kill(owner.pid, signal.SIGKILL)
                try:
                    txn.commit()
                    committed += 1  # ack raced the kill and won — it counts
                except (CrashedError, ReproError):
                    pass  # indeterminate; resolved by reading back below
                kill_tc(owner)
                supervisor.heal()
                actual = owner.read_other("t", "mid")
                assert actual in (committed, committed + 1)
                committed = actual  # classify the indeterminate outcome
            else:
                txn.commit()
                committed += 1
        assert owner.read_other("t", "mid") == committed

    def test_tc_and_dc_killed_together(self, deployment):
        router = deployment.router
        supervisor = Supervisor()
        supervisor.watch_deployment(deployment)
        owner = router.owner_of("both")
        with owner.begin() as txn:
            txn.insert("t", "both", 0)
        for _ in range(5):
            with owner.begin() as txn:
                txn.increment("t", "both", 1)
        dc = next(
            d for d in deployment.dcs.values() if "t" in d.table_names()
        )
        dc.crash()
        kill_tc(owner)
        supervisor.heal()
        assert owner.read_other("t", "both") == 5
        with owner.begin() as txn:
            txn.increment("t", "both", 1)
        assert owner.read_other("t", "both") == 6


class TestKernelTcProcessMode:
    def test_kernel_end_to_end_and_recovery(self):
        config = KernelConfig(
            tc=TcConfig.optimized(),
            channel=ChannelConfig(transport="process", request_timeout_s=15.0),
            tc_processes=1,
        )
        with UnbundledKernel(config, dc_count=2) as kernel:
            kernel.create_table("t", dc_name="dc1")
            assert kernel.tc_pid not in (None, os.getpid())
            with kernel.begin() as txn:
                txn.insert("t", "k", 0)
                txn.increment("t", "k", 3)
            kernel.crash_tc()
            result = kernel.recover_tc()
            assert result["recovered"] is True
            assert kernel.tc.read_other("t", "k") == 3
            kernel.crash_dc("dc1")
            kernel.recover_dc("dc1")
            with kernel.begin() as txn:
                txn.increment("t", "k", 1)
            assert kernel.tc.read_other("t", "k") == 4

    def test_multi_tc_kernel_refused(self):
        config = KernelConfig(
            channel=ChannelConfig(transport="process"), tc_processes=2
        )
        with pytest.raises(ReproError, match="TcServiceDeployment"):
            UnbundledKernel(config)


class TestDownstreamDcFailure:
    def test_txn_hitting_dead_dc_stays_abortable(self):
        """A dead *DC* mid-transaction must not strand the TC-side txn.

        The op into the dead DC fails with a typed error (not reply
        silence): the transaction is still open server-side, so the
        client's abort must travel and undo the writes that *did* apply
        on the live DC.  Regression for the chaos-found bug where the
        lost-reply path marked the handle ABORTED and dropped the abort,
        leaving the open transaction's update visible to scans forever.
        """
        from repro.common.ops import ReadFlavor

        with TcServiceDeployment(tc_count=1, dc_count=2, partitions=4) as dep:
            dep.create_table("live", dc_name="dc1")
            dep.create_table("doomed", dc_name="dc2")
            tc = dep.tcs["tc1"]
            with tc.begin() as txn:
                txn.insert("live", 1, "base")
            dep.dcs["dc2"].crash()  # real kill -9
            txn = tc.begin()
            txn.update("live", 1, "pending")  # applies on the live DC
            with pytest.raises(ReproError) as err:
                txn.insert("doomed", 1, "x")
            assert "dc2" in str(err.value)
            # not silence: the handle knows the txn is still open
            txn.abort()
            # the applied update was undone — even a dirty read agrees
            assert tc.read_other("live", 1, flavor=ReadFlavor.DIRTY) == "base"

    def test_abort_is_idempotent_after_loss(self):
        """Presumed abort: re-delivering an abort for a transaction the
        server no longer knows is acknowledged, not an error."""
        from repro.net.tcrpc import TxnAbort, TxnAck

        with TcServiceDeployment(tc_count=1, dc_count=1, partitions=2) as dep:
            dep.create_table("t")
            tc = dep.tcs["tc1"]
            txn = tc.begin()
            txn.insert("t", 1, "v")
            txn.abort()
            reply = tc.call(
                TxnAbort(tc_id=tc.tc_id, txn_id=txn.txn_id)
            )
            assert isinstance(reply, TxnAck)


class TestChaosGauntlet:
    def test_tc_and_dc_sigkill_schedule_zero_violations(self):
        from repro.sim.chaos import ChaosRunner

        runner = ChaosRunner(
            seed=11,
            txns=80,
            dc_count=2,
            tc_config=TcConfig.optimized(),
            channel_config=ChannelConfig(
                transport="process", request_timeout_s=15.0
            ),
            kill_every=19,
            tc_processes=1,
            kill_tc_every=29,
        )
        try:
            report = runner.run()
        finally:
            runner.kernel.close()
        assert report["tc_kills"] >= 2
        assert report["faults_fired"] >= report["tc_kills"]
        assert report["committed"] + report["resolved_committed"] > 0


class TestServeTcCli:
    def test_standalone_server_over_socket(self, tmp_path):
        """``python -m repro serve-tc`` against a socket-listening DC."""
        from repro.net.process import RemoteDc

        dc = RemoteDc(
            "dc1",
            journal_path=str(tmp_path / "dc1.journal"),
            listen_path=str(tmp_path / "dc1.sock"),
        )
        proc = None
        try:
            dc.create_table("t", versioned=True)
            sock = str(tmp_path / "tc1.sock")
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "serve-tc",
                    "--listen",
                    sock,
                    "--journal",
                    str(tmp_path / "tc1.journal"),
                    "--dc",
                    f"dc1={tmp_path / 'dc1.sock'}",
                    "--max-sessions",
                    "1",
                ],
                env={**os.environ, "PYTHONPATH": "src"},
            )
            tc = RemoteTc("tc1", tc_id=1, socket_path=sock)
            try:
                with tc.begin() as txn:
                    txn.insert("t", "cli", 5)
                assert tc.read_other("t", "cli") == 5
                # lifecycle is refused on an externally managed server
                with pytest.raises(ReproError):
                    tc.crash()
            finally:
                tc.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
            dc.shutdown()
