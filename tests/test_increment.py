"""IncrementOp: logical, non-idempotent — exactly-once has to be real."""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig
from repro.common.errors import NoSuchRecordError, ReproError
from repro.common.ops import IncrementOp, OpResult, inverse_of


def kernel_with(**channel_kwargs):
    config = KernelConfig(
        dc=DcConfig(page_size=1024),
        channel=ChannelConfig(**channel_kwargs) if channel_kwargs else ChannelConfig(),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table("t")
    return kernel


class TestBasics:
    def test_increment_and_read(self):
        kernel = kernel_with()
        with kernel.begin() as txn:
            txn.insert("t", "counter", 10)
            txn.increment("t", "counter", 5)
            txn.increment("t", "counter", -3)
            assert txn.read("t", "counter") == 12

    def test_missing_record(self):
        kernel = kernel_with()
        txn = kernel.begin()
        with pytest.raises(NoSuchRecordError):
            txn.increment("t", "nope", 1)
        txn.abort()

    def test_non_numeric_rejected(self):
        kernel = kernel_with()
        with kernel.begin() as setup:
            setup.insert("t", 1, "text")
            setup.insert("t", 2, True)
        txn = kernel.begin()
        with pytest.raises(ReproError):
            txn.increment("t", 1, 1)
        txn.abort()
        txn = kernel.begin()
        with pytest.raises(ReproError):
            txn.increment("t", 2, 1)  # bools are not counters
        txn.abort()

    def test_float_deltas(self):
        kernel = kernel_with()
        with kernel.begin() as txn:
            txn.insert("t", 1, 1.5)
            txn.increment("t", 1, 0.25)
            assert txn.read("t", 1) == 1.75


class TestLogicalUndo:
    def test_inverse_is_negated_delta(self):
        op = IncrementOp(table="t", key=1, delta=7)
        inverse = inverse_of(op, OpResult.okay())
        assert isinstance(inverse, IncrementOp) and inverse.delta == -7

    def test_abort_undoes_by_decrement(self):
        kernel = kernel_with()
        with kernel.begin() as setup:
            setup.insert("t", "c", 100)
        txn = kernel.begin()
        txn.increment("t", "c", 11)
        txn.increment("t", "c", 22)
        txn.abort()
        with kernel.begin() as check:
            assert check.read("t", "c") == 100

    def test_undo_info_carries_no_value(self):
        """The log's undo operation is value-independent — pure logic."""
        kernel = kernel_with()
        with kernel.begin() as setup:
            setup.insert("t", "c", 100)
        with kernel.begin() as txn:
            txn.increment("t", "c", 5)
        from repro.tc.log import OpRecord

        increments = [
            r
            for r in kernel.tc.log.all_records()
            if isinstance(r, OpRecord) and isinstance(r.op, IncrementOp)
        ]
        assert len(increments) == 1
        assert isinstance(increments[0].undo, IncrementOp)
        assert increments[0].undo.delta == -5


class TestExactlyOnce:
    def test_duplicating_channel_never_double_applies(self):
        kernel = kernel_with(duplicate_rate=1.0, seed=3)
        with kernel.begin() as txn:
            txn.insert("t", "c", 0)
        for _ in range(20):
            with kernel.begin() as txn:
                txn.increment("t", "c", 1)
        with kernel.begin() as check:
            assert check.read("t", "c") == 20
        assert kernel.metrics.get("dc.duplicate_ops") >= 20

    def test_lossy_channel_resends_exactly_once(self):
        kernel = kernel_with(loss_rate=0.35, seed=11)
        with kernel.begin() as txn:
            txn.insert("t", "c", 0)
        for _ in range(25):
            with kernel.begin() as txn:
                txn.increment("t", "c", 1)
        with kernel.begin() as check:
            assert check.read("t", "c") == 25

    def test_dc_crash_redo_does_not_double_apply(self):
        kernel = kernel_with()
        with kernel.begin() as txn:
            txn.insert("t", "c", 0)
        for _ in range(10):
            with kernel.begin() as txn:
                txn.increment("t", "c", 1)
        kernel.tc.broadcast_eosl()
        kernel.dc.buffer.flush_all()  # effects stable; redo must skip them
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as check:
            assert check.read("t", "c") == 10

    def test_tc_crash_loser_increment_reversed(self):
        kernel = kernel_with()
        with kernel.begin() as txn:
            txn.insert("t", "c", 50)
        loser = kernel.begin()
        loser.increment("t", "c", 999)
        kernel.tc.force_log()
        kernel.crash_tc()
        kernel.recover_tc()
        with kernel.begin() as check:
            assert check.read("t", "c") == 50

    def test_pipelined_increments_on_distinct_keys(self):
        kernel = kernel_with(reorder_window=5, seed=7)
        with kernel.begin() as setup:
            for key in range(10):
                setup.insert("t", key, 0)
        with kernel.begin() as txn:
            for key in range(10):
                txn.increment("t", key, key + 1, deferred=True)
            txn.sync()
        with kernel.begin() as check:
            assert check.scan("t") == [(key, key + 1) for key in range(10)]


class TestVersionedIncrements:
    def test_versioned_increment_respects_read_committed(self):
        config = KernelConfig(dc=DcConfig())
        kernel = UnbundledKernel(config)
        kernel.create_table("v", versioned=True)
        with kernel.begin() as txn:
            txn.insert("v", "c", 10)
        writer = kernel.begin()
        writer.increment("v", "c", 5)
        from repro.common.ops import ReadFlavor

        assert kernel.tc.read_other("v", "c", ReadFlavor.READ_COMMITTED) == 10
        assert kernel.tc.read_other("v", "c", ReadFlavor.DIRTY) == 15
        writer.commit()
        assert kernel.tc.read_other("v", "c", ReadFlavor.READ_COMMITTED) == 15

    def test_versioned_increment_abort_discards(self):
        kernel = UnbundledKernel()
        kernel.create_table("v", versioned=True)
        with kernel.begin() as txn:
            txn.insert("v", "c", 10)
        loser = kernel.begin()
        loser.increment("v", "c", 5)
        loser.abort()
        with kernel.begin() as check:
            assert check.read("v", "c") == 10
