"""The fetch-ahead validation/retry path (Section 3.1).

"Should the records to be read or written be different from the ones that
were locked based on the earlier request, this subsequent request becomes
again a speculative request."  These tests inject a concurrent insert
*between* the probe and the authoritative read — deterministically, via a
DC wrapper — and assert the scan retries and lands on the enlarged truth.
"""

from __future__ import annotations

import pytest

from repro.common.config import DcConfig
from repro.common.ops import InsertOp, ProbeNextKeysOp, RangeReadOp
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.tc.transactional_component import TransactionalComponent

#: tc_id used by the sneaky out-of-band writer
INTRUDER = 999


class IntrudingDc(DataComponent):
    """A DC that inserts a key right after serving the Nth probe —
    modelling another TC's insert racing the scanner's probe/lock window."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.intrusions: list[tuple[int, object, object]] = []
        self._probe_count = 0
        self._intruder_lsn = 10_000_000  # far above any real TC LSN

    def arm(self, after_probe: int, table: str, key: object, value: object) -> None:
        self.intrusions.append((after_probe, (table, key), value))

    def reset_probe_count(self) -> None:
        """Ignore probes issued so far (setup inserts also probe for their
        gap guards); arm counters relative to the scan under test."""
        self._probe_count = 0

    def perform_operation(self, tc_id, op_id, op, resend=False):
        result = super().perform_operation(tc_id, op_id, op, resend)
        if isinstance(op, ProbeNextKeysOp):
            self._probe_count += 1
            for intrusion in list(self.intrusions):
                after_probe, (table, key), value = intrusion
                if self._probe_count == after_probe:
                    self.intrusions.remove(intrusion)
                    self._intruder_lsn += 1
                    super().perform_operation(
                        INTRUDER,
                        self._intruder_lsn,
                        InsertOp(table=table, key=key, value=value),
                    )
        return result


def scanning_setup(batch=4):
    from repro.common.config import TcConfig

    metrics = Metrics()
    dc = IntrudingDc("dc", config=DcConfig(page_size=1024), metrics=metrics)
    dc.create_table("t")
    dc.register_tc(INTRUDER, force_log=lambda lsn: lsn)
    tc = TransactionalComponent(
        config=TcConfig(fetch_ahead_batch=batch), metrics=metrics
    )
    tc.attach_dc(dc)
    with tc.begin() as txn:
        for key in range(0, 20, 2):  # evens 0..18
            txn.insert("t", key, f"v{key}")
    dc.reset_probe_count()
    return dc, tc, metrics


class TestValidationRetry:
    def test_insert_between_probe_and_read_triggers_retry(self):
        dc, tc, metrics = scanning_setup(batch=4)
        # after the scan's first probe, key 3 appears inside the batch
        dc.arm(after_probe=1, table="t", key=3, value="intruder")
        with tc.begin() as txn:
            rows = txn.scan("t", 0, 18)
        assert metrics.get("tc.fetch_ahead_retries") >= 1
        assert (3, "intruder") in rows  # the retry saw the new truth
        assert [key for key, _v in rows] == sorted(key for key, _v in rows)

    def test_multiple_intrusions_all_absorbed(self):
        dc, tc, metrics = scanning_setup(batch=4)
        dc.arm(after_probe=1, table="t", key=3, value="a")
        dc.arm(after_probe=3, table="t", key=11, value="b")
        with tc.begin() as txn:
            rows = txn.scan("t", 0, 18)
        keys = [key for key, _v in rows]
        assert 3 in keys and 11 in keys
        assert len(keys) == 12
        assert metrics.get("tc.fetch_ahead_retries") >= 2

    def test_intrusion_outside_scanned_range_no_retry(self):
        dc, tc, metrics = scanning_setup(batch=4)
        dc.arm(after_probe=1, table="t", key=500, value="far away")
        with tc.begin() as txn:
            rows = txn.scan("t", 0, 18)
        assert len(rows) == 10
        assert metrics.get("tc.fetch_ahead_retries") == 0

    def test_scan_result_is_exactly_final_state(self):
        dc, tc, metrics = scanning_setup(batch=2)
        dc.arm(after_probe=2, table="t", key=7, value="mid")
        with tc.begin() as txn:
            rows = txn.scan("t")
        expected_keys = sorted(list(range(0, 20, 2)) + [7])
        assert [key for key, _v in rows] == expected_keys
