"""End-to-end property-based tests: the kernel against an oracle model.

These are the strongest tests in the suite: random transactional
workloads interleaved with random crash/recovery events must leave the
unbundled kernel in exactly the state a trivial in-memory model predicts —
committed transactions fully present, uncommitted ones fully absent, under
every reset mode and channel misbehavior.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, PageSyncStrategy
from repro.common.errors import DuplicateKeyError, NoSuchRecordError
from repro.storage.buffer import ResetMode

# One transaction: a list of (action, key, deferred) steps.  Mutations may
# be pipelined (deferred=True) — validation stays synchronous, so the
# oracle's outcome prediction is unchanged, but delivery may reorder.
txn_step = st.tuples(
    st.sampled_from(["insert", "update", "delete", "read"]),
    st.integers(min_value=0, max_value=25),
    st.booleans(),
)
txn_strategy = st.tuples(
    st.lists(txn_step, min_size=1, max_size=5),
    st.booleans(),  # commit?
)
event_strategy = st.one_of(
    st.tuples(st.just("txn"), txn_strategy),
    st.just(("crash_dc", None)),
    st.just(("crash_tc", None)),
    st.just(("crash_all", None)),
    st.just(("checkpoint", None)),
)


def apply_txn_to_model(model, steps):
    """Run the transaction against the dict oracle; None if it must abort."""
    shadow = dict(model)
    for action, key, _deferred in steps:
        if action == "insert":
            if key in shadow:
                return None
            shadow[key] = f"i{key}"
        elif action == "update":
            if key not in shadow:
                return None
            shadow[key] = f"u{key}"
        elif action == "delete":
            if key not in shadow:
                return None
            del shadow[key]
    return shadow


def run_events(kernel, events, reset_mode):
    model: dict[int, str] = {}
    for kind, payload in events:
        if kind == "txn":
            steps, commit = payload
            predicted = apply_txn_to_model(model, steps)
            txn = kernel.begin()
            failed = False
            try:
                for action, key, deferred in steps:
                    if action == "insert":
                        txn.insert("t", key, f"i{key}", deferred=deferred)
                    elif action == "update":
                        txn.update("t", key, f"u{key}", deferred=deferred)
                    elif action == "delete":
                        txn.delete("t", key, deferred=deferred)
                    else:
                        txn.read("t", key)
            except (DuplicateKeyError, NoSuchRecordError):
                failed = True
            assert failed == (predicted is None), (steps, model)
            if failed or not commit:
                txn.abort()
            else:
                txn.commit()
                model = predicted
        elif kind == "crash_dc":
            kernel.crash_dc()
            kernel.recover_dc()
        elif kind == "crash_tc":
            kernel.crash_tc()
            kernel.recover_tc(reset_mode)
        elif kind == "crash_all":
            kernel.crash_all()
            kernel.recover_all()
        elif kind == "checkpoint":
            kernel.checkpoint()
    return model


def check_final_state(kernel, model):
    with kernel.begin() as txn:
        rows = dict(txn.scan("t"))
    assert rows == model
    kernel.dc.table("t").structure.validate()


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(events=st.lists(event_strategy, max_size=25))
def test_kernel_matches_oracle_under_crashes(events):
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
    kernel.create_table("t")
    model = run_events(kernel, events, ResetMode.RECORD_RESET)
    check_final_state(kernel, model)


@settings(
    max_examples=35,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    events=st.lists(event_strategy, max_size=20),
    reset_mode=st.sampled_from(list(ResetMode)),
)
def test_every_reset_mode_matches_oracle(events, reset_mode):
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
    kernel.create_table("t")
    model = run_events(kernel, events, reset_mode)
    check_final_state(kernel, model)


@settings(
    max_examples=35,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    events=st.lists(event_strategy, max_size=18),
    strategy=st.sampled_from(list(PageSyncStrategy)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_lossy_channel_and_sync_strategies_match_oracle(events, strategy, seed):
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=512, sync_strategy=strategy),
            channel=ChannelConfig(loss_rate=0.15, duplicate_rate=0.1, seed=seed),
        )
    )
    kernel.create_table("t")
    model = run_events(kernel, events, ResetMode.RECORD_RESET)
    check_final_state(kernel, model)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(events=st.lists(event_strategy, max_size=15))
def test_monolithic_baseline_matches_same_oracle(events):
    """The baseline engine satisfies the identical contract."""
    from repro.common.config import DcConfig as Dc
    from repro.kernel.monolithic import MonolithicEngine

    engine = MonolithicEngine(Dc(page_size=512))
    engine.create_table("t")
    model: dict[int, str] = {}
    for kind, payload in events:
        if kind == "txn":
            steps, commit = payload
            predicted = apply_txn_to_model(model, steps)
            txn = engine.begin()
            failed = False
            try:
                for action, key, _deferred in steps:
                    if action == "insert":
                        txn.insert("t", key, f"i{key}")
                    elif action == "update":
                        txn.update("t", key, f"u{key}")
                    elif action == "delete":
                        txn.delete("t", key)
                    else:
                        txn.read("t", key)
            except (DuplicateKeyError, NoSuchRecordError):
                failed = True
            assert failed == (predicted is None)
            if failed or not commit:
                txn.abort()
            else:
                txn.commit()
                model = predicted
        elif kind in ("crash_dc", "crash_tc", "crash_all"):
            engine.crash()  # monolithic failure is never partial
            engine.recover()
        elif kind == "checkpoint":
            engine.checkpoint()
    with engine.begin() as txn:
        assert dict(txn.scan("t")) == model
