"""The serializability / recovery-ordering oracle on synthetic histories.

Each test hand-crafts an event list in the explorer's recording format and
checks the oracle draws exactly the right conclusion — these are the
oracle's own unit tests, independent of the scheduler that normally feeds
it (tests/test_schedule_explorer.py covers the two end to end).
"""

from __future__ import annotations

from repro.sim.oracle import SerializationOracle


def _op(seq, txn, op, table, key, value):
    return {
        "seq": seq,
        "point": "op.ok",
        "target": "",
        "task": txn,
        "txn": txn,
        "op": op,
        "table": table,
        "key": key,
        "value": value,
    }


def _commit(seq, txn):
    return {"seq": seq, "point": "txn.commit", "target": "", "txn": txn}


def _abort(seq, txn):
    return {"seq": seq, "point": "txn.abort", "target": "", "txn": txn}


def _dc(seq, point, dc="dc", **detail):
    return {"seq": seq, "point": point, "target": dc, **detail}


class TestConflictGraph:
    def test_serial_history_is_clean(self):
        events = [
            _op(1, "t0", "write", "t", 1, "t0.a"),
            _commit(2, "t0"),
            _op(3, "t1", "read", "t", 1, "t0.a"),
            _op(4, "t1", "write", "t", 1, "t1.a"),
            _commit(5, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert report.ok
        assert report.edges == [("t0", "t1")]

    def test_write_write_cycle_detected(self):
        events = [
            _op(1, "t0", "write", "t", 1, "t0.a"),  # t0 -> t1 on key 1
            _op(2, "t1", "write", "t", 1, "t1.a"),
            _op(3, "t1", "write", "t", 2, "t1.b"),  # t1 -> t0 on key 2
            _op(4, "t0", "write", "t", 2, "t0.b"),
            _commit(5, "t0"),
            _commit(6, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert not report.serializable
        assert set(report.cycle) >= {"t0", "t1"}
        assert "serialization cycle" in report.anomaly()

    def test_read_write_cycle_detected(self):
        # The lost-update shape read-lock weakening produces: both read,
        # both then write — r0(x) r1(x) w0(x) w1(x).
        events = [
            _op(1, "t0", "read", "t", 1, "init"),
            _op(2, "t1", "read", "t", 1, "init"),
            _op(3, "t0", "write", "t", 1, "t0.a"),
            _op(4, "t1", "write", "t", 1, "t1.a"),
            _commit(5, "t0"),
            _commit(6, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert not report.serializable

    def test_aborted_transactions_leave_no_edges(self):
        events = [
            _op(1, "t0", "write", "t", 1, "t0.a"),
            _op(2, "t1", "write", "t", 1, "t1.a"),
            _op(3, "t1", "write", "t", 2, "t1.b"),
            _op(4, "t0", "write", "t", 2, "t0.b"),
            _abort(5, "t0"),
            _commit(6, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert report.serializable
        assert report.edges == []

    def test_read_read_is_no_conflict(self):
        events = [
            _op(1, "t0", "read", "t", 1, "init"),
            _op(2, "t1", "read", "t", 1, "init"),
            _commit(3, "t0"),
            _commit(4, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert report.edges == []


class TestDirtyReads:
    def test_read_of_aborted_write_flagged(self):
        events = [
            _op(1, "t0", "write", "t", 1, "t0.dirty"),
            _op(2, "t1", "read", "t", 1, "t0.dirty"),
            _abort(3, "t0"),
            _commit(4, "t1"),
        ]
        report = SerializationOracle().check(events)
        assert report.dirty_reads
        assert report.dirty_reads[0]["reader"] == "t1"
        assert report.dirty_reads[0]["writer"] == "t0"
        assert "dirty read" in report.anomaly()

    def test_non_strict_skips_dirty_read_check(self):
        events = [
            _op(1, "t0", "write", "t", 1, "t0.dirty"),
            _op(2, "t1", "read", "t", 1, "t0.dirty"),
            _abort(3, "t0"),
            _commit(4, "t1"),
        ]
        report = SerializationOracle().check(events, strict=False)
        assert not report.dirty_reads


class TestFinalState:
    def test_missing_committed_write_flagged(self):
        initial = {("t", 1): "init"}
        events = [_op(1, "t0", "write", "t", 1, "t0.a"), _commit(2, "t0")]
        report = SerializationOracle().check(
            events, initial=initial, final={("t", 1): "init"}
        )
        assert report.final_state_mismatches == [
            {"table": "t", "key": 1, "expected": "t0.a", "actual": "init"}
        ]

    def test_aborted_write_must_roll_back(self):
        initial = {("t", 1): "init"}
        events = [_op(1, "t0", "write", "t", 1, "t0.a"), _abort(2, "t0")]
        report = SerializationOracle().check(
            events, initial=initial, final={("t", 1): "t0.a"}
        )
        assert report.final_state_mismatches  # expected rollback to init

    def test_matching_final_state_is_clean(self):
        initial = {("t", 1): "init", ("t", 2): "init2"}
        events = [
            _op(1, "t0", "write", "t", 1, "t0.a"),
            _commit(2, "t0"),
            _op(3, "t1", "write", "t", 1, "t1.a"),
            _abort(4, "t1"),
        ]
        report = SerializationOracle().check(
            events, initial=initial, final={("t", 1): "t0.a", ("t", 2): "init2"}
        )
        assert report.ok

    def test_none_final_skips_check(self):
        events = [_op(1, "t0", "write", "t", 1, "t0.a"), _commit(2, "t0")]
        report = SerializationOracle().check(events, final=None)
        assert not report.final_state_mismatches


class TestRecoveryOrdering:
    def test_apply_before_recover_ready_flagged(self):
        events = [
            _dc(1, "dc.crash"),
            _dc(2, "dc.recover.begin"),
            _dc(3, "dc.apply", op="UpdateOp", table="t", key=1),
            _dc(4, "dc.recover.ready"),
        ]
        report = SerializationOracle().check(events)
        assert report.recovery_violations
        violation = report.recovery_violations[0]
        assert violation["dc"] == "dc"
        assert violation["crash_seq"] == 1
        assert violation["apply_seq"] == 3
        assert "recovery-ordering violation" in report.anomaly()

    def test_apply_after_ready_is_fine(self):
        events = [
            _dc(1, "dc.crash"),
            _dc(2, "dc.recover.begin"),
            _dc(3, "dc.recover.ready"),
            _dc(4, "dc.apply", op="UpdateOp", table="t", key=1),
        ]
        report = SerializationOracle().check(events)
        assert not report.recovery_violations

    def test_per_dc_windows_are_independent(self):
        events = [
            _dc(1, "dc.crash", dc="dc1"),
            _dc(2, "dc.apply", dc="dc2", op="InsertOp", table="t", key=1),
            _dc(3, "dc.recover.ready", dc="dc1"),
        ]
        report = SerializationOracle().check(events)
        assert not report.recovery_violations


class TestMultiversionGraph:
    """The MVSG mode (``multiversion=True``) that judges occ/mvcc, where
    reads may legitimately return an older version than the newest
    in-place bytes."""

    def test_workspace_read_after_write_clean_in_mvsg(self):
        """Regression for the occ-vs-judge mismatch the first cc sweep
        found: t2's repeated read is re-served from its workspace *after*
        t1's in-place write, so event order has w1(x) before r2(x)=old —
        the event-order graph calls that a cycle, but the history is
        serializable (t2 before t1) and the MVSG proves it."""
        initial = {("t", 0): "init.k0"}
        events = [
            _op(1, "t2", "read", "t", 0, "init.k0"),
            _op(2, "t1", "write", "t", 0, "t1.a"),
            _op(3, "t2", "read", "t", 0, "init.k0"),  # workspace re-serve
            _commit(4, "t2"),
            _commit(5, "t1"),
        ]
        event_order = SerializationOracle().check(events, initial=initial)
        assert event_order.cycle is not None  # the misjudgment
        mvsg = SerializationOracle().check(
            events, initial=initial, multiversion=True
        )
        assert mvsg.ok
        assert ("t2", "t1") in mvsg.edges  # rw: reader before next version

    def test_write_skew_cycle_detected_in_mvsg(self):
        """Snapshot reads crossing two keys: each reads the version the
        other replaces — r1(x) r2(y) w1(y) w2(x) is an MVSG cycle."""
        initial = {("t", 0): "x0", ("t", 1): "y0"}
        events = [
            _op(1, "t1", "read", "t", 0, "x0"),
            _op(2, "t2", "read", "t", 1, "y0"),
            _op(3, "t1", "write", "t", 1, "t1.y"),
            _op(4, "t2", "write", "t", 0, "t2.x"),
            _commit(5, "t1"),
            _commit(6, "t2"),
        ]
        report = SerializationOracle().check(
            events, initial=initial, multiversion=True
        )
        assert report.cycle is not None

    def test_wr_edge_attributes_read_to_version_writer(self):
        initial = {("t", 0): "v0"}
        events = [
            _op(1, "t1", "write", "t", 0, "t1.v"),
            _commit(2, "t1"),
            _op(3, "t2", "read", "t", 0, "t1.v"),
            _commit(4, "t2"),
        ]
        report = SerializationOracle().check(
            events, initial=initial, multiversion=True
        )
        assert report.ok
        assert report.edges == [("t1", "t2")]

    def test_aborted_writers_leave_no_versions(self):
        initial = {("t", 0): "v0"}
        events = [
            _op(1, "t1", "write", "t", 0, "t1.v"),
            _abort(2, "t1"),
            _op(3, "t2", "read", "t", 0, "v0"),
            _commit(4, "t2"),
        ]
        report = SerializationOracle().check(
            events, initial=initial, multiversion=True
        )
        assert report.ok
        assert report.edges == []
