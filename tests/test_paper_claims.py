"""The paper's claims, as an executable checklist.

Each test quotes the claim it verifies (section numbers from the CIDR 2009
paper).  Most of these behaviors are covered more deeply elsewhere in the
suite; this module is the one-stop mapping from paper text to running code.
"""

from __future__ import annotations

import pytest

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig
from repro.tc.log import CompensationRecord, OpRecord
from tests.conftest import populate


def small_kernel(**channel):
    return UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=512),
            channel=ChannelConfig(**channel) if channel else ChannelConfig(),
        )
    )


class TestSection12Contribution:
    def test_tc_log_records_contain_no_page_identifiers(self):
        """§1.2: "All knowledge of pages is confined to a DC, which means
        that the TC must operate at the logical level on records." """
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 60)  # enough to split pages
        for record in kernel.tc.log.all_records():
            if isinstance(record, (OpRecord, CompensationRecord)):
                assert not hasattr(record, "page_id")
                if record.op is not None:
                    assert not hasattr(record.op, "page_id")
                    fields = vars(record.op)
                    assert "page" not in str(sorted(fields)).lower()

    def test_dc_knows_nothing_about_transactions(self):
        """§1.2: "A DC knows nothing about transactions, their commit or
        abort" — operation messages carry no transaction id."""
        from repro.common.api import PerformOperation
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(PerformOperation)}
        assert "txn_id" not in field_names
        assert "transaction" not in " ".join(field_names)

    def test_dc_cannot_tell_forward_from_inverse(self):
        """§4.2.1: the DC does not know "whether this operation is done as
        forward activity, or as an inverse during rollback" — inverses are
        ordinary operations."""
        kernel = small_kernel()
        kernel.create_table("t")
        with kernel.begin() as txn:
            txn.insert("t", 1, "v")
        ops_before = kernel.metrics.get("dc.operations")
        roller = kernel.begin()
        roller.update("t", 1, "dirty")
        roller.abort()  # sends an inverse UpdateOp
        # the DC served them all through the same entry point
        assert kernel.metrics.get("dc.operations") > ops_before


class TestSection41Responsibilities:
    def test_411_2b_rollback_is_inverse_ops_in_reverse_order(self):
        """§4.1.1(2b): rollback = "logical operations, followed in reverse
        chronological order by logical operations that are inverses." """
        kernel = small_kernel()
        kernel.create_table("t")
        txn = kernel.begin()
        txn.insert("t", 1, "a")
        txn.insert("t", 2, "b")
        txn.abort()
        clrs = [
            r
            for r in kernel.tc.log.all_records()
            if isinstance(r, CompensationRecord) and r.txn_id == txn.txn_id
        ]
        # inverses appear newest-first: delete(2) then delete(1)
        assert [clr.op.key for clr in clrs] == [2, 1]

    def test_411_3_log_records_written_in_opsr_order(self):
        """§4.1.1(3): "logical log records can be written in OPSR order"
        — LSN order equals append order, always."""
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 30)
        lsns = [record.lsn for record in kernel.tc.log.all_records()]
        assert lsns == sorted(lsns)

    def test_412_1_operations_are_atomic(self):
        """§4.1.2(1): multi-page operations appear indivisible — a cleanup
        spanning many leaves is all-or-nothing to later readers."""
        kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
        kernel.create_table("v", versioned=True)
        with kernel.begin() as txn:
            for key in range(60):
                txn.insert("v", key, f"v{key}")
        from repro.common.ops import ReadFlavor

        rows = kernel.tc.scan_other("v", flavor=ReadFlavor.READ_COMMITTED)
        assert len(rows) == 60  # the commit's promote hit every leaf


class TestSection42Contracts:
    def test_unique_request_ids_and_resend_reuse(self):
        """§4.2: "Resends of the request can be characterized by re-use of
        the operation identifier" — and ids never repeat otherwise."""
        kernel = small_kernel(loss_rate=0.3, seed=9)
        kernel.create_table("t")
        populate(kernel, 30)
        mutation_lsns = [
            r.lsn for r in kernel.tc.log.all_records() if isinstance(r, OpRecord)
        ]
        assert len(mutation_lsns) == len(set(mutation_lsns))
        assert kernel.metrics.get("tc.resends") > 0  # resends happened...
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 30  # ...exactly-once regardless

    def test_causality_nothing_stable_reflects_unlogged_ops(self):
        """§4.2 Causality: "the sender of a message remembers that it sent
        the message whenever the receiver remembers receiving it." """
        kernel = small_kernel()
        kernel.create_table("t")
        loser = kernel.begin()
        loser.insert("t", 1, "never forced")
        flushed = kernel.dc.buffer.flush_all()
        assert flushed == 0  # WAL across components held
        assert not any(
            kernel.dc.storage.read_page(pid)
            for pid in kernel.dc.storage.page_ids()
            if any(
                record.key == 1
                for record in kernel.dc.storage.read_page(pid).records
            )
        )

    def test_recovery_ordering_structures_before_redo(self):
        """§4.2 Recovery: "The DC must recover its storage structures
        first so that they are well-formed, before TC can perform redo." """
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 100)  # splits happened
        kernel.crash_dc()
        kernel.dc.recover(notify_tcs=False)  # structures only
        kernel.dc.table("t").structure.validate()  # well-formed already
        kernel.tc._on_dc_restart(kernel.dc)  # only now: TC redo
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 100

    def test_contract_termination_releases_resend_obligation(self):
        """§4.2: checkpoint "releases the contract requiring TC to be
        willing to resend these operations." """
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 20)
        assert kernel.checkpoint()
        kernel.crash_tc()
        stats = kernel.recover_tc()
        assert stats["redo_ops"] == 0


class TestSection52SystemTransactions:
    def test_system_transactions_unrelated_to_user_transactions(self):
        """§4.1.2(2): system transactions "are not related in any way to
        user-invoked transactions known to the TC" — an aborted user
        transaction does NOT undo the splits it triggered."""
        kernel = small_kernel()
        kernel.create_table("t")
        txn = kernel.begin()
        for key in range(60):
            txn.insert("t", key, f"v{key}")
        splits = kernel.metrics.get("btree.leaf_splits")
        assert splits > 0
        txn.abort()
        # records rolled back; the page structure stays split
        with kernel.begin() as check:
            assert check.scan("t") == []
        assert kernel.metrics.get("btree.leaf_splits") >= splits
        kernel.dc.table("t").structure.validate()

    def test_smo_replay_moves_ahead_of_tc_operations(self):
        """§5.2.2: "the page split is executed earlier in the update
        sequence relative to the TC operations that triggered the split"
        during recovery — and repeat-history still works."""
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 100)
        dclog_records = kernel.dc.storage.dc_log_length()
        assert dclog_records > 0
        kernel.crash_dc()
        kernel.recover_dc()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == 100


class TestSection53PartialFailures:
    def test_independent_failure_no_amnesia(self):
        """§3.2(4): "a crash of one of them should not force amnesia for
        the other component." """
        kernel = small_kernel()
        kernel.create_table("t")
        populate(kernel, 50)
        kernel.checkpoint()
        cached = len(kernel.dc.buffer.cached_ids())
        kernel.crash_tc()
        kernel.recover_tc()
        # the DC kept (nearly) its whole cache across the TC's crash
        assert len(kernel.dc.buffer.cached_ids()) >= cached - 1
        # and conversely: the TC keeps its log across a DC crash
        log_records = kernel.tc.log.record_count()
        kernel.crash_dc()
        kernel.recover_dc()
        assert kernel.tc.log.record_count() >= log_records


class TestSection62SharingWithout2PC:
    def test_commit_is_unilateral_no_blocking_window(self):
        """§6.2.2: "Once the TC decides to commit, the transaction is
        committed everywhere ... Readers are never blocked." """
        from repro.cloud.movie_site import MovieSite

        site = MovieSite()
        site.add_movie("m", {"title": "M"})
        site.register_user("u", {})
        msgs_before = site.metrics.get("twopc.messages")
        site.post_review("u", "m", "spans two DCs")
        assert site.metrics.get("twopc.messages") == msgs_before  # no 2PC
        # a reader during an open write: never blocked
        tc = site.owner_of("u")
        open_txn = tc.begin()
        site.reviews.insert(open_txn, ("m2", "u"), "pending")
        assert site.reviews_for_movie("m") != []  # returns immediately
        open_txn.abort()
