"""FIG1 — unbundled TC+DC vs the monolithic baseline (Figure 1, Section 7).

The paper concedes "our unbundling approach inevitably has longer code
paths" and bets the flexibility is worth it.  This experiment quantifies
the concession: identical OLTP work through both engines, reporting
throughput plus the *mechanism counts* that explain the gap — messages,
probe round trips, undo-info reads, locks, log bytes.  The expected shape:
the monolithic engine wins on raw single-node ops/s; the unbundled kernel
pays one message per operation plus fetch-ahead probes, and sends zero
messages in the monolithic case by definition.

The ``unbundled-optimized`` series runs the same work through
:meth:`TcConfig.optimized` (docs/architecture.md §9): operation batching,
the undo-info cache and group commit compose to collapse the per-operation
round trips into roughly one envelope per transaction.  The default
configuration is untouched — the original FIG1 rows keep their shape.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import (
    fresh_monolithic,
    fresh_unbundled,
    load_keys,
    series,
    write_results,
)
from repro.common.config import TcConfig
from repro.workloads.generator import OltpMix, WorkloadRunner

TXNS = 150
MIX = OltpMix(updates=0.4, inserts=0.1, ops_per_txn=4)


def make_runner(engine):
    """One runner per engine for the whole benchmark: the runner's insert
    counter advances across rounds, so repeated rounds keep inserting
    fresh keys instead of replaying round one's (which would turn every
    later round into a duplicate-key abort storm and measure rollback
    throughput rather than the OLTP mix)."""
    return WorkloadRunner(engine.begin, "t", keyspace=300, mix=MIX, seed=7)


def run_workload(engine):
    return make_runner(engine).run(TXNS)


@pytest.mark.benchmark(group="fig1-oltp")
def test_fig1_unbundled_oltp(benchmark):
    kernel = fresh_unbundled()
    load_keys(kernel, 300)
    runner = make_runner(kernel)
    best = {"tps": 0.0}

    def run():
        stats = runner.run(TXNS)
        # Report the best round (the pytest-benchmark "min" convention):
        # single 150-txn rounds are scheduler-noise-sensitive either way.
        best["tps"] = max(best["tps"], stats.txns_per_second)
        return stats

    benchmark(run)
    counters = kernel.metrics.counters()
    benchmark.extra_info.update(
        {
            "messages": counters.get("channel.requests", 0),
            "probes": counters.get("tc.probes", 0),
            "undo_info_reads": counters.get("tc.undo_info_reads", 0),
            "locks": counters.get("locks.granted", 0),
            "log_bytes": counters.get("tclog.bytes", 0),
        }
    )
    series(
        "FIG1 unbundled",
        txns_per_s=round(best["tps"]),
        messages=counters.get("channel.requests", 0),
        probes=counters.get("tc.probes", 0),
        undo_info_reads=counters.get("tc.undo_info_reads", 0),
        locks=counters.get("locks.granted", 0),
    )


@pytest.mark.benchmark(group="fig1-oltp")
def test_fig1_unbundled_optimized_oltp(benchmark):
    """The same OLTP mix through the §9 fast paths (ISSUE: close the gap)."""
    kernel = fresh_unbundled(tc=TcConfig.optimized())
    load_keys(kernel, 300)
    runner = make_runner(kernel)
    best = {"tps": 0.0}

    def run():
        stats = runner.run(TXNS)
        # Report the best round (the pytest-benchmark "min" convention):
        # single 150-txn rounds are scheduler-noise-sensitive either way.
        best["tps"] = max(best["tps"], stats.txns_per_second)
        return stats

    benchmark(run)
    counters = kernel.metrics.counters()
    benchmark.extra_info.update(
        {
            "messages": counters.get("channel.requests", 0),
            "batches": counters.get("channel.batches", 0),
            "undo_cache_hits": counters.get("tc.undo_cache_hits", 0),
            "undo_info_reads": counters.get("tc.undo_info_reads", 0),
            "locks": counters.get("locks.granted", 0),
            "log_bytes": counters.get("tclog.bytes", 0),
        }
    )
    series(
        "FIG1 unbundled-optimized",
        txns_per_s=round(best["tps"]),
        messages=counters.get("channel.requests", 0),
        batches=counters.get("channel.batches", 0),
        undo_cache_hits=counters.get("tc.undo_cache_hits", 0),
        undo_info_reads=counters.get("tc.undo_info_reads", 0),
        locks=counters.get("locks.granted", 0),
    )


@pytest.mark.benchmark(group="fig1-oltp")
def test_fig1_monolithic_oltp(benchmark):
    engine = fresh_monolithic()
    load_keys(engine, 300)
    runner = make_runner(engine)
    best = {"tps": 0.0}

    def run():
        stats = runner.run(TXNS)
        # Report the best round (the pytest-benchmark "min" convention):
        # single 150-txn rounds are scheduler-noise-sensitive either way.
        best["tps"] = max(best["tps"], stats.txns_per_second)
        return stats

    benchmark(run)
    counters = engine.metrics.counters()
    benchmark.extra_info.update(
        {
            "messages": counters.get("channel.requests", 0),
            "locks": counters.get("locks.granted", 0),
            "log_bytes": counters.get("mono.log_bytes", 0),
        }
    )
    series(
        "FIG1 monolithic",
        txns_per_s=round(best["tps"]),
        messages=counters.get("channel.requests", 0),
        probes=0,
        undo_info_reads=0,
        locks=counters.get("locks.granted", 0),
    )


@pytest.mark.benchmark(group="fig1-reads")
def test_fig1_unbundled_point_reads(benchmark):
    kernel = fresh_unbundled()
    load_keys(kernel, 300)

    def reads():
        with kernel.begin() as txn:
            for key in range(0, 300, 3):
                txn.read("t", key)

    benchmark(reads)


@pytest.mark.benchmark(group="fig1-reads")
def test_fig1_monolithic_point_reads(benchmark):
    engine = fresh_monolithic()
    load_keys(engine, 300)

    def reads():
        with engine.begin() as txn:
            for key in range(0, 300, 3):
                txn.read("t", key)

    benchmark(reads)


@pytest.mark.benchmark(group="fig1-message-overhead")
def test_fig1_message_amplification(benchmark):
    """Messages per logical operation — the structural unbundling cost."""
    kernel = fresh_unbundled()
    load_keys(kernel, 100)
    before_msgs = kernel.metrics.get("channel.requests")
    before_ops = 0

    def txn_of_four():
        with kernel.begin() as txn:
            txn.update("t", 1, "u")
            txn.update("t", 2, "u")
            txn.read("t", 3)
            txn.read("t", 4)

    benchmark(txn_of_four)
    total_msgs = kernel.metrics.get("channel.requests") - before_msgs
    rounds = benchmark.stats.stats.rounds if benchmark.stats else 1
    per_txn = total_msgs / max(rounds, 1)
    benchmark.extra_info["messages_per_txn"] = round(per_txn, 2)
    series("FIG1 amplification", messages_per_4op_txn=round(per_txn, 2))


@pytest.mark.benchmark(group="fig1-message-overhead")
def test_fig1_optimized_message_amplification(benchmark):
    """Messages per 4-op transaction once batching + undo caching compose:
    the acceptance bound is <= 3 (one envelope, no undo reads, amortized
    LWM traffic) against ~8 unoptimized."""
    kernel = fresh_unbundled(tc=TcConfig.optimized())
    load_keys(kernel, 100)
    before_msgs = kernel.metrics.get("channel.requests")

    def txn_of_four():
        with kernel.begin() as txn:
            txn.update("t", 1, "u")
            txn.update("t", 2, "u")
            txn.read("t", 3)
            txn.read("t", 4)

    benchmark(txn_of_four)
    total_msgs = kernel.metrics.get("channel.requests") - before_msgs
    rounds = benchmark.stats.stats.rounds if benchmark.stats else 1
    per_txn = total_msgs / max(rounds, 1)
    benchmark.extra_info["messages_per_txn"] = round(per_txn, 2)
    series("FIG1 amplification optimized", messages_per_4op_txn=round(per_txn, 2))
    assert per_txn <= 3.0


def test_fig1_smoke_results():
    """CI smoke: run both unbundled configurations head to head and
    persist ``benchmarks/results/BENCH_fig1.json`` (repro-bench/v2).

    No pytest-benchmark machinery (runs under ``-p no:benchmark``): the
    two engines are timed interleaved, best-of-N, on the same mix and
    seed.  Asserts the structural acceptance properties — the optimized
    configuration sends strictly fewer messages per transaction (and at
    most 3 per 4-op transaction), eliminates undo-info reads, and beats
    the baseline's throughput — and records the measured speedup.
    """
    seed = 7
    txns = 400
    reps = 4

    def build(tc):
        kernel = fresh_unbundled(tc=tc)
        load_keys(kernel, 300)
        runner = WorkloadRunner(kernel.begin, "t", keyspace=300, mix=MIX, seed=seed)
        runner.run(50)  # warm both code paths before timing
        return kernel, runner

    base_kernel, base_runner = build(TcConfig())
    opt_kernel, opt_runner = build(TcConfig.optimized())
    started = time.perf_counter()
    best_base = best_opt = None
    base_txns = opt_txns = 50  # the warm-up transactions already run
    for _ in range(reps):
        t0 = time.perf_counter()
        base_runner.run(txns)
        elapsed = time.perf_counter() - t0
        best_base = elapsed if best_base is None else min(best_base, elapsed)
        base_txns += txns
        t0 = time.perf_counter()
        opt_runner.run(txns)
        elapsed = time.perf_counter() - t0
        best_opt = elapsed if best_opt is None else min(best_opt, elapsed)
        opt_txns += txns
    wall_time_s = time.perf_counter() - started

    base_counters = base_kernel.metrics.counters()
    opt_counters = opt_kernel.metrics.counters()
    # Message accounting excludes the identical 300-txn load phase: the
    # load runs before the workload counters are compared, but both
    # kernels pay it equally, so per-txn rates use totals over all txns
    # (load + warm-up + timed) for a like-for-like comparison.
    total_txns_base = 300 + base_txns
    total_txns_opt = 300 + opt_txns
    base_msgs_per_txn = base_counters.get("channel.requests", 0) / total_txns_base
    opt_msgs_per_txn = opt_counters.get("channel.requests", 0) / total_txns_opt
    base_tps = txns / best_base
    opt_tps = txns / best_opt
    speedup = opt_tps / base_tps

    payload = {
        "mix": "oltp r/w 4-op",
        "txns_timed": txns,
        "reps": reps,
        "baseline_txns_per_s": round(base_tps),
        "optimized_txns_per_s": round(opt_tps),
        "speedup": round(speedup, 2),
        "baseline_messages_per_txn": round(base_msgs_per_txn, 2),
        "optimized_messages_per_txn": round(opt_msgs_per_txn, 2),
        "baseline_undo_info_reads": base_counters.get("tc.undo_info_reads", 0),
        "optimized_undo_info_reads": opt_counters.get("tc.undo_info_reads", 0),
        "optimized_undo_cache_hits": opt_counters.get("tc.undo_cache_hits", 0),
        "optimized_batches": opt_counters.get("channel.batches", 0),
    }
    write_results("fig1", payload, opt_kernel.metrics, seed=seed,
                  wall_time_s=wall_time_s)

    assert opt_msgs_per_txn < base_msgs_per_txn, payload
    assert opt_msgs_per_txn <= 3.0, payload
    assert base_counters.get("tc.undo_info_reads", 0) > 0
    assert opt_counters.get("tc.undo_info_reads", 0) == 0
    assert opt_counters.get("channel.batches", 0) > 0
    assert speedup > 1.5, payload
