"""FIG1 — unbundled TC+DC vs the monolithic baseline (Figure 1, Section 7).

The paper concedes "our unbundling approach inevitably has longer code
paths" and bets the flexibility is worth it.  This experiment quantifies
the concession: identical OLTP work through both engines, reporting
throughput plus the *mechanism counts* that explain the gap — messages,
probe round trips, undo-info reads, locks, log bytes.  The expected shape:
the monolithic engine wins on raw single-node ops/s; the unbundled kernel
pays one message per operation plus fetch-ahead probes, and sends zero
messages in the monolithic case by definition.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_monolithic, fresh_unbundled, load_keys, series
from repro.workloads.generator import OltpMix, WorkloadRunner

TXNS = 150
MIX = OltpMix(updates=0.4, inserts=0.1, ops_per_txn=4)


def run_workload(engine):
    runner = WorkloadRunner(engine.begin, "t", keyspace=300, mix=MIX, seed=7)
    return runner.run(TXNS)


@pytest.mark.benchmark(group="fig1-oltp")
def test_fig1_unbundled_oltp(benchmark):
    kernel = fresh_unbundled()
    load_keys(kernel, 300)

    def run():
        return run_workload(kernel)

    stats = benchmark(run)
    counters = kernel.metrics.counters()
    benchmark.extra_info.update(
        {
            "messages": counters.get("channel.requests", 0),
            "probes": counters.get("tc.probes", 0),
            "undo_info_reads": counters.get("tc.undo_info_reads", 0),
            "locks": counters.get("locks.granted", 0),
            "log_bytes": counters.get("tclog.bytes", 0),
        }
    )
    series(
        "FIG1 unbundled",
        txns_per_s=round(stats.txns_per_second),
        messages=counters.get("channel.requests", 0),
        probes=counters.get("tc.probes", 0),
        undo_info_reads=counters.get("tc.undo_info_reads", 0),
        locks=counters.get("locks.granted", 0),
    )


@pytest.mark.benchmark(group="fig1-oltp")
def test_fig1_monolithic_oltp(benchmark):
    engine = fresh_monolithic()
    load_keys(engine, 300)

    def run():
        return run_workload(engine)

    stats = benchmark(run)
    counters = engine.metrics.counters()
    benchmark.extra_info.update(
        {
            "messages": counters.get("channel.requests", 0),
            "locks": counters.get("locks.granted", 0),
            "log_bytes": counters.get("mono.log_bytes", 0),
        }
    )
    series(
        "FIG1 monolithic",
        txns_per_s=round(stats.txns_per_second),
        messages=counters.get("channel.requests", 0),
        probes=0,
        undo_info_reads=0,
        locks=counters.get("locks.granted", 0),
    )


@pytest.mark.benchmark(group="fig1-reads")
def test_fig1_unbundled_point_reads(benchmark):
    kernel = fresh_unbundled()
    load_keys(kernel, 300)

    def reads():
        with kernel.begin() as txn:
            for key in range(0, 300, 3):
                txn.read("t", key)

    benchmark(reads)


@pytest.mark.benchmark(group="fig1-reads")
def test_fig1_monolithic_point_reads(benchmark):
    engine = fresh_monolithic()
    load_keys(engine, 300)

    def reads():
        with engine.begin() as txn:
            for key in range(0, 300, 3):
                txn.read("t", key)

    benchmark(reads)


@pytest.mark.benchmark(group="fig1-message-overhead")
def test_fig1_message_amplification(benchmark):
    """Messages per logical operation — the structural unbundling cost."""
    kernel = fresh_unbundled()
    load_keys(kernel, 100)
    before_msgs = kernel.metrics.get("channel.requests")
    before_ops = 0

    def txn_of_four():
        with kernel.begin() as txn:
            txn.update("t", 1, "u")
            txn.update("t", 2, "u")
            txn.read("t", 3)
            txn.read("t", 4)

    benchmark(txn_of_four)
    total_msgs = kernel.metrics.get("channel.requests") - before_msgs
    rounds = benchmark.stats.stats.rounds if benchmark.stats else 1
    per_txn = total_msgs / max(rounds, 1)
    benchmark.extra_info["messages_per_txn"] = round(per_txn, 2)
    series("FIG1 amplification", messages_per_4op_txn=round(per_txn, 2))
