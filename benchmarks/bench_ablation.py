"""Ablations of the design choices DESIGN.md calls out.

Not tied to a single paper claim; these sweeps quantify the knobs the
implementation exposes so downstream users can size deployments:

- buffer capacity (eviction pressure vs stable-state reconstruction cost);
- group commit (forces per transaction vs durability batching);
- LWM broadcast frequency (messages vs {LSNin} growth);
- snapshot retention (history bytes vs how far back readers may look).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, load_keys, series
from repro.common.config import DcConfig, TcConfig

N = 300


@pytest.mark.benchmark(group="ablate-buffer")
@pytest.mark.parametrize("capacity", [8, 64, 1024])
def test_ablate_buffer_capacity(benchmark, capacity):
    """Small caches force evictions + reloads through the stable-state
    loader (disk + DC-log replay) — correct but measurably slower."""

    def run():
        kernel = fresh_unbundled(
            dc=DcConfig(page_size=512, buffer_capacity=capacity)
        )
        load_keys(kernel, N)
        kernel.tc.broadcast_eosl()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == N
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = kernel.metrics
    series(
        "ABLATE buffer",
        capacity=capacity,
        evictions=metrics.get("buffer.evictions"),
        misses=metrics.get("buffer.misses"),
        flushes=metrics.get("buffer.flushes"),
    )


@pytest.mark.benchmark(group="ablate-group-commit")
@pytest.mark.parametrize("group_size", [1, 8, 32])
def test_ablate_group_commit(benchmark, group_size):
    """Batching commits amortizes log forces (durability is batched too —
    the classic trade, now spanning the TC/DC message boundary).

    Group commit never trades durability for speed: a lone committer still
    forces before acking, so amortization only shows up with *concurrent*
    committers.  This ablation drives barrier-lockstep committer threads
    and counts how many rode a peer's force instead of paying their own.
    """
    import sys
    import threading

    THREADS = 8
    ROUNDS = 12

    baseline = {}

    def run():
        kernel = fresh_unbundled(
            tc=TcConfig(group_commit_size=group_size, group_commit_deadline_ms=5.0)
        )
        load_keys(kernel, THREADS)
        # The sequential load phase forces once per lone commit; measure
        # the concurrent phase as a delta over it.
        baseline["commits"] = kernel.metrics.get("tc.commits")
        baseline["forces"] = kernel.metrics.get("tclog.forces")
        barrier = threading.Barrier(THREADS)
        errors: list[BaseException] = []

        def worker(slot):
            try:
                for round_index in range(ROUNDS):
                    with kernel.begin() as txn:
                        txn.update("t", slot, f"r{round_index}")
                        # Rendezvous *inside* the transaction so all
                        # threads hit commit (the with-exit) together —
                        # aligning at txn start would let fast commits
                        # drain one by one past a lone-committer check.
                        barrier.wait()
            except BaseException as exc:  # pragma: no cover - asserted below
                errors.append(exc)

        # A tiny switch interval forces frequent preemption, so the
        # committers genuinely overlap inside the coalescer window.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert not errors, errors
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    commits = kernel.metrics.get("tc.commits") - baseline["commits"]
    forces = kernel.metrics.get("tclog.forces") - baseline["forces"]
    riders = kernel.metrics.get("tclog.group_commit_riders")
    assert commits == THREADS * ROUNDS
    series(
        "ABLATE group-commit",
        group_size=group_size,
        commits=commits,
        log_forces=forces,
        riders=riders,
        forces_per_commit=round(forces / commits, 3),
    )
    if group_size > 1:
        # Some committers must have shared a force; with size 1 every
        # commit forces for itself and nobody rides.
        assert riders > 0
        assert forces < commits


@pytest.mark.benchmark(group="ablate-lwm")
@pytest.mark.parametrize("interval", [1, 16, 256])
def test_ablate_lwm_interval(benchmark, interval):
    """Frequent LWMs shrink page {LSNin} sets at a message cost."""

    def run():
        kernel = fresh_unbundled(
            dc=DcConfig(page_size=1024), tc=TcConfig(lwm_interval=interval)
        )
        load_keys(kernel, N)
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    structure = kernel.dc.table("t").structure
    pending = sum(
        structure._fetch(page_id).pending_lsn_count()
        for page_id in structure.leaf_ids()
    )
    series(
        "ABLATE lwm",
        interval=interval,
        lwm_broadcasts=kernel.metrics.get("tc.lwm_broadcasts"),
        pending_lsns_left=pending,
    )


@pytest.mark.benchmark(group="ablate-pipeline")
@pytest.mark.parametrize("deferred", [False, True])
def test_ablate_pipelined_vs_synchronous(benchmark, deferred):
    """Pipelining batches the reply waits; under simulated WAN latency the
    per-transaction simulated time difference is the point."""
    from repro.common.config import ChannelConfig

    def run():
        kernel = fresh_unbundled(
            channel=ChannelConfig(latency_ms=1.0),
        )
        with kernel.begin() as txn:
            for key in range(50):
                txn.insert("t", key, key, deferred=deferred)
            if deferred:
                txn.sync()
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    # Message count (and hence simulated transfer time) is identical; what
    # pipelining removes is the per-operation reply *wait* — 50 inline
    # waits collapse into one sync point.
    sim_ms = sum(c.sim_time_ms for c in kernel.tc.channels().values())
    series(
        "ABLATE pipeline",
        deferred=deferred,
        sim_transfer_ms=round(sim_ms, 1),
        inline_reply_waits=0 if deferred else 50,
        sync_points=kernel.metrics.get("tc.pipeline_syncs"),
        deferred_ops=kernel.metrics.get("tc.deferred_mutations"),
    )


def test_ablate_snapshot_retention_space():
    """Version history costs page bytes proportional to churn kept."""
    rows = []
    for retention in (0, 8, 128):
        kernel = fresh_unbundled(
            dc=DcConfig(
                page_size=4096,
                snapshot_retention=retention,
                snapshot_max_versions=32,
            )
        )
        kernel.dc.create_table("v", versioned=True)
        kernel.tc.refresh_routes(kernel.dc)
        with kernel.begin() as txn:
            for key in range(20):
                txn.insert("v", key, "v0")
        for round_index in range(10):
            with kernel.begin() as txn:
                for key in range(20):
                    txn.update("v", key, f"v{round_index + 1}")
        structure = kernel.dc.table("v").structure
        history_entries = sum(
            len(record.history) for record in structure.iter_range(None, None)
        )
        bytes_used = sum(
            structure._fetch(page_id).used_bytes()
            for page_id in structure.leaf_ids()
        )
        rows.append((retention, history_entries, bytes_used))
    for retention, entries, bytes_used in rows:
        series(
            "ABLATE snapshot-retention",
            retention=retention,
            history_entries=entries,
            page_bytes=bytes_used,
        )
    assert rows[0][1] == 0  # retention 0 keeps no history
    assert rows[2][1] >= rows[1][1]  # larger windows keep at least as much
    assert rows[2][2] > rows[0][2]  # and pay page space for it
