"""Ablations of the design choices DESIGN.md calls out.

Not tied to a single paper claim; these sweeps quantify the knobs the
implementation exposes so downstream users can size deployments:

- buffer capacity (eviction pressure vs stable-state reconstruction cost);
- group commit (forces per transaction vs durability batching);
- LWM broadcast frequency (messages vs {LSNin} growth);
- snapshot retention (history bytes vs how far back readers may look).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, load_keys, series
from repro.common.config import DcConfig, TcConfig

N = 300


@pytest.mark.benchmark(group="ablate-buffer")
@pytest.mark.parametrize("capacity", [8, 64, 1024])
def test_ablate_buffer_capacity(benchmark, capacity):
    """Small caches force evictions + reloads through the stable-state
    loader (disk + DC-log replay) — correct but measurably slower."""

    def run():
        kernel = fresh_unbundled(
            dc=DcConfig(page_size=512, buffer_capacity=capacity)
        )
        load_keys(kernel, N)
        kernel.tc.broadcast_eosl()
        with kernel.begin() as txn:
            assert len(txn.scan("t")) == N
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = kernel.metrics
    series(
        "ABLATE buffer",
        capacity=capacity,
        evictions=metrics.get("buffer.evictions"),
        misses=metrics.get("buffer.misses"),
        flushes=metrics.get("buffer.flushes"),
    )


@pytest.mark.benchmark(group="ablate-group-commit")
@pytest.mark.parametrize("group_size", [1, 8, 32])
def test_ablate_group_commit(benchmark, group_size):
    """Batching commits amortizes log forces (durability is batched too —
    the classic trade, now spanning the TC/DC message boundary)."""

    def run():
        kernel = fresh_unbundled(tc=TcConfig(group_commit_size=group_size))
        load_keys(kernel, N)
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    forces = kernel.metrics.get("tclog.forces")
    series(
        "ABLATE group-commit",
        group_size=group_size,
        commits=N,
        log_forces=forces,
        forces_per_commit=round(forces / N, 3),
    )
    if group_size > 1:
        assert forces < N


@pytest.mark.benchmark(group="ablate-lwm")
@pytest.mark.parametrize("interval", [1, 16, 256])
def test_ablate_lwm_interval(benchmark, interval):
    """Frequent LWMs shrink page {LSNin} sets at a message cost."""

    def run():
        kernel = fresh_unbundled(
            dc=DcConfig(page_size=1024), tc=TcConfig(lwm_interval=interval)
        )
        load_keys(kernel, N)
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    structure = kernel.dc.table("t").structure
    pending = sum(
        structure._fetch(page_id).pending_lsn_count()
        for page_id in structure.leaf_ids()
    )
    series(
        "ABLATE lwm",
        interval=interval,
        lwm_broadcasts=kernel.metrics.get("tc.lwm_broadcasts"),
        pending_lsns_left=pending,
    )


@pytest.mark.benchmark(group="ablate-pipeline")
@pytest.mark.parametrize("deferred", [False, True])
def test_ablate_pipelined_vs_synchronous(benchmark, deferred):
    """Pipelining batches the reply waits; under simulated WAN latency the
    per-transaction simulated time difference is the point."""
    from repro.common.config import ChannelConfig

    def run():
        kernel = fresh_unbundled(
            channel=ChannelConfig(latency_ms=1.0),
        )
        with kernel.begin() as txn:
            for key in range(50):
                txn.insert("t", key, key, deferred=deferred)
            if deferred:
                txn.sync()
        return kernel

    kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    # Message count (and hence simulated transfer time) is identical; what
    # pipelining removes is the per-operation reply *wait* — 50 inline
    # waits collapse into one sync point.
    sim_ms = sum(c.sim_time_ms for c in kernel.tc.channels().values())
    series(
        "ABLATE pipeline",
        deferred=deferred,
        sim_transfer_ms=round(sim_ms, 1),
        inline_reply_waits=0 if deferred else 50,
        sync_points=kernel.metrics.get("tc.pipeline_syncs"),
        deferred_ops=kernel.metrics.get("tc.deferred_mutations"),
    )


def test_ablate_snapshot_retention_space():
    """Version history costs page bytes proportional to churn kept."""
    rows = []
    for retention in (0, 8, 128):
        kernel = fresh_unbundled(
            dc=DcConfig(
                page_size=4096,
                snapshot_retention=retention,
                snapshot_max_versions=32,
            )
        )
        kernel.dc.create_table("v", versioned=True)
        kernel.tc.refresh_routes(kernel.dc)
        with kernel.begin() as txn:
            for key in range(20):
                txn.insert("v", key, "v0")
        for round_index in range(10):
            with kernel.begin() as txn:
                for key in range(20):
                    txn.update("v", key, f"v{round_index + 1}")
        structure = kernel.dc.table("v").structure
        history_entries = sum(
            len(record.history) for record in structure.iter_range(None, None)
        )
        bytes_used = sum(
            structure._fetch(page_id).used_bytes()
            for page_id in structure.leaf_ids()
        )
        rows.append((retention, history_entries, bytes_used))
    for retention, entries, bytes_used in rows:
        series(
            "ABLATE snapshot-retention",
            retention=retention,
            history_entries=entries,
            page_bytes=bytes_used,
        )
    assert rows[0][1] == 0  # retention 0 keeps no history
    assert rows[2][1] >= rows[1][1]  # larger windows keep at least as much
    assert rows[2][2] > rows[0][2]  # and pay page space for it
