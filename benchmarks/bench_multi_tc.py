"""E-MTC / E-TCSERVICE — multiple TCs per DC (Section 6).

Series regenerated:

- throughput as updater TCs scale on one DC (disjoint partitions commute,
  so the DC never serializes them on locks — only on its latches);
- per-TC abLSN page overhead as a function of co-resident TCs;
- the isolation dividend of record-level reset: a TC crash leaves the
  co-resident TC's cached work untouched and costs zero redo for it;
- versioned read-committed vs dirty-read cross-TC read cost;
- **E-TCSERVICE** (process mode): the same Section 6 topology as real OS
  processes — 1/2/4 TC *server* processes over a shared DC-process pool,
  plus cross-TC sharing-mode read cost over the wire.  Results land in
  ``benchmarks/results/BENCH_tcservice.json``.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from benchmarks.conftest import series, write_results
from repro.common.config import DcConfig
from repro.common.ops import ReadFlavor
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import TransactionalComponent

OPS_PER_TC = 120


def shared_deployment(tc_count: int, versioned: bool = False):
    metrics = Metrics()
    dc = DataComponent("dc", config=DcConfig(page_size=2048), metrics=metrics)
    dc.create_table("t", versioned=versioned)
    tcs = []
    for index in range(tc_count):
        tc = TransactionalComponent(metrics=metrics)
        tc.attach_dc(dc)
        tc.ownership_guard = (
            lambda table, key, i=index, n=tc_count: key % n == i
        )
        tcs.append(tc)
    return dc, tcs, metrics


@pytest.mark.benchmark(group="emtc-scaling")
@pytest.mark.parametrize("tc_count", [1, 2, 4])
def test_emtc_updater_scaling(benchmark, tc_count):
    def run():
        dc, tcs, _m = shared_deployment(tc_count)
        for index, tc in enumerate(tcs):
            for op in range(OPS_PER_TC):
                key = op * tc_count + index
                with tc.begin() as txn:
                    txn.insert("t", key, f"tc{index}-{op}")
        return dc

    dc = benchmark(run)
    total = OPS_PER_TC * tc_count
    assert dc.table("t").structure.record_count() == total
    series("E-MTC scaling", tcs=tc_count, inserts=total)


def test_emtc_per_tc_ablsn_overhead():
    """Pages shared by k TCs carry k abLSNs; single-TC pages carry one."""
    rows = []
    for tc_count in (1, 2, 4):
        dc, tcs, _m = shared_deployment(tc_count)
        for index, tc in enumerate(tcs):
            for op in range(60):
                with tc.begin() as txn:
                    txn.insert("t", op * tc_count + index, "v")
        structure = dc.table("t").structure
        pages = [structure._fetch(pid) for pid in structure.leaf_ids()]
        per_page = sum(len(page.ablsns) for page in pages) / len(pages)
        overhead = sum(page.ablsn_overhead_bytes() for page in pages)
        rows.append((tc_count, round(per_page, 2), overhead))
    for tc_count, ablsns_per_page, bytes_total in rows:
        series(
            "E-MTC ablsn-overhead",
            tcs=tc_count,
            ablsns_per_page=ablsns_per_page,
            total_bytes=bytes_total,
        )
    assert rows[-1][1] > rows[0][1]


@pytest.mark.benchmark(group="emtc-crash-isolation")
def test_emtc_record_reset_isolates_cohabitant(benchmark):
    """Section 6.1.2's payoff, measured: the surviving TC replays nothing."""
    dc, (tc1, tc2), metrics = shared_deployment(2)
    for op in range(100):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, "tc1")
        with tc2.begin() as txn:
            txn.insert("t", op * 2 + 1, "tc2")
    tc1.checkpoint()
    loser = tc1.begin()
    loser.update("t", 0, "lost")
    kernel_redo_before = metrics.get("tc.redo_ops")
    tc1.crash()

    def restart():
        return tc1.restart(ResetMode.RECORD_RESET)

    stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    total_redo = metrics.get("tc.redo_ops") - kernel_redo_before
    with tc2.begin() as txn:
        assert txn.read("t", 1) == "tc2"  # untouched, unreplayed
    series(
        "E-MTC crash-isolation",
        failed_tc_redo=stats["redo_ops"],
        surviving_tc_redo=total_redo - stats["redo_ops"],
    )
    assert total_redo == stats["redo_ops"]  # only the failed TC replayed


@pytest.mark.benchmark(group="emtc-read-flavors")
@pytest.mark.parametrize("flavor", [ReadFlavor.READ_COMMITTED, ReadFlavor.DIRTY])
def test_emtc_cross_tc_read_cost(benchmark, flavor):
    dc, (tc1, tc2), _m = shared_deployment(2, versioned=True)
    for op in range(100):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, f"v{op}")
    # an open writer keeps pending versions alive
    writer = tc1.begin()
    writer.update("t", 0, "pending")

    def read():
        return tc2.read_other("t", 0, flavor)

    value = benchmark(read)
    expected = "v0" if flavor is ReadFlavor.READ_COMMITTED else "pending"
    assert value == expected
    writer.abort()
    series("E-MTC read-flavor", flavor=flavor.value, value=value)


def test_emtc_reader_throughput_unaffected_by_writer():
    """Readers never block: same read count with and without a writer."""
    import time

    dc, (tc1, tc2), _m = shared_deployment(2, versioned=True)
    for op in range(200):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, "v")

    def timed_reads():
        start = time.perf_counter()
        for op in range(200):
            tc2.read_other("t", op * 2, ReadFlavor.READ_COMMITTED)
        return time.perf_counter() - start

    idle = timed_reads()
    writer = tc1.begin()
    for op in range(0, 100, 10):
        writer.update("t", op * 2, "pending")
    busy = timed_reads()
    writer.abort()
    series(
        "E-MTC reader-isolation",
        idle_ms=round(idle * 1000, 1),
        with_writer_ms=round(busy * 1000, 1),
        blocked="never",
    )
    assert busy < idle * 5  # same order of magnitude: no blocking cliffs


# ---------------------------------------------------------------------------
# E-TCSERVICE — the TC tier as real OS processes (docs/architecture.md §16)
# ---------------------------------------------------------------------------

TXNS_PER_SERIES = 96  # total work per row, split across the tier
_TCSERVICE_RESULTS: dict[str, object] = {}


def _publish_tcservice() -> None:
    write_results("tcservice", dict(_TCSERVICE_RESULTS), seed=0)


def _owned_keys(deployment, tc_name: str, count: int) -> list[int]:
    """The first ``count`` integer keys routed to ``tc_name``."""
    router = deployment.router
    keys = []
    key = 0
    while len(keys) < count:
        if router.owner_of(key).name == tc_name:
            keys.append(key)
        key += 1
    return keys


def _tcservice_throughput(tc_count: int) -> dict[str, object]:
    """Drive ``TXNS_PER_SERIES`` committed txns through a tc_count tier.

    One driver thread per TC — the tier's natural client concurrency
    (each TC server serves its spawning connection).  Horizontal scaling
    comes from the *server* side: N TC processes commit concurrently
    against the shared DC pool instead of serializing in one event loop.
    """
    from repro.cloud.router import TcServiceDeployment

    per_tc = TXNS_PER_SERIES // tc_count
    with TcServiceDeployment(
        tc_count=tc_count, dc_count=2, partitions=8
    ) as deployment:
        deployment.create_table("t")
        plans = {
            name: _owned_keys(deployment, name, per_tc)
            for name in deployment.tcs
        }
        for name, keys in plans.items():
            tc = deployment.tcs[name]
            with tc.begin() as txn:
                for key in keys:
                    txn.insert("t", key, 0)
        errors: list[BaseException] = []

        def drive(tc, keys) -> None:
            try:
                for key in keys:
                    with tc.begin() as txn:
                        txn.increment("t", key, 1)
                        txn.increment("t", key, 1)
                        txn.update("t", key, 2)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(deployment.tcs[name], keys))
            for name, keys in plans.items()
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        # every committed txn left its key at exactly 2 — the increment
        # canary across the whole tier
        for name, keys in plans.items():
            tc = deployment.tcs[name]
            for key in keys[:5]:
                assert tc.read_other("t", key) == 2
        txns = per_tc * tc_count
        return {
            "tcs": tc_count,
            "txns": txns,
            "wall_s": round(elapsed, 3),
            "txns_per_s": round(txns / elapsed, 1),
        }


@pytest.mark.process
def test_etcservice_process_tier_scaling():
    """1/2/4 TC server processes over one shared 2-DC process pool."""
    rows = [_tcservice_throughput(tc_count) for tc_count in (1, 2, 4)]
    for row in rows:
        series("E-TCSERVICE scaling", **row)
    _TCSERVICE_RESULTS["scaling"] = rows
    _TCSERVICE_RESULTS["cores"] = os.cpu_count()
    _publish_tcservice()
    best_multi = max(row["txns_per_s"] for row in rows[1:])
    single = rows[0]["txns_per_s"]
    _TCSERVICE_RESULTS["multi_vs_single"] = round(best_multi / single, 3)
    _publish_tcservice()
    if (os.cpu_count() or 1) >= 4:
        # On a real multi-core host the tier must actually scale out.
        assert best_multi >= 1.3 * single, rows


@pytest.mark.process
def test_etcservice_cross_tc_sharing_modes():
    """Section 6.3 read flavors, now with a process boundary per hop."""
    from repro.cloud.router import TcServiceDeployment

    with TcServiceDeployment(
        tc_count=2, dc_count=2, partitions=8
    ) as deployment:
        deployment.create_table("t")
        router = deployment.router
        owner = router.owner_of("shared")
        other = next(
            tc for tc in deployment.tcs.values() if tc.name != owner.name
        )
        with owner.begin() as txn:
            txn.insert("t", "shared", "committed")
        writer = owner.begin()
        writer.update("t", "shared", "pending")
        # the optimized TC batches mutations — flush so the pending
        # version reaches the DC before the cross-TC reads probe it
        writer.sync()
        rows = []
        for flavor in (ReadFlavor.READ_COMMITTED, ReadFlavor.DIRTY):
            start = time.perf_counter()
            reads = 40
            for _ in range(reads):
                value = other.read_other("t", "shared", flavor=flavor)
            elapsed = time.perf_counter() - start
            expected = (
                "committed"
                if flavor is ReadFlavor.READ_COMMITTED
                else "pending"
            )
            assert value == expected
            rows.append(
                {
                    "flavor": flavor.value,
                    "value": value,
                    "read_us": round(elapsed / reads * 1e6, 1),
                }
            )
            series("E-TCSERVICE sharing", **rows[-1])
        writer.abort()
        # the tier-wide default flavor is switchable at runtime
        deployment.set_sharing_mode("dirty")
        writer = owner.begin()
        writer.update("t", "shared", "pending2")
        writer.sync()
        assert other.read_other("t", "shared") == "committed"  # explicit default arg
        writer.abort()
        _TCSERVICE_RESULTS["sharing"] = rows
        _publish_tcservice()
