"""E-MTC — multiple TCs per DC (Section 6).

Series regenerated:

- throughput as updater TCs scale on one DC (disjoint partitions commute,
  so the DC never serializes them on locks — only on its latches);
- per-TC abLSN page overhead as a function of co-resident TCs;
- the isolation dividend of record-level reset: a TC crash leaves the
  co-resident TC's cached work untouched and costs zero redo for it;
- versioned read-committed vs dirty-read cross-TC read cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import series
from repro.common.config import DcConfig
from repro.common.ops import ReadFlavor
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import TransactionalComponent

OPS_PER_TC = 120


def shared_deployment(tc_count: int, versioned: bool = False):
    metrics = Metrics()
    dc = DataComponent("dc", config=DcConfig(page_size=2048), metrics=metrics)
    dc.create_table("t", versioned=versioned)
    tcs = []
    for index in range(tc_count):
        tc = TransactionalComponent(metrics=metrics)
        tc.attach_dc(dc)
        tc.ownership_guard = (
            lambda table, key, i=index, n=tc_count: key % n == i
        )
        tcs.append(tc)
    return dc, tcs, metrics


@pytest.mark.benchmark(group="emtc-scaling")
@pytest.mark.parametrize("tc_count", [1, 2, 4])
def test_emtc_updater_scaling(benchmark, tc_count):
    def run():
        dc, tcs, _m = shared_deployment(tc_count)
        for index, tc in enumerate(tcs):
            for op in range(OPS_PER_TC):
                key = op * tc_count + index
                with tc.begin() as txn:
                    txn.insert("t", key, f"tc{index}-{op}")
        return dc

    dc = benchmark(run)
    total = OPS_PER_TC * tc_count
    assert dc.table("t").structure.record_count() == total
    series("E-MTC scaling", tcs=tc_count, inserts=total)


def test_emtc_per_tc_ablsn_overhead():
    """Pages shared by k TCs carry k abLSNs; single-TC pages carry one."""
    rows = []
    for tc_count in (1, 2, 4):
        dc, tcs, _m = shared_deployment(tc_count)
        for index, tc in enumerate(tcs):
            for op in range(60):
                with tc.begin() as txn:
                    txn.insert("t", op * tc_count + index, "v")
        structure = dc.table("t").structure
        pages = [structure._fetch(pid) for pid in structure.leaf_ids()]
        per_page = sum(len(page.ablsns) for page in pages) / len(pages)
        overhead = sum(page.ablsn_overhead_bytes() for page in pages)
        rows.append((tc_count, round(per_page, 2), overhead))
    for tc_count, ablsns_per_page, bytes_total in rows:
        series(
            "E-MTC ablsn-overhead",
            tcs=tc_count,
            ablsns_per_page=ablsns_per_page,
            total_bytes=bytes_total,
        )
    assert rows[-1][1] > rows[0][1]


@pytest.mark.benchmark(group="emtc-crash-isolation")
def test_emtc_record_reset_isolates_cohabitant(benchmark):
    """Section 6.1.2's payoff, measured: the surviving TC replays nothing."""
    dc, (tc1, tc2), metrics = shared_deployment(2)
    for op in range(100):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, "tc1")
        with tc2.begin() as txn:
            txn.insert("t", op * 2 + 1, "tc2")
    tc1.checkpoint()
    loser = tc1.begin()
    loser.update("t", 0, "lost")
    kernel_redo_before = metrics.get("tc.redo_ops")
    tc1.crash()

    def restart():
        return tc1.restart(ResetMode.RECORD_RESET)

    stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    total_redo = metrics.get("tc.redo_ops") - kernel_redo_before
    with tc2.begin() as txn:
        assert txn.read("t", 1) == "tc2"  # untouched, unreplayed
    series(
        "E-MTC crash-isolation",
        failed_tc_redo=stats["redo_ops"],
        surviving_tc_redo=total_redo - stats["redo_ops"],
    )
    assert total_redo == stats["redo_ops"]  # only the failed TC replayed


@pytest.mark.benchmark(group="emtc-read-flavors")
@pytest.mark.parametrize("flavor", [ReadFlavor.READ_COMMITTED, ReadFlavor.DIRTY])
def test_emtc_cross_tc_read_cost(benchmark, flavor):
    dc, (tc1, tc2), _m = shared_deployment(2, versioned=True)
    for op in range(100):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, f"v{op}")
    # an open writer keeps pending versions alive
    writer = tc1.begin()
    writer.update("t", 0, "pending")

    def read():
        return tc2.read_other("t", 0, flavor)

    value = benchmark(read)
    expected = "v0" if flavor is ReadFlavor.READ_COMMITTED else "pending"
    assert value == expected
    writer.abort()
    series("E-MTC read-flavor", flavor=flavor.value, value=value)


def test_emtc_reader_throughput_unaffected_by_writer():
    """Readers never block: same read count with and without a writer."""
    import time

    dc, (tc1, tc2), _m = shared_deployment(2, versioned=True)
    for op in range(200):
        with tc1.begin() as txn:
            txn.insert("t", op * 2, "v")

    def timed_reads():
        start = time.perf_counter()
        for op in range(200):
            tc2.read_other("t", op * 2, ReadFlavor.READ_COMMITTED)
        return time.perf_counter() - start

    idle = timed_reads()
    writer = tc1.begin()
    for op in range(0, 100, 10):
        writer.update("t", op * 2, "pending")
    busy = timed_reads()
    writer.abort()
    series(
        "E-MTC reader-isolation",
        idle_ms=round(idle * 1000, 1),
        with_writer_ms=round(busy * 1000, 1),
        blocked="never",
    )
    assert busy < idle * 5  # same order of magnitude: no blocking cliffs
