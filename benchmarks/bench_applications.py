"""APP — application-level throughput on the unbundled kernel.

The paper's Section 2 motivates unbundling with Web 2.0 applications;
these benchmarks time the three bundled applications end to end —
photo sharing (heterogeneous access methods + referential integrity),
the RDF triple store (three clustered orderings per assertion), and the
secondary-index schema layer (index maintenance riding the transaction).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import series
from repro import UnbundledKernel
from repro.schema import Schema
from repro.workloads.photo_sharing import PhotoSharingApp
from repro.workloads.rdf_store import TripleStore


@pytest.mark.benchmark(group="app-photo")
def test_app_photo_review_flow(benchmark):
    app = PhotoSharingApp()
    app.register_user("ada", {"name": "Ada"})
    app.upload_photo("p0", "ada", {"title": "Seed"}, ["seed"])
    counter = {"n": 0}

    def review():
        # one registration + one multi-table review transaction per round
        counter["n"] += 1
        user = f"u{counter['n']}"
        app.register_user(user, {"name": user})
        app.review_photo("p0", user, f"great shot number {counter['n']}", 5)

    benchmark(review)
    series(
        "APP photo",
        reviews=counter["n"],
        phrase_entries=len(app.photos_matching_phrase("great shot")),
    )


@pytest.mark.benchmark(group="app-rdf")
def test_app_rdf_assertion(benchmark):
    store = TripleStore()
    counter = {"n": 0}

    def assert_triple():
        counter["n"] += 1
        store.add(f"s{counter['n']}", "p", f"o{counter['n'] % 10}")

    benchmark(assert_triple)
    series("APP rdf-assert", triples=store.count())


@pytest.mark.benchmark(group="app-rdf")
def test_app_rdf_pattern_query(benchmark):
    store = TripleStore()
    store.add_all(
        [(f"s{i}", f"p{i % 5}", f"o{i % 10}") for i in range(200)]
    )

    def query():
        return store.match(None, "p3", None)

    rows = benchmark(query)
    assert len(rows) == 40
    series("APP rdf-query", matched=len(rows))


@pytest.mark.benchmark(group="app-schema")
def test_app_schema_indexed_insert(benchmark):
    kernel = UnbundledKernel()
    schema = Schema(kernel)
    table = schema.table(
        "users",
        indexes={
            "by_email": lambda key, value: value["email"],
            "by_age": lambda key, value: value["age"],
        },
        unique={"by_email"},
    )
    counter = {"n": 0}

    def indexed_insert():
        counter["n"] += 1
        with kernel.begin() as txn:
            table.insert(
                txn,
                counter["n"],
                {"email": f"user{counter['n']}@x.org", "age": counter["n"] % 90},
            )

    benchmark(indexed_insert)
    with kernel.begin() as txn:
        table.verify_indexes(txn)
    series("APP schema", rows=counter["n"], indexes=2)


@pytest.mark.benchmark(group="app-schema")
def test_app_schema_index_lookup(benchmark):
    kernel = UnbundledKernel()
    schema = Schema(kernel)
    table = schema.table(
        "users", indexes={"by_age": lambda key, value: value["age"]}
    )
    with kernel.begin() as txn:
        for key in range(200):
            table.insert(txn, key, {"age": key % 90})

    def lookup():
        with kernel.begin() as txn:
            return table.lookup(txn, "by_age", 30)

    keys = benchmark(lookup)
    expected = len([k for k in range(200) if k % 90 == 30])
    assert len(keys) == expected
    series("APP schema-lookup", hits=len(keys))
