"""E-WIRE — the fast-path codec against the tagged form (§17).

The process transport's CPU floor is the codec: every §4.2.1 envelope is
encoded once and decoded once per hop.  This benchmark runs the *hot
vocabulary* — batched perform/reply envelopes, scan replies full of
``RecordView`` rows, the TC-service per-transaction control traffic
(TxnWrite/TxnReadReply/TxnCommit/TxnAck) and RSSP hints — through both
forms and asserts the negotiated fast path is at least **2x** the tagged
msgs/s for the full encode+decode round trip.  Pure CPU, single process,
no sockets: the bar holds on any machine, so it is asserted everywhere
(unlike the scale-out series, which needs cores).

Results land in ``benchmarks/results/BENCH_wire.json`` (repro-bench/v2):
per-message-kind rows (msgs/s both ways, frame sizes, speedup) plus the
headline aggregate.
"""

from __future__ import annotations

import time

from benchmarks.conftest import series, write_results
from repro.common import api
from repro.common.ops import (
    IncrementOp,
    InsertOp,
    OpResult,
    OpStatus,
    ReadOp,
    UpdateOp,
)
from repro.common.records import RecordView
from repro.net import rpc, tcrpc, wire

#: Round-trips per message kind per timing pass.
ITERATIONS = 2000
PASSES = 3


def hot_vocabulary() -> dict[str, object]:
    """One representative instance per hot message kind.

    Shapes follow the real traffic: 8-op batch envelopes (the TC's
    ``batch_max_ops`` default), 24-byte values, a 20-row scan reply, and
    the small per-transaction control messages of the TC service tier.
    """
    def op_for(i: int):
        if i % 4 == 0:
            return InsertOp(table="t", key=i, value="x" * 24)
        if i % 4 == 1:
            return UpdateOp(table="t", key=i, value="y" * 24)
        if i % 4 == 2:
            return IncrementOp(table="t", key=i, delta=1)
        return ReadOp(table="t", key=i)

    batch = api.BatchedPerform(
        tc_id=1,
        ops=tuple(
            api.PerformOperation(tc_id=1, op_id=i, op=op_for(i), eosl=i)
            for i in range(1, 9)
        ),
        eosl=8,
    )
    replies = api.BatchedReply(
        tc_id=1,
        replies=tuple(
            api.OperationReply(tc_id=1, op_id=i, result=OpResult.okay("z" * 24))
            for i in range(1, 9)
        ),
    )
    scan = api.OperationReply(
        tc_id=1,
        op_id=3,
        result=OpResult(
            status=OpStatus.OK,
            records=tuple(RecordView(key=i, value="v" * 24) for i in range(20)),
        ),
    )
    return {
        "BatchedPerform_8ops": batch,
        "BatchedReply_8ops": replies,
        "ScanReply_20rows": scan,
        "TxnWrite": tcrpc.TxnWrite(
            tc_id=1, txn_id=42, verb="insert", table="t", key=7, value="v" * 24
        ),
        "TxnReadReply": tcrpc.TxnReadReply(
            tc_id=1, txn_id=42, found=True, value="v" * 24
        ),
        "TxnCommit": tcrpc.TxnCommit(tc_id=1, txn_id=42),
        "TxnAck": tcrpc.TxnAck(tc_id=1, txn_id=42),
        "RsspHint": rpc.RsspHint(tc_id=1, dc_name="dc1", lsn=12345),
    }


def time_roundtrips(message, fast, scratch) -> float:
    """Best-of-PASSES seconds for ITERATIONS encode+decode round trips."""
    best = float("inf")
    for _ in range(PASSES):
        begin = time.perf_counter()
        for _ in range(ITERATIONS):
            rpc.unpack_frame(
                rpc.pack_frame(rpc.PUSH, 7, message, fast, scratch)
            )
        best = min(best, time.perf_counter() - begin)
    return best


def test_ewire_fast_codec_throughput():
    fast = wire.negotiate(wire.fast_vocabulary())
    assert fast, "the full vocabulary must self-negotiate"
    scratch = bytearray()
    messages = hot_vocabulary()

    rows = []
    total_tagged_s = 0.0
    total_fast_s = 0.0
    for name, message in messages.items():
        # Warm both paths (memo tables, allocator) before timing.
        time_roundtrips(message, None, None)
        time_roundtrips(message, fast, scratch)
        tagged_s = time_roundtrips(message, None, None)
        fast_s = time_roundtrips(message, fast, scratch)
        total_tagged_s += tagged_s
        total_fast_s += fast_s
        row = {
            "message": name,
            "tagged_msgs_per_s": round(ITERATIONS / tagged_s),
            "fast_msgs_per_s": round(ITERATIONS / fast_s),
            "speedup": round(tagged_s / fast_s, 2),
            "tagged_bytes": len(rpc.pack_frame(rpc.PUSH, 7, message)),
            "fast_bytes": len(rpc.pack_frame(rpc.PUSH, 7, message, fast)),
        }
        rows.append(row)
        series("E-WIRE", **row)

    speedup = total_tagged_s / total_fast_s
    msgs = ITERATIONS * len(messages)
    payload = {
        "series": rows,
        "speedup": round(speedup, 2),
        "tagged_msgs_per_s": round(msgs / total_tagged_s),
        "fast_msgs_per_s": round(msgs / total_fast_s),
        "vocabulary_size": len(fast),
        "iterations_per_kind": ITERATIONS,
    }
    write_results("wire", payload)
    series(
        "E-WIRE summary",
        speedup=round(speedup, 2),
        tagged_msgs_per_s=payload["tagged_msgs_per_s"],
        fast_msgs_per_s=payload["fast_msgs_per_s"],
    )
    # The ISSUE 8 acceptance bar: >= 2x for encode+decode over the hot
    # vocabulary.  CPU-only, so asserted on every machine.
    assert speedup >= 2.0, f"fast codec speedup {speedup:.2f}x < 2x"


def test_ewire_equivalence_spot_check():
    """The perf claim is only meaningful if both forms carry the same
    messages — spot-check the benchmark's own vocabulary end to end."""
    fast = wire.negotiate(wire.fast_vocabulary())
    scratch = bytearray()
    for message in hot_vocabulary().values():
        tagged = rpc.unpack_frame(rpc.pack_frame(rpc.PUSH, 7, message))
        fastrt = rpc.unpack_frame(
            rpc.pack_frame(rpc.PUSH, 7, message, fast, scratch)
        )
        assert tagged == fastrt == (rpc.PUSH, 7, message)
