"""E-OOO — out-of-order execution and the abLSN machinery (Section 5.1).

Series regenerated:

- DC throughput under increasing reorder windows (the abLSN containment
  test absorbs arbitrary reordering of non-conflicting operations);
- the cost of duplicate filtering (resends of already-applied operations);
- abLSN space vs the rejected record-level-LSN alternative
  ("very expensive in the space required", Section 5.1.1).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import series
from repro.common.api import PerformOperation
from repro.common.config import ChannelConfig, DcConfig
from repro.common.lsn import LSN_ENCODED_BYTES
from repro.common.ops import InsertOp, RangeReadOp
from repro.dc.data_component import DataComponent
from repro.net.channel import MessageChannel

OPS = 300


def fresh_dc(page_size=2048) -> DataComponent:
    dc = DataComponent("dc", config=DcConfig(page_size=page_size))
    dc.create_table("t")
    dc.register_tc(1, force_log=lambda lsn: lsn)
    return dc


def message(lsn: int) -> PerformOperation:
    return PerformOperation(
        tc_id=1,
        op_id=lsn,
        op=InsertOp(table="t", key=lsn, value=f"v{lsn}"),
        eosl=10**9,
    )


@pytest.mark.benchmark(group="eooo-reorder")
@pytest.mark.parametrize("window", [0, 4, 32])
def test_eooo_apply_under_reordering(benchmark, window):
    def run():
        dc = fresh_dc()
        channel = MessageChannel(
            dc, ChannelConfig(reorder_window=window, seed=11), dc.metrics
        )
        for lsn in range(1, OPS + 1):
            channel.post(message(lsn))
        channel.pump()
        return dc

    dc = benchmark(run)
    result = dc.perform_operation(1, 10**6, RangeReadOp(table="t"))
    assert len(result.records) == OPS
    series("E-OOO reorder", window=window, ops=OPS, correct=True)


@pytest.mark.benchmark(group="eooo-duplicates")
@pytest.mark.parametrize("dup_fraction", [0.0, 0.25, 1.0])
def test_eooo_duplicate_filtering_cost(benchmark, dup_fraction):
    """Resends are absorbed by the abLSN test; measure the filter cost."""

    def run():
        dc = fresh_dc()
        rng = random.Random(5)
        for lsn in range(1, OPS + 1):
            dc.perform_operation(1, lsn, InsertOp(table="t", key=lsn, value="v"))
            if rng.random() < dup_fraction:
                dc.perform_operation(
                    1, lsn, InsertOp(table="t", key=lsn, value="v"), resend=True
                )
        return dc

    dc = benchmark(run)
    filtered = dc.metrics.get("dc.duplicate_ops")
    benchmark.extra_info["duplicates_filtered"] = filtered
    series("E-OOO duplicates", dup_fraction=dup_fraction, filtered=filtered)


def test_eooo_space_model_vs_record_level_lsns():
    """abLSN bytes per page vs one LSN per record, as LWM frequency varies.

    With frequent LWMs the abLSN collapses toward a single low-water LSN
    per page; record-level LSNs scale with record count regardless.
    """
    for lwm_every in (1, 10, 100, None):
        dc = fresh_dc(page_size=2048)
        for lsn in range(1, 201):
            dc.perform_operation(1, lsn, InsertOp(table="t", key=lsn, value="v"))
            if lwm_every is not None and lsn % lwm_every == 0:
                dc.low_water_mark(1, lsn)
        structure = dc.table("t").structure
        pages = structure.leaf_ids()
        ablsn_bytes = sum(
            structure._fetch(page_id).ablsn_overhead_bytes() for page_id in pages
        )
        record_bytes = LSN_ENCODED_BYTES * structure.record_count()
        series(
            "E-OOO space",
            lwm_every=lwm_every if lwm_every is not None else "never",
            ablsn_bytes=ablsn_bytes,
            record_level_bytes=record_bytes,
            pages=len(pages),
        )
        if lwm_every is not None and lwm_every <= 10:
            assert ablsn_bytes < record_bytes


def test_eooo_traditional_test_would_lose_an_update():
    """The Section 5.1.1 failure, demonstrated against a truth model: with
    a single max-LSN page stamp, a redo pass would skip LSN 1."""
    applied: set[int] = set()
    page_lsn = 0
    # out-of-order arrival: 2 first
    for lsn in (2,):
        applied.add(lsn)
        page_lsn = max(page_lsn, lsn)
    # crash before 1 arrives; redo offers 1 and 2
    redo_skipped_wrongly = 1 <= page_lsn and 1 not in applied
    series("E-OOO traditional-test", lost_update=redo_skipped_wrongly)
    assert redo_skipped_wrongly

    # the abLSN version of the same history
    from repro.common.lsn import AbstractLsn

    ablsn = AbstractLsn()
    ablsn.include(2)
    assert not ablsn.contains(1)  # redo proceeds — no lost update
