"""E-CKPT — contract termination / RSSP advancement (Section 4.2).

Series regenerated: redo work at restart as a function of checkpoint
interval, plus the checkpoint's own cost (flushes forced at the DC).  The
expected shape: redo volume falls linearly with checkpoint frequency while
each checkpoint pays a burst of page flushes — the classic trade-off, here
negotiated across the TC/DC boundary with explicit messages.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, series

TOTAL_TXNS = 240


def run_with_interval(interval: int | None):
    kernel = fresh_unbundled(page_size=1024)
    flushes_in_checkpoints = 0
    for index in range(TOTAL_TXNS):
        with kernel.begin() as txn:
            txn.insert("t", index, f"value-{index:05d}")
        if interval is not None and (index + 1) % interval == 0:
            before = kernel.metrics.get("buffer.flushes")
            assert kernel.checkpoint()
            flushes_in_checkpoints += kernel.metrics.get("buffer.flushes") - before
    kernel.crash_tc()
    stats = kernel.recover_tc()
    return kernel, stats, flushes_in_checkpoints


@pytest.mark.benchmark(group="eckpt-redo")
@pytest.mark.parametrize("interval", [None, 120, 30])
def test_eckpt_redo_vs_interval(benchmark, interval):
    def run():
        return run_with_interval(interval)

    kernel, stats, checkpoint_flushes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    with kernel.begin() as txn:
        assert len(txn.scan("t")) == TOTAL_TXNS
    benchmark.extra_info.update(
        {"redo_ops": stats["redo_ops"], "checkpoint_flushes": checkpoint_flushes}
    )
    series(
        "E-CKPT",
        interval=interval if interval is not None else "never",
        redo_ops=stats["redo_ops"],
        rssp=stats["rssp"],
        checkpoint_flushes=checkpoint_flushes,
    )


def test_eckpt_redo_monotone_in_interval():
    results = {}
    for interval in (None, 120, 30):
        _k, stats, _f = run_with_interval(interval)
        results[interval] = stats["redo_ops"]
    series(
        "E-CKPT monotonicity",
        never=results[None],
        every_120=results[120],
        every_30=results[30],
    )
    assert results[30] <= results[120] <= results[None]
    assert results[30] < results[None] / 3


@pytest.mark.benchmark(group="eckpt-cost")
def test_eckpt_checkpoint_cost(benchmark):
    """The cost of one checkpoint on a dirty cache."""
    kernel = fresh_unbundled(page_size=1024)
    for index in range(TOTAL_TXNS):
        with kernel.begin() as txn:
            txn.insert("t", index, f"value-{index:05d}")

    def checkpoint():
        return kernel.checkpoint()

    ok = benchmark.pedantic(checkpoint, rounds=1, iterations=1)
    assert ok
    series(
        "E-CKPT cost",
        flushes=kernel.metrics.get("buffer.flushes"),
        rssp=kernel.tc.rssp,
    )


def test_eckpt_terminated_contract_not_resent():
    """After RSSP advances past an operation, restart never resends it —
    the idempotence guarantee has been formally released."""
    kernel = fresh_unbundled(page_size=1024)
    with kernel.begin() as txn:
        txn.insert("t", 1, "early")
    kernel.checkpoint()
    rssp = kernel.tc.rssp
    kernel.crash_tc()
    stats = kernel.recover_tc()
    series("E-CKPT termination", rssp=rssp, redo_ops=stats["redo_ops"])
    assert stats["redo_ops"] == 0
