"""E-SYNC — the three page-sync strategies (Section 5.1.2, "Page Sync").

For each strategy, a write burst followed by flush attempts, sweeping the
LWM frequency.  Series: flush success rate, delayed flushes, abLSN bytes
written per flushed page.  Expected shape:

- FULL_ABLSN always flushes, at the highest page-space cost;
- DELAY only flushes once the LWM covers everything — cheapest on space,
  most deferrals;
- PRUNE_THEN_WRITE sits between, tunable by its threshold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, series
from repro.common.config import DcConfig, PageSyncStrategy, TcConfig

BURST = 200


def kernel_for(strategy: PageSyncStrategy, lwm_interval: int):
    return fresh_unbundled(
        dc=DcConfig(page_size=1024, sync_strategy=strategy, prune_threshold=4),
        tc=TcConfig(lwm_interval=lwm_interval),
    )


def burst_and_flush(kernel):
    for key in range(BURST):
        with kernel.begin() as txn:
            txn.insert("t", key, f"value-{key:05d}")
    kernel.tc.broadcast_eosl()
    kernel.dc.buffer.flush_all()
    return kernel


@pytest.mark.benchmark(group="esync-strategies")
@pytest.mark.parametrize(
    "strategy",
    [
        PageSyncStrategy.FULL_ABLSN,
        PageSyncStrategy.DELAY,
        PageSyncStrategy.PRUNE_THEN_WRITE,
    ],
)
def test_esync_strategy_write_burst(benchmark, strategy):
    def run():
        return burst_and_flush(kernel_for(strategy, lwm_interval=8))

    kernel = benchmark(run)
    metrics = kernel.metrics
    flushes = metrics.get("buffer.flushes")
    delayed = metrics.get("buffer.flush_delayed_sync")
    ablsn_dist = metrics.dist("buffer.flushed_ablsn_bytes")
    benchmark.extra_info.update(
        {
            "flushes": flushes,
            "delayed": delayed,
            "ablsn_bytes_mean": round(ablsn_dist.mean, 1),
        }
    )
    series(
        "E-SYNC",
        strategy=strategy.value,
        flushes=flushes,
        delayed=delayed,
        ablsn_bytes_mean=round(ablsn_dist.mean, 1),
        ablsn_bytes_max=ablsn_dist.maximum if ablsn_dist.count else 0,
    )


def test_esync_lwm_frequency_sweep():
    """More frequent LWMs shrink {LSNin}, unblocking DELAY and shrinking
    FULL_ABLSN's page overhead."""
    for lwm_interval in (1, 8, 64):
        for strategy in (PageSyncStrategy.DELAY, PageSyncStrategy.FULL_ABLSN):
            kernel = burst_and_flush(kernel_for(strategy, lwm_interval))
            metrics = kernel.metrics
            series(
                "E-SYNC lwm-sweep",
                strategy=strategy.value,
                lwm_interval=lwm_interval,
                flushes=metrics.get("buffer.flushes"),
                delayed=metrics.get("buffer.flush_delayed_sync"),
                pending_mean=round(
                    metrics.dist("buffer.flushed_pending_lsns").mean, 2
                ),
            )


def test_esync_delay_blocks_until_lwm_catches_up():
    """The DELAY strategy's defining behavior, isolated."""
    kernel = kernel_for(PageSyncStrategy.DELAY, lwm_interval=10**9)
    for key in range(20):
        with kernel.begin() as txn:
            txn.insert("t", key, "v")
    kernel.tc.broadcast_eosl()
    flushed_without_lwm = kernel.dc.buffer.flush_all()
    kernel.tc.broadcast_lwm()  # now {LSNin} prunes to empty
    flushed_after_lwm = kernel.dc.buffer.flush_all()
    series(
        "E-SYNC delay-isolated",
        flushed_without_lwm=flushed_without_lwm,
        flushed_after_lwm=flushed_after_lwm,
    )
    assert flushed_without_lwm == 0
    assert flushed_after_lwm > 0


def test_esync_prune_threshold_sweep():
    for threshold in (1, 4, 16):
        kernel = fresh_unbundled(
            dc=DcConfig(
                page_size=1024,
                sync_strategy=PageSyncStrategy.PRUNE_THEN_WRITE,
                prune_threshold=threshold,
            ),
            tc=TcConfig(lwm_interval=16),
        )
        for key in range(BURST):
            with kernel.begin() as txn:
                txn.insert("t", key, f"value-{key:05d}")
        kernel.tc.broadcast_eosl()
        kernel.dc.buffer.flush_all()
        metrics = kernel.metrics
        series(
            "E-SYNC prune-sweep",
            threshold=threshold,
            flushes=metrics.get("buffer.flushes"),
            delayed=metrics.get("buffer.flush_delayed_sync"),
            ablsn_bytes_mean=round(
                metrics.dist("buffer.flushed_ablsn_bytes").mean, 1
            ),
        )
