"""E-LOCK — fetch-ahead vs range-partition locking (Section 3.1).

The paper's trade-off, measured: the fetch-ahead protocol pays probe round
trips and two locks per key (record + gap) for fine-grained concurrency;
the range-partition protocol takes a handful of partition locks and no
probes, "giv[ing] up some concurrency ... [but] reduc[ing] locking
overhead since fewer locks are needed."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, load_keys, series
from repro.common.config import RangeLockProtocol, TcConfig

KEYS = 400
SCAN_LOW, SCAN_HIGH = 50, 349


def kernel_for(protocol: RangeLockProtocol, batch: int = 16):
    kernel = fresh_unbundled(
        tc=TcConfig(range_protocol=protocol, fetch_ahead_batch=batch)
    )
    if protocol is RangeLockProtocol.RANGE_PARTITION:
        kernel.tc.protocol.set_boundaries("t", list(range(50, KEYS, 50)))
    load_keys(kernel, KEYS)
    return kernel


def scan_cost(kernel):
    locks_before = kernel.metrics.get("locks.granted")
    probes_before = kernel.metrics.get("tc.probes")
    msgs_before = kernel.metrics.get("channel.requests")
    with kernel.begin() as txn:
        rows = txn.scan("t", SCAN_LOW, SCAN_HIGH)
    return {
        "rows": len(rows),
        "locks": kernel.metrics.get("locks.granted") - locks_before,
        "probes": kernel.metrics.get("tc.probes") - probes_before,
        "messages": kernel.metrics.get("channel.requests") - msgs_before,
    }


@pytest.mark.benchmark(group="elock-scan")
def test_elock_fetch_ahead_scan(benchmark):
    kernel = kernel_for(RangeLockProtocol.FETCH_AHEAD)

    def scan():
        with kernel.begin() as txn:
            return txn.scan("t", SCAN_LOW, SCAN_HIGH)

    benchmark(scan)
    cost = scan_cost(kernel)
    benchmark.extra_info.update(cost)
    series("E-LOCK fetch-ahead", **cost)
    assert cost["locks"] > 2 * cost["rows"] * 0.9  # record + gap per key
    assert cost["probes"] > 0


@pytest.mark.benchmark(group="elock-scan")
def test_elock_range_partition_scan(benchmark):
    kernel = kernel_for(RangeLockProtocol.RANGE_PARTITION)

    def scan():
        with kernel.begin() as txn:
            return txn.scan("t", SCAN_LOW, SCAN_HIGH)

    benchmark(scan)
    cost = scan_cost(kernel)
    benchmark.extra_info.update(cost)
    series("E-LOCK range-partition", **cost)
    assert cost["locks"] < 20  # a few partitions, not hundreds of keys
    assert cost["probes"] == 0


@pytest.mark.benchmark(group="elock-insert")
def test_elock_fetch_ahead_insert(benchmark):
    """Point inserts pay a probe for the gap guard under fetch-ahead."""
    kernel = kernel_for(RangeLockProtocol.FETCH_AHEAD)
    counter = {"n": KEYS}

    def insert():
        counter["n"] += 1
        with kernel.begin() as txn:
            txn.insert("t", counter["n"], "v")

    benchmark(insert)
    series(
        "E-LOCK insert fetch-ahead",
        probes=kernel.metrics.get("tc.probes"),
        gap_locks=kernel.metrics.get("tc.gap_locks"),
    )


@pytest.mark.benchmark(group="elock-insert")
def test_elock_range_partition_insert(benchmark):
    kernel = kernel_for(RangeLockProtocol.RANGE_PARTITION)
    counter = {"n": KEYS}

    def insert():
        counter["n"] += 1
        with kernel.begin() as txn:
            txn.insert("t", counter["n"], "v")

    benchmark(insert)
    series(
        "E-LOCK insert range-partition",
        probes=kernel.metrics.get("tc.probes"),
        partition_locks=kernel.metrics.get("tc.partition_locks"),
    )


def test_elock_batch_size_sweep():
    """Fetch-ahead probe batching amortizes the round trips."""
    for batch in (4, 16, 64):
        kernel = kernel_for(RangeLockProtocol.FETCH_AHEAD, batch=batch)
        cost = scan_cost(kernel)
        series("E-LOCK batch-sweep", batch=batch, **cost)
        assert cost["rows"] == SCAN_HIGH - SCAN_LOW + 1


def test_elock_concurrency_crossover():
    """The concurrency the partition protocol gives up: a scan in one
    region vs a write in another succeeds under fetch-ahead, conflicts
    under a coarse partitioning."""
    from repro.common.errors import ReproError, TransactionAborted

    fine = fresh_unbundled(
        tc=TcConfig(
            range_protocol=RangeLockProtocol.FETCH_AHEAD, lock_timeout=0.05
        )
    )
    load_keys(fine, 100)
    scanner = fine.begin()
    scanner.scan("t", 0, 20)
    with fine.begin() as writer:
        writer.update("t", 80, "fine")
    scanner.commit()
    fine_ok = True

    coarse = fresh_unbundled(
        tc=TcConfig(
            range_protocol=RangeLockProtocol.RANGE_PARTITION, lock_timeout=0.05
        )
    )
    # single partition == table lock
    load_keys(coarse, 100)
    scanner = coarse.begin()
    scanner.scan("t", 0, 20)
    coarse_blocked = False
    try:
        writer = coarse.begin()
        writer.update("t", 80, "blocked?")
        writer.commit()
    except (TransactionAborted, ReproError):
        coarse_blocked = True
    scanner.commit()
    series(
        "E-LOCK crossover",
        fetch_ahead_concurrent_ok=fine_ok,
        table_lock_blocked=coarse_blocked,
    )
    assert fine_ok and coarse_blocked
