"""Shared helpers for the experiment benchmarks.

Every module regenerates one experiment from DESIGN.md's index.  Besides
pytest-benchmark timings, each benchmark attaches the experiment's
*counters* (messages, locks, log bytes, pages, ...) to
``benchmark.extra_info`` and prints a one-line series — the "row" the
paper-style writeup in EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, TcConfig
from repro.kernel.monolithic import MonolithicEngine

#: Where ``write_results`` drops its files (gitignored run artifacts).
RESULTS_DIR = Path(__file__).parent / "results"


def fresh_unbundled(
    page_size: int = 2048,
    table: str = "t",
    tc: TcConfig | None = None,
    channel: ChannelConfig | None = None,
    dc: DcConfig | None = None,
) -> UnbundledKernel:
    config = KernelConfig(
        dc=dc or DcConfig(page_size=page_size),
        tc=tc or TcConfig(),
        channel=channel or ChannelConfig(),
    )
    kernel = UnbundledKernel(config)
    kernel.create_table(table)
    return kernel


def fresh_monolithic(page_size: int = 2048, table: str = "t") -> MonolithicEngine:
    engine = MonolithicEngine(DcConfig(page_size=page_size))
    engine.create_table(table)
    return engine


def load_keys(engine, count: int, table: str = "t", width: int = 24) -> None:
    payload = "x" * width
    for key in range(count):
        with engine.begin() as txn:
            txn.insert(table, key, f"{payload}{key:06d}")


def series(label: str, **fields: object) -> None:
    parts = "  ".join(f"{name}={value}" for name, value in fields.items())
    print(f"\n[{label}] {parts}")


def write_results(
    name: str,
    payload: dict,
    metrics=None,
    seed: int | None = None,
    wall_time_s: float | None = None,
) -> Path:
    """Persist one benchmark's machine-readable results.

    Writes ``benchmarks/results/BENCH_<name>.json`` with one standard
    shape so downstream tooling (CI artifact checks, EXPERIMENTS.md
    regeneration) never guesses per benchmark:

    - ``schema``/``name``/``seed``/``wall_time_s`` — provenance;
    - ``series`` — the benchmark's headline row (the payload);
    - ``counters`` — the raw counters behind it;
    - ``percentiles`` — count/p50/p95/p99 per observed distribution
      (``tc.commit_latency_ms`` makes every traced/untraced run report
      commit-latency percentiles);
    - ``metrics`` — the full snapshot, for anything the above dropped.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    document: dict = {
        "schema": "repro-bench/v2",
        "name": name,
        "seed": seed,
        "wall_time_s": wall_time_s,
        "series": dict(payload),
        "counters": {},
        "percentiles": {},
    }
    if metrics is not None:
        snapshot = metrics.snapshot()
        document["counters"] = snapshot["counters"]
        document["percentiles"] = {
            dist_name: {
                "count": row["count"],
                "p50": row["p50"],
                "p95": row["p95"],
                "p99": row["p99"],
            }
            for dist_name, row in snapshot["distributions"].items()
        }
        document["metrics"] = snapshot
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True, default=str))
    return path
