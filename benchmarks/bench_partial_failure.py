"""E-FAIL — partial failures and recovery work (Section 5.3).

Series regenerated:

- DC-crash recovery time and TC redo volume vs workload size;
- TC-crash reset cost by mode: FULL_DROP ("turn a partial failure into a
  complete failure") vs DROP_AFFECTED vs RECORD_RESET — pages shed, pages
  preserved, and the redo each implies;
- the monolithic baseline's fail-together recovery for comparison;
- checkpointing's effect on both.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_monolithic, fresh_unbundled, load_keys, series
from repro.storage.buffer import ResetMode

SIZES = [100, 400]


@pytest.mark.benchmark(group="efail-dc-crash")
@pytest.mark.parametrize("records", SIZES)
def test_efail_dc_crash_recovery(benchmark, records):
    kernel = fresh_unbundled(page_size=512)
    load_keys(kernel, records)
    redo_before = kernel.metrics.get("tc.redo_ops")

    def crash_recover():
        kernel.crash_dc()
        kernel.dc.recover(notify_tcs=True)

    benchmark.pedantic(crash_recover, rounds=1, iterations=1)
    redo = kernel.metrics.get("tc.redo_ops") - redo_before
    with kernel.begin() as txn:
        assert len(txn.scan("t")) == records
    benchmark.extra_info["redo_ops"] = redo
    series("E-FAIL dc-crash", records=records, redo_ops=redo)


@pytest.mark.benchmark(group="efail-tc-crash")
@pytest.mark.parametrize(
    "mode", [ResetMode.FULL_DROP, ResetMode.DROP_AFFECTED, ResetMode.RECORD_RESET]
)
def test_efail_tc_crash_reset_modes(benchmark, mode):
    """The reset-precision ladder: how much cached state each mode sheds."""
    kernel = fresh_unbundled(page_size=512)
    load_keys(kernel, 300)
    kernel.checkpoint()
    # a loser whose tail will be lost
    loser = kernel.begin()
    loser.update("t", 7, "lost")
    cached_before = len(kernel.dc.buffer.cached_ids())
    kernel.crash_tc()

    def restart():
        return kernel.recover_tc(mode)

    stats = benchmark.pedantic(restart, rounds=1, iterations=1)
    cached_after = len(kernel.dc.buffer.cached_ids())
    with kernel.begin() as txn:
        assert txn.read("t", 7) == "x" * 24 + "000007"
    benchmark.extra_info.update(
        {
            "cached_before": cached_before,
            "cached_after": cached_after,
            "redo_ops": stats["redo_ops"],
        }
    )
    series(
        "E-FAIL tc-crash",
        mode=mode.value,
        cached_before=cached_before,
        cached_preserved=cached_after,
        redo_ops=stats["redo_ops"],
    )


def test_efail_reset_precision_ladder():
    """FULL_DROP sheds everything; DROP_AFFECTED only the pages with lost
    operations; RECORD_RESET preserves even multi-TC pages."""
    preserved = {}
    for mode in (ResetMode.FULL_DROP, ResetMode.DROP_AFFECTED):
        kernel = fresh_unbundled(page_size=512)
        load_keys(kernel, 300)
        kernel.checkpoint()
        loser = kernel.begin()
        loser.update("t", 7, "lost")
        before = len(kernel.dc.buffer.cached_ids())
        kernel.crash_tc()
        kernel.recover_tc(mode)
        preserved[mode] = (before, len(kernel.dc.buffer.cached_ids()))
    series(
        "E-FAIL ladder",
        full_drop=preserved[ResetMode.FULL_DROP],
        drop_affected=preserved[ResetMode.DROP_AFFECTED],
    )
    # FULL_DROP empties the cache; DROP_AFFECTED keeps nearly everything.
    assert preserved[ResetMode.DROP_AFFECTED][1] > 0


@pytest.mark.benchmark(group="efail-monolithic")
@pytest.mark.parametrize("records", SIZES)
def test_efail_monolithic_fail_together(benchmark, records):
    engine = fresh_monolithic(page_size=512)
    load_keys(engine, records)
    engine.crash()

    def recover():
        return engine.recover()

    stats = benchmark.pedantic(recover, rounds=1, iterations=1)
    benchmark.extra_info["redo"] = stats["redo"]
    series("E-FAIL monolithic", records=records, redo=stats["redo"])
    assert engine.record_count("t") == records


def test_efail_checkpoint_bounds_redo():
    rows = []
    for checkpointed in (False, True):
        kernel = fresh_unbundled(page_size=512)
        load_keys(kernel, 300)
        if checkpointed:
            kernel.checkpoint()
        with kernel.begin() as txn:
            txn.insert("t", 9999, "tail")
        kernel.crash_tc()
        stats = kernel.recover_tc()
        rows.append((checkpointed, stats["redo_ops"]))
    for checkpointed, redo in rows:
        series("E-FAIL checkpoint", checkpointed=checkpointed, redo_ops=redo)
    assert rows[1][1] < rows[0][1] / 10


def test_efail_crash_all_equivalence():
    """The fail-together case reduces to DC recovery then TC recovery."""
    kernel = fresh_unbundled(page_size=512)
    load_keys(kernel, 200)
    loser = kernel.begin()
    loser.update("t", 3, "dirty")
    kernel.tc.force_log()
    kernel.crash_all()
    kernel.recover_all()
    with kernel.begin() as txn:
        assert len(txn.scan("t")) == 200
        assert txn.read("t", 3) == "x" * 24 + "000003"
    series("E-FAIL crash-all", records=200, consistent=True)
