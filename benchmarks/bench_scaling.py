"""E-SCALE — instantiating components independently (Sections 1.1, 7).

The paper speculates that separately instantiable TCs and DCs use cores
better than one monolith.  Two series test that claim:

- **process backend** (``test_escale_process_backend_scaleout``): each DC
  is its own OS process (docs/architecture.md §10), so DC-side work runs
  on real separate cores while the TC's driver threads block on pipes
  with the GIL released.  Aggregate committed-transaction throughput for
  1 -> 2 -> 4 DC processes is the paper's scale-out number, recorded in
  ``benchmarks/results/BENCH_scaleout.json`` (repro-bench/v2) together
  with the measured speedup and the machine's core count.
- **structural series** (in-process): work partitions cleanly across DC
  instances, threads over disjoint DCs don't interfere in the lock
  manager, and the monolith funnels everything through one lock table
  and one log.

A third series measures the lock-manager striping satellite: the same
contended multi-thread load against ``lock_stripes=1`` (the old single
global mutex) versus the default 16, reporting ``locks.waits`` and wall
time for both.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from benchmarks.conftest import fresh_monolithic, series, write_results
from repro import KernelConfig, UnbundledKernel
from repro.common.config import ChannelConfig, DcConfig, TcConfig

THREADS = 4
OPS_PER_THREAD = 80


def multi_dc_kernel(dc_count: int) -> UnbundledKernel:
    from repro.common.config import TcConfig

    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=2048), tc=TcConfig(lock_timeout=30.0)),
        dc_count=dc_count,
    )
    for index in range(dc_count):
        dc_name = f"dc{index + 1}" if dc_count > 1 else None
        kernel.create_table(f"t{index}", dc_name=dc_name)
    return kernel


def seed_region_boundaries(engine, table: str) -> None:
    """Pre-insert each thread region's upper fence so concurrent tail
    inserts anchor their next-key gap guards to distinct keys instead of
    all contending on the table-end gap (correct, but not what this
    scaling experiment measures)."""
    with engine.begin() as txn:
        for thread_id in range(THREADS + 1):
            txn.insert(table, thread_id * 10_000 + 9_999, "fence")


@pytest.mark.benchmark(group="escale-threads")
@pytest.mark.parametrize("dc_count", [1, 4])
def test_escale_threads_over_dcs(benchmark, dc_count):
    def run():
        kernel = multi_dc_kernel(max(dc_count, 1))
        for index in range(dc_count):
            seed_region_boundaries(kernel, f"t{index}")
        errors: list[Exception] = []

        def worker(thread_id: int):
            table = f"t{thread_id % dc_count}"
            base = thread_id * 10_000
            try:
                for op in range(OPS_PER_THREAD):
                    with kernel.begin() as txn:
                        txn.insert(table, base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return kernel

    kernel = benchmark.pedantic(run, rounds=2, iterations=1)
    waits = kernel.metrics.get("locks.waits")
    series(
        "E-SCALE unbundled",
        dcs=dc_count,
        threads=THREADS,
        inserts=THREADS * OPS_PER_THREAD,
        lock_waits=waits,
    )
    if dc_count == THREADS:
        # one table per thread on its own DC: nothing ever contends
        # (a single shared table still sees brief gap-lock brushes at
        # region boundaries, which is correct behavior)
        assert waits == 0


@pytest.mark.benchmark(group="escale-threads")
def test_escale_monolithic_single_engine(benchmark):
    def run():
        from repro.common.config import DcConfig as Dc
        from repro.common.config import TcConfig
        from repro.kernel.monolithic import MonolithicEngine

        engine = MonolithicEngine(Dc(page_size=2048), TcConfig(lock_timeout=30.0))
        engine.create_table("t")
        seed_region_boundaries(engine, "t")
        errors: list[Exception] = []

        def worker(thread_id: int):
            base = thread_id * 10_000
            try:
                for op in range(OPS_PER_THREAD):
                    with engine.begin() as txn:
                        txn.insert("t", base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return engine

    engine = benchmark.pedantic(run, rounds=2, iterations=1)
    series(
        "E-SCALE monolithic",
        dcs=1,
        threads=THREADS,
        inserts=THREADS * OPS_PER_THREAD,
        lock_waits=engine.metrics.get("locks.waits"),
    )


def test_escale_work_partitions_across_dcs():
    """Per-DC operation counters show clean load spreading."""
    kernel = multi_dc_kernel(4)
    for index in range(200):
        table = f"t{index % 4}"
        with kernel.begin() as txn:
            txn.insert(table, index, "v")
    per_dc = {
        name: channel.ops_sent
        for name, channel in kernel.tc.channels().items()
    }
    series("E-SCALE partitioning", **per_dc)
    counts = sorted(per_dc.values())
    assert counts[0] > 0 and counts[-1] < sum(counts)  # all DCs carried load


def drive_process_kernel(dc_count: int, txns_per_thread: int) -> dict:
    """Threaded drivers over ``dc_count`` DC server processes; returns the
    aggregate committed-transaction throughput and the raw counters."""
    config = KernelConfig(
        dc=DcConfig(page_size=2048),
        tc=TcConfig.optimized(lock_timeout=30.0),
        channel=ChannelConfig(transport="process", request_timeout_s=30.0),
    )
    with UnbundledKernel(config, dc_count=dc_count) as kernel:
        for index in range(dc_count):
            dc_name = f"dc{index + 1}" if dc_count > 1 else None
            kernel.create_table(f"t{index}", dc_name=dc_name)
            seed_region_boundaries(kernel, f"t{index}")
        errors: list[Exception] = []
        payload = "x" * 64

        def worker(thread_id: int) -> None:
            table = f"t{thread_id % dc_count}"
            base = thread_id * 10_000
            try:
                for txn_index in range(txns_per_thread):
                    with kernel.begin() as txn:
                        start = base + txn_index * 8
                        for op in range(8):
                            txn.insert(table, start + op, payload)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        assert not errors
        committed = THREADS * txns_per_thread
        return {
            "dc_processes": dc_count,
            "threads": THREADS,
            "txns": committed,
            "elapsed_s": round(elapsed, 3),
            "txns_per_s": round(committed / elapsed, 1),
            "lock_waits": kernel.metrics.get("locks.waits"),
            "counters": kernel.metrics.counters(),
        }


def test_escale_process_backend_scaleout():
    """Real parallelism over a real wire: aggregate throughput while the
    DC side grows from one process to four.  On a >= 4-core machine the
    1 -> 4 speedup must reach 1.8x (the ISSUE 4 acceptance bar); on
    smaller machines the numbers are still recorded, unasserted."""
    txns_per_thread = int(os.environ.get("REPRO_BENCH_SCALEOUT_TXNS", "40"))
    rows = {}
    for dc_count in (1, 2, 4):
        row = drive_process_kernel(dc_count, txns_per_thread)
        counters = row.pop("counters")
        rows[dc_count] = row
        series("E-SCALE process backend", **row)
    speedup = rows[4]["txns_per_s"] / rows[1]["txns_per_s"]
    cores = os.cpu_count() or 1
    payload = {
        "series": [rows[n] for n in (1, 2, 4)],
        "speedup_1_to_4": round(speedup, 2),
        "cpu_count": cores,
        "transport": "process",
        "config": "TcConfig.optimized()",
    }
    write_results("scaleout", payload)
    series(
        "E-SCALE scaleout summary",
        speedup_1_to_4=round(speedup, 2),
        cpu_count=cores,
    )
    if cores >= 4:
        assert speedup >= 1.8, f"1->4 DC-process speedup {speedup:.2f}x < 1.8x"


def test_evloop_flat_threads_and_shm_speedup():
    """E-EVLOOP — event-loop servers and shared-memory rings (§18).

    Two measurements, one results file.  First the tentpole invariant:
    a DC server's thread count, reported in its own StatsReply, must stay
    *flat* as the client count grows 1 -> 4 -> 8 (connections are Peers in
    one selector loop, not threads) — asserted on every machine.  Then the
    co-located data-plane race: the same single-DC commit workload over
    ``transport="process"`` (pipe) versus ``transport="shm"`` (rings).
    The >= 1.5x shm speedup is asserted only on >= 4-core machines; a
    single-core runner timeshares producer and consumer, so the spin side
    of spin-then-park burns the very quantum the peer needs.
    """
    import tempfile

    from repro.net.process import DcClient, RemoteDc

    flat_rows = []
    with tempfile.TemporaryDirectory(prefix="repro-evloop-") as workdir:
        dc = RemoteDc(
            "dcb",
            journal_path=os.path.join(workdir, "dcb.journal"),
            listen_path=os.path.join(workdir, "dcb.sock"),
        )
        clients: list[DcClient] = []
        try:
            dc.create_table("t")
            for target in (1, 4, 8):
                while len(clients) < target:
                    clients.append(
                        DcClient("dcb", socket_path=dc.listen_path)
                    )
                stats = clients[-1].stats()
                row = {
                    "clients": target,
                    "server_connections": stats["connections"],
                    "server_threads": stats["threads"],
                }
                flat_rows.append(row)
                series("E-EVLOOP flat threads", **row)
        finally:
            for client in clients:
                client.close()
            dc.shutdown()
    thread_counts = {row["server_threads"] for row in flat_rows}
    assert len(thread_counts) == 1, (
        f"server thread count varied with client count: {flat_rows}"
    )

    txns = int(os.environ.get("REPRO_BENCH_EVLOOP_TXNS", "80"))
    payload_value = "x" * 64
    lane_rows = {}
    for transport in ("process", "shm"):
        config = KernelConfig(
            dc=DcConfig(page_size=2048),
            tc=TcConfig.optimized(lock_timeout=30.0),
            channel=ChannelConfig(transport=transport, request_timeout_s=30.0),
        )
        with UnbundledKernel(config, dc_count=1) as kernel:
            kernel.create_table("t0")
            seed_region_boundaries(kernel, "t0")
            begin = time.perf_counter()
            for index in range(txns):
                with kernel.begin() as txn:
                    start = index * 8
                    for op in range(8):
                        txn.insert("t0", start + op, payload_value)
            elapsed = time.perf_counter() - begin
            ops = txns * 8
            lane_rows[transport] = {
                "transport": transport,
                "txns": txns,
                "elapsed_s": round(elapsed, 3),
                "txns_per_s": round(txns / elapsed, 1),
                "ops_per_s": round(ops / elapsed, 1),
                "shm_attached": kernel.metrics.get("remote_dc.shm_attached"),
            }
            series("E-EVLOOP co-located lane", **lane_rows[transport])
    speedup = (
        lane_rows["shm"]["ops_per_s"] / lane_rows["process"]["ops_per_s"]
    )
    cores = os.cpu_count() or 1
    write_results(
        "evloop",
        {
            "flat_threads": flat_rows,
            "lanes": [lane_rows["process"], lane_rows["shm"]],
            "speedup_shm_over_pipe": round(speedup, 2),
            "cpu_count": cores,
        },
    )
    series(
        "E-EVLOOP summary",
        speedup_shm_over_pipe=round(speedup, 2),
        cpu_count=cores,
    )
    assert lane_rows["shm"]["shm_attached"] == 1  # the rings really carried it
    if cores >= 4:
        assert speedup >= 1.5, (
            f"co-located shm vs pipe speedup {speedup:.2f}x < 1.5x"
        )


def test_escale_lock_striping_contention():
    """The striping satellite: one contended in-process kernel, stripes=1
    (the old global mutex) versus the default 16."""
    rows = {}
    for stripes in (1, 16):
        kernel = UnbundledKernel(
            KernelConfig(
                dc=DcConfig(page_size=2048),
                tc=TcConfig(lock_timeout=30.0, lock_stripes=stripes),
            )
        )
        kernel.create_table("t0")
        seed_region_boundaries(kernel, "t0")
        errors: list[Exception] = []

        def worker(thread_id: int) -> None:
            base = thread_id * 10_000
            try:
                for op in range(OPS_PER_THREAD):
                    with kernel.begin() as txn:
                        txn.insert("t0", base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        assert not errors
        rows[stripes] = {
            "stripes": stripes,
            "elapsed_s": round(elapsed, 3),
            "lock_waits": kernel.metrics.get("locks.waits"),
            "granted": kernel.metrics.get("locks.granted"),
        }
        series("E-SCALE lock striping", **rows[stripes])
    # Same workload, same grants, regardless of stripe count.
    assert rows[1]["granted"] == rows[16]["granted"]


def test_escale_code_path_step_counts():
    """The instruction-path proxy for the cache-locality claim: steps per
    operation by component, showing the DC path dominating the TC path."""
    kernel = multi_dc_kernel(1)
    for index in range(100):
        with kernel.begin() as txn:
            txn.insert("t0", index, "v")
    metrics = kernel.metrics.counters()
    dc_steps = (
        metrics.get("dc.operations", 0)
        + metrics.get("dc.latches", 0)
        + metrics.get("btree.inner_visits", 0)
        + metrics.get("btree.latches", 0)
    )
    tc_steps = (
        metrics.get("tclog.appends", 0)
        + metrics.get("locks.granted", 0)
        + metrics.get("tc.mutations", 0)
    )
    series(
        "E-SCALE code-path",
        dc_steps=dc_steps,
        tc_steps=tc_steps,
        dc_to_tc_ratio=round(dc_steps / max(tc_steps, 1), 2),
    )
    assert dc_steps > 0 and tc_steps > 0
