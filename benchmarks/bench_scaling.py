"""E-SCALE — instantiating components independently (Sections 1.1, 7).

The paper speculates that separately instantiable TCs and DCs use cores
better than one monolith.  Python's GIL precludes honest parallel-speedup
numbers (DESIGN.md records the substitution), so this experiment measures
the *structural* enablers the claim rests on:

- work partitions cleanly across DC instances (per-DC operation counts);
- multiple threads drive disjoint DCs through one TC without lock-manager
  interference (lock waits stay ~zero);
- the monolithic engine funnels the same load through one lock table and
  one log (its serialization point, visible in wait counts under
  contention).
"""

from __future__ import annotations

import threading

import pytest

from benchmarks.conftest import fresh_monolithic, series
from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig

THREADS = 4
OPS_PER_THREAD = 80


def multi_dc_kernel(dc_count: int) -> UnbundledKernel:
    from repro.common.config import TcConfig

    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=2048), tc=TcConfig(lock_timeout=30.0)),
        dc_count=dc_count,
    )
    for index in range(dc_count):
        dc_name = f"dc{index + 1}" if dc_count > 1 else None
        kernel.create_table(f"t{index}", dc_name=dc_name)
    return kernel


def seed_region_boundaries(engine, table: str) -> None:
    """Pre-insert each thread region's upper fence so concurrent tail
    inserts anchor their next-key gap guards to distinct keys instead of
    all contending on the table-end gap (correct, but not what this
    scaling experiment measures)."""
    with engine.begin() as txn:
        for thread_id in range(THREADS + 1):
            txn.insert(table, thread_id * 10_000 + 9_999, "fence")


@pytest.mark.benchmark(group="escale-threads")
@pytest.mark.parametrize("dc_count", [1, 4])
def test_escale_threads_over_dcs(benchmark, dc_count):
    def run():
        kernel = multi_dc_kernel(max(dc_count, 1))
        for index in range(dc_count):
            seed_region_boundaries(kernel, f"t{index}")
        errors: list[Exception] = []

        def worker(thread_id: int):
            table = f"t{thread_id % dc_count}"
            base = thread_id * 10_000
            try:
                for op in range(OPS_PER_THREAD):
                    with kernel.begin() as txn:
                        txn.insert(table, base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return kernel

    kernel = benchmark.pedantic(run, rounds=2, iterations=1)
    waits = kernel.metrics.get("locks.waits")
    series(
        "E-SCALE unbundled",
        dcs=dc_count,
        threads=THREADS,
        inserts=THREADS * OPS_PER_THREAD,
        lock_waits=waits,
    )
    if dc_count == THREADS:
        # one table per thread on its own DC: nothing ever contends
        # (a single shared table still sees brief gap-lock brushes at
        # region boundaries, which is correct behavior)
        assert waits == 0


@pytest.mark.benchmark(group="escale-threads")
def test_escale_monolithic_single_engine(benchmark):
    def run():
        from repro.common.config import DcConfig as Dc
        from repro.common.config import TcConfig
        from repro.kernel.monolithic import MonolithicEngine

        engine = MonolithicEngine(Dc(page_size=2048), TcConfig(lock_timeout=30.0))
        engine.create_table("t")
        seed_region_boundaries(engine, "t")
        errors: list[Exception] = []

        def worker(thread_id: int):
            base = thread_id * 10_000
            try:
                for op in range(OPS_PER_THREAD):
                    with engine.begin() as txn:
                        txn.insert("t", base + op, "v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return engine

    engine = benchmark.pedantic(run, rounds=2, iterations=1)
    series(
        "E-SCALE monolithic",
        dcs=1,
        threads=THREADS,
        inserts=THREADS * OPS_PER_THREAD,
        lock_waits=engine.metrics.get("locks.waits"),
    )


def test_escale_work_partitions_across_dcs():
    """Per-DC operation counters show clean load spreading."""
    kernel = multi_dc_kernel(4)
    for index in range(200):
        table = f"t{index % 4}"
        with kernel.begin() as txn:
            txn.insert(table, index, "v")
    per_dc = {
        name: channel.ops_sent
        for name, channel in kernel.tc.channels().items()
    }
    series("E-SCALE partitioning", **per_dc)
    counts = sorted(per_dc.values())
    assert counts[0] > 0 and counts[-1] < sum(counts)  # all DCs carried load


def test_escale_code_path_step_counts():
    """The instruction-path proxy for the cache-locality claim: steps per
    operation by component, showing the DC path dominating the TC path."""
    kernel = multi_dc_kernel(1)
    for index in range(100):
        with kernel.begin() as txn:
            txn.insert("t0", index, "v")
    metrics = kernel.metrics.counters()
    dc_steps = (
        metrics.get("dc.operations", 0)
        + metrics.get("dc.latches", 0)
        + metrics.get("btree.inner_visits", 0)
        + metrics.get("btree.latches", 0)
    )
    tc_steps = (
        metrics.get("tclog.appends", 0)
        + metrics.get("locks.granted", 0)
        + metrics.get("tc.mutations", 0)
    )
    series(
        "E-SCALE code-path",
        dc_steps=dc_steps,
        tc_steps=tc_steps,
        dc_to_tc_ratio=round(dc_steps / max(tc_steps, 1), 2),
    )
    assert dc_steps > 0 and tc_steps > 0
