"""E-CC — concurrency-control policies on read-heavy YCSB skews.

The tentpole claim for pluggable CC (docs/architecture.md §19): on
read-heavy skewed workloads the lock-free read paths (occ's unvalidated
fetch, mvcc's snapshot) beat strict 2PL, whose readers pay the lock
manager on every fetch and *block* behind writers on the hot keys.

One contended driver per policy: T threads run multi-read transactions
over a zipf-skewed keyspace (YCSB-B adds the 5% update traffic that
makes the hot keys contended; YCSB-C is the pure-read floor).  Each row
reports committed txns/s and the abort rate — occ trades its blocking
for aborts, so the rate is part of the result, not noise.

Assertion convention follows E-TCSERVICE: on a ≥4-core host occ or mvcc
must clear 1.2x 2PL on the contended read-heavy skew; on smaller runners
the numbers are recorded, unasserted (a 1-core box serializes the driver
threads, so blocking never costs wall time).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from benchmarks.conftest import series, write_results
from repro import KernelConfig, UnbundledKernel
from repro.common.config import CC_POLICIES, DcConfig, TcConfig
from repro.common.errors import ReproError, TransactionAborted
from repro.workloads.generator import zipf_keys

SEED = 7
KEYSPACE = 200
THREADS = 4
TXNS_PER_THREAD = 50
READS_PER_TXN = 8
#: YCSB preset -> probability that a txn carries one update (8 reads +
#: 0.4 * 1 update ≈ the preset's 95/5 operation mix).
PRESETS = {"B": 0.4, "C": 0.0}

_RESULTS: dict = {"rows": [], "cores": os.cpu_count()}


def _drive(policy: str, update_prob: float) -> dict:
    kernel = UnbundledKernel(
        KernelConfig(
            dc=DcConfig(page_size=1024),
            tc=TcConfig(cc_policy=policy, lock_timeout=30.0),
        )
    )
    kernel.create_table("usertable")
    try:
        with kernel.begin() as txn:
            for key in range(KEYSPACE):
                txn.insert("usertable", key, key * 10)
        committed = [0] * THREADS
        aborted = [0] * THREADS
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            keys = zipf_keys(
                TXNS_PER_THREAD * (READS_PER_TXN + 1),
                KEYSPACE,
                seed=SEED + worker_id,
            )
            import random

            rng = random.Random(SEED * 100 + worker_id)
            cursor = 0
            try:
                for _ in range(TXNS_PER_THREAD):
                    batch = keys[cursor : cursor + READS_PER_TXN + 1]
                    cursor += READS_PER_TXN + 1
                    while True:  # retry the txn until it commits
                        txn = kernel.begin()
                        try:
                            for key in batch[:READS_PER_TXN]:
                                txn.read("usertable", key)
                            if rng.random() < update_prob:
                                txn.update(
                                    "usertable", batch[-1], rng.randrange(10**6)
                                )
                            txn.commit()
                            committed[worker_id] += 1
                            break
                        except (TransactionAborted, ReproError):
                            aborted[worker_id] += 1
                            try:
                                txn.abort()
                            except ReproError:
                                pass
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        commits = sum(committed)
        aborts = sum(aborted)
        assert commits == THREADS * TXNS_PER_THREAD
        return {
            "policy": policy,
            "txns": commits,
            "wall_s": round(elapsed, 3),
            "txns_per_s": round(commits / elapsed, 1),
            "aborts": aborts,
            "abort_rate": round(aborts / (commits + aborts), 4),
            "lockfree_reads": kernel.metrics.get("tc.cc_lockfree_reads"),
            "before_image_reads": kernel.metrics.get("tc.cc_before_image_reads"),
        }
    finally:
        kernel.close()


def _publish() -> None:
    write_results("cc", dict(_RESULTS), seed=SEED)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_ecc_policy_throughput(preset):
    rows = []
    for policy in CC_POLICIES:
        row = {"preset": preset, **_drive(policy, PRESETS[preset])}
        series(f"E-CC YCSB-{preset}", **row)
        rows.append(row)
        _RESULTS["rows"].append(row)
    _publish()
    by_policy = {row["policy"]: row for row in rows}
    # Correctness floor regardless of host: the lock-free read paths ran.
    assert by_policy["occ"]["lockfree_reads"] > 0
    if preset == "B":
        _RESULTS["b_speedup_best"] = round(
            max(
                by_policy["occ"]["txns_per_s"], by_policy["mvcc"]["txns_per_s"]
            )
            / by_policy["2pl"]["txns_per_s"],
            3,
        )
        _publish()
        if (os.cpu_count() or 1) >= 4:
            # On a real multi-core host the read-heavy contended skew
            # must reward dropping read locks.
            assert _RESULTS["b_speedup_best"] >= 1.2, rows
