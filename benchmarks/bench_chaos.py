"""E-CHAOS — fault-tolerance cost under deterministic chaos.

Not a throughput figure: this experiment measures what the robustness
machinery *does* under injected failures, and proves it keeps the paper's
contracts while doing it.  Series regenerated:

- chaos torture at increasing fault density (rules per horizon): commits
  vs aborts vs indeterminate-resolved outcomes, heal rounds, supervisor
  restarts, resend/redo volume — all with zero invariant violations;
- the fault-free control run through the same harness, so the injected
  runs have a baseline;
- a seed sweep at fixed density showing outcome counts are stable in
  aggregate while every individual run stays a pure function of its seed.

Each parametrised run drops ``benchmarks/results/BENCH_chaos_*.json``
with the chaos report plus the full metrics snapshot behind it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import series, write_results
from repro.sim.chaos import ChaosRunner

#: (label, rules, seed) — density ladder: how many random fault rules are
#: scattered over the run's horizon.  rules=0 is the fault-free control.
DENSITIES = [
    ("control", 0, 11),
    ("light", 4, 11),
    ("default", 8, 11),
    ("heavy", 14, 11),
]


@pytest.mark.benchmark(group="echaos-density")
@pytest.mark.parametrize("label,rules,seed", DENSITIES)
def test_echaos_fault_density(benchmark, label, rules, seed):
    state = {}

    def torture():
        runner = ChaosRunner(seed=seed, txns=150, rules=rules, horizon=800)
        state["runner"] = runner
        state["report"] = runner.run()
        return state["report"]

    benchmark.pedantic(torture, rounds=1, iterations=1)
    runner, report = state["runner"], state["report"]
    counters = runner.metrics.counters()
    resolved = report["resolved_committed"] + report["resolved_aborted"]
    row = {
        "density": label,
        "rules": rules,
        "faults_fired": report["faults_fired"],
        "committed": report["committed"],
        "aborted": report["aborted"],
        "resolved": resolved,
        "heals": report["heals"],
        "dc_restarts": counters.get("supervisor.dc_restarts", 0),
        "tc_restarts": counters.get("supervisor.tc_restarts", 0),
        "zombies_cleared": counters.get("supervisor.zombies_cleared", 0),
        "redo_ops": counters.get("tc.redo_ops", 0),
        "resends": counters.get("tc.resends", 0),
        "invariant_checks": report["invariant_checks"],
    }
    benchmark.extra_info.update(row)
    series("E-CHAOS density", **row)
    write_results(f"chaos_{label}", {**row, "report": report}, runner.metrics)
    # The run only returns at all if every invariant held after every heal.
    assert report["committed"] + report["aborted"] + resolved == report["txns"]
    if rules == 0:
        assert report["faults_fired"] == 0 and report["heals"] == 0


@pytest.mark.benchmark(group="echaos-seed-sweep")
def test_echaos_seed_sweep(benchmark):
    """Aggregate outcomes over a seed sweep at default density."""
    seeds = list(range(20, 28))
    state = {}

    def sweep():
        reports = [ChaosRunner(seed=seed, txns=80).run() for seed in seeds]
        state["reports"] = reports
        return reports

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    reports = state["reports"]
    row = {
        "seeds": len(seeds),
        "committed": sum(r["committed"] for r in reports),
        "aborted": sum(r["aborted"] for r in reports),
        "resolved": sum(
            r["resolved_committed"] + r["resolved_aborted"] for r in reports
        ),
        "faults_fired": sum(r["faults_fired"] for r in reports),
        "heals": sum(r["heals"] for r in reports),
        "fault_points": sorted(
            {point for r in reports for point in r["fault_points_hit"]}
        ),
    }
    benchmark.extra_info.update(row)
    series("E-CHAOS sweep", **row)
    write_results("chaos_sweep", row)
    assert row["committed"] + row["aborted"] + row["resolved"] == 80 * len(seeds)
