"""E-SMO — system-transaction logging and reordered recovery (Section 5.2).

Series regenerated:

- DC-log bytes per split (logical pre-split record + physical new page)
  vs per consolidation (physical merged page) — the paper predicts
  consolidations cost more log space but "page deletes are rare, so the
  extra cost should not be significant";
- the causality-gate prompts (log forces demanded from the TC by SMOs);
- recovery with SMOs replayed *before* TC redo, timed against tree size;
- the heap contrast: a fixed-page structure never runs an SMO.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_unbundled, load_keys, series
from repro.common.config import DcConfig
from repro.dc.dclog import (
    KeysRemovedRecord,
    PageFreeRecord,
    PageImageRecord,
    SysTxnCommitRecord,
)


def log_bytes_by_kind(kernel):
    """Split the stable DC log's bytes into per-record-kind totals."""
    totals: dict[str, int] = {}
    for record in kernel.dc.storage.dc_log_entries():
        name = type(record).__name__
        totals[name] = totals.get(name, 0) + record.encoded_size()
    return totals


@pytest.mark.benchmark(group="esmo-splits")
def test_esmo_split_logging_cost(benchmark):
    def run():
        kernel = fresh_unbundled(page_size=512)
        load_keys(kernel, 300)
        return kernel

    kernel = benchmark(run)
    splits = kernel.metrics.get("btree.leaf_splits")
    totals = log_bytes_by_kind(kernel)
    physical = totals.get("PageImageRecord", 0)
    logical = totals.get("KeysRemovedRecord", 0)
    benchmark.extra_info.update(
        {"splits": splits, "physical_bytes": physical, "logical_bytes": logical}
    )
    series(
        "E-SMO splits",
        splits=splits,
        physical_bytes=physical,
        logical_bytes=logical,
        logical_per_split=round(logical / max(splits, 1)),
        gate_prompts=kernel.metrics.get("dc.log_force_prompts"),
    )
    assert logical < physical  # split-key records are tiny, images are not


@pytest.mark.benchmark(group="esmo-consolidate")
def test_esmo_consolidation_logging_cost(benchmark):
    def run():
        kernel = fresh_unbundled(page_size=512)
        load_keys(kernel, 200)
        for key in range(200):
            if key % 4 != 0:
                with kernel.begin() as txn:
                    txn.delete("t", key)
        return kernel

    kernel = benchmark(run)
    merges = kernel.metrics.get("btree.consolidations")
    totals = log_bytes_by_kind(kernel)
    series(
        "E-SMO consolidations",
        consolidations=merges,
        physical_bytes=totals.get("PageImageRecord", 0),
        free_records=totals.get("PageFreeRecord", 0),
    )
    assert merges > 0


@pytest.mark.benchmark(group="esmo-recovery")
@pytest.mark.parametrize("records", [100, 400])
def test_esmo_recovery_with_smo_replay(benchmark, records):
    """DC restart: structures well-formed (SMO replay) before TC redo."""
    kernel = fresh_unbundled(page_size=512)
    load_keys(kernel, records)
    kernel.crash_dc()

    def recover():
        kernel.dc.recover(notify_tcs=False)
        # validate() walks every page through the stable-state loader,
        # which is exactly the reordered SMO replay
        kernel.dc.table("t").structure.validate()

    benchmark.pedantic(recover, rounds=1, iterations=1)
    kernel.tc._on_dc_restart(kernel.dc)  # TC redo after structures ready
    with kernel.begin() as txn:
        assert len(txn.scan("t")) == records
    series(
        "E-SMO recovery",
        records=records,
        dclog_records=kernel.dc.storage.dc_log_length(),
    )


def test_esmo_heap_runs_no_system_transactions():
    """Fixed-page structures never split: zero SMOs after creation."""
    kernel = fresh_unbundled()
    kernel.dc.create_table("h", kind="heap", bucket_count=32)
    kernel.tc.refresh_routes(kernel.dc)
    dclog_after_create = kernel.dc.storage.dc_log_length()
    for key in range(200):
        with kernel.begin() as txn:
            txn.insert("h", key, "v")
    series(
        "E-SMO heap",
        dclog_growth=kernel.dc.storage.dc_log_length() - dclog_after_create,
        splits=kernel.metrics.get("btree.leaf_splits"),
    )
    assert kernel.dc.storage.dc_log_length() == dclog_after_create


def test_esmo_gate_prompt_rate():
    """How often SMOs must demand a TC log force (the unbundling tax on
    structure modifications)."""
    kernel = fresh_unbundled(page_size=512)
    load_keys(kernel, 300)
    splits = kernel.metrics.get("btree.leaf_splits")
    prompts = kernel.metrics.get("dc.log_force_prompts")
    forced = kernel.metrics.get("tc.prompted_forces")
    series(
        "E-SMO gate",
        splits=splits,
        gate_prompts=prompts,
        prompted_forces=forced,
        prompts_per_split=round(prompts / max(splits, 1), 2),
    )
    assert prompts >= splits  # every split with embedded TC ops checks
