"""E-RECOVERY — crash-competitive recovery time (Sections 4.2, 5.2).

Three series, one results file (``BENCH_recovery.json``):

- **RTO vs log size** — time-to-recover after a TC crash as the log
  grows, with and without periodic checkpoints.  Checkpoints terminate
  the idempotence contract at the RSSP *and* truncate the log below it,
  so restart redo work — and hence RTO — stays flat instead of growing
  with history.  Asserted: at the largest log size the checkpointed RTO
  is at most half the uncheckpointed one.
- **Parallel redo speedup** — TC restart over 4 DC server processes,
  redo stream fanned out per DC vs forced sequential.  Every redo
  operation is a synchronous pipe round trip, so the fan-out converts
  restart from sum-of-streams to max-of-streams.  Asserted: >= 1.3x.
- **Journal growth** — the process-mode DC journal with periodic
  ``checkpoint_dc_log`` + compaction stays bounded by live state, while
  the same workload without compaction grows with history.

Run (the CI recovery lane does exactly this):

    PYTHONPATH=src:. python -m pytest -q -p no:benchmark -s \\
        benchmarks/bench_recovery.py
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import fresh_unbundled, series, write_results
from repro.common.config import ChannelConfig, DcConfig, KernelConfig, TcConfig
from repro.kernel.unbundled import UnbundledKernel

SEED = 7
LOG_SIZES = (100, 400, 1600)

#: Sections accumulate here; every test rewrites the (single) results
#: file so a full run of this module leaves one complete document.
_RESULTS: dict = {}
_T0 = time.time()


def _publish() -> None:
    write_results("recovery", _RESULTS, seed=SEED, wall_time_s=time.time() - _T0)


def _timed_tc_restart(kernel):
    kernel.crash_tc()
    start = time.perf_counter()
    stats = kernel.recover_tc()
    return (time.perf_counter() - start) * 1000.0, stats


def _rto_for(txns: int, checkpoints: bool):
    kernel = fresh_unbundled(page_size=1024)
    interval = max(1, txns // 8)
    for index in range(txns):
        with kernel.begin() as txn:
            txn.insert("t", index, f"value-{index:06d}")
        if checkpoints and (index + 1) % interval == 0:
            assert kernel.checkpoint()
    rto_ms, stats = _timed_tc_restart(kernel)
    with kernel.begin() as txn:
        assert len(txn.scan("t")) == txns
    return {
        "rto_ms": round(rto_ms, 3),
        "redo_ops": stats["redo_ops"],
        "truncated_records": kernel.metrics.get("tclog.truncated_records"),
    }


def test_erecovery_rto_vs_log_size():
    rows = []
    for txns in LOG_SIZES:
        baseline = _rto_for(txns, checkpoints=False)
        checkpointed = _rto_for(txns, checkpoints=True)
        row = {
            "txns": txns,
            "no_ckpt_rto_ms": baseline["rto_ms"],
            "no_ckpt_redo_ops": baseline["redo_ops"],
            "ckpt_rto_ms": checkpointed["rto_ms"],
            "ckpt_redo_ops": checkpointed["redo_ops"],
            "ckpt_truncated_records": checkpointed["truncated_records"],
        }
        rows.append(row)
        series("E-RECOVERY rto", **row)
    _RESULTS["rto_vs_log_size"] = rows
    _publish()
    largest = rows[-1]
    # Redo volume is deterministic: without checkpoints it is the whole
    # history; with them, at most the last interval's worth.
    assert largest["ckpt_redo_ops"] < largest["no_ckpt_redo_ops"] / 4
    assert largest["ckpt_truncated_records"] > 0
    # The headline claim: checkpoint-driven truncation halves (at least)
    # the restart time once the log is big enough for redo to dominate.
    assert largest["ckpt_rto_ms"] <= 0.5 * largest["no_ckpt_rto_ms"], rows


def _process_kernel(dc_count: int, parallel_redo: bool) -> UnbundledKernel:
    config = KernelConfig(
        dc=DcConfig(page_size=1024),
        tc=TcConfig(parallel_redo=parallel_redo),
        channel=ChannelConfig(transport="process"),
    )
    kernel = UnbundledKernel(config, dc_count=dc_count)
    for index in range(dc_count):
        name = f"dc{index + 1}" if dc_count > 1 else "dc"
        kernel.create_table(f"t{index}", dc_name=name)
    return kernel


def _process_restart_rto(dc_count: int, parallel_redo: bool, rows: int = 800):
    kernel = _process_kernel(dc_count, parallel_redo)
    try:
        for index in range(rows):
            with kernel.begin() as txn:
                txn.insert(f"t{index % dc_count}", index, f"value-{index:06d}")
        rto_ms, stats = _timed_tc_restart(kernel)
        with kernel.begin() as txn:
            seen = sum(len(txn.scan(f"t{i}")) for i in range(dc_count))
        assert seen == rows
        fanouts = kernel.metrics.get("tc.redo_parallel_fanouts")
        return rto_ms, stats["redo_ops"], fanouts
    finally:
        kernel.close()


@pytest.mark.process
def test_erecovery_parallel_redo_speedup():
    """1-vs-4 DC server processes: fanning the redo stream out per DC
    turns restart into max-of-streams instead of sum-of-streams."""
    one_dc_ms, one_redo, one_fan = _process_restart_rto(1, parallel_redo=True)
    seq_ms, seq_redo, seq_fan = _process_restart_rto(4, parallel_redo=False)
    par_ms, par_redo, par_fan = _process_restart_rto(4, parallel_redo=True)
    assert one_fan == 0 and seq_fan == 0 and par_fan == 1
    assert seq_redo == par_redo
    speedup = seq_ms / par_ms
    row = {
        "redo_ops": par_redo,
        "one_dc_rto_ms": round(one_dc_ms, 3),
        "four_dc_sequential_rto_ms": round(seq_ms, 3),
        "four_dc_parallel_rto_ms": round(par_ms, 3),
        "parallel_speedup": round(speedup, 3),
    }
    _RESULTS["parallel_redo"] = row
    _publish()
    series("E-RECOVERY parallel redo", **row)
    assert speedup >= 1.3, row


@pytest.mark.process
def test_erecovery_journal_stays_bounded():
    """Same update workload twice: with periodic DC-log checkpoints (and
    the compaction they trigger) the journal tracks live state; without
    them it grows with history."""

    def run(compact: bool) -> int:
        kernel = _process_kernel(1, parallel_redo=True)
        try:
            for round_no in range(4):
                for key in range(50):
                    with kernel.begin() as txn:
                        if round_no == 0:
                            txn.insert("t0", key, f"r{round_no}-{key:05d}")
                        else:
                            txn.update("t0", key, f"r{round_no}-{key:05d}")
                assert kernel.checkpoint()
                if compact:
                    kernel.dc.checkpoint_dc_log()
            size = kernel.dc.stats()["journal_bytes"]
            with kernel.begin() as txn:
                assert len(txn.scan("t0")) == 50
            return size
        finally:
            kernel.close()

    unbounded = run(compact=False)
    bounded = run(compact=True)
    row = {
        "journal_bytes_no_compaction": unbounded,
        "journal_bytes_with_compaction": bounded,
        "reduction": round(unbounded / max(1, bounded), 3),
    }
    _RESULTS["journal_growth"] = row
    _publish()
    series("E-RECOVERY journal", **row)
    assert bounded < unbounded / 2, row
