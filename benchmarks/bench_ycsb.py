"""YCSB — the standard cloud-serving presets on both engines.

Complements FIG1 with the community-standard mixes: each preset runs on
the unbundled kernel and the monolithic baseline, so the architecture gap
can be read per workload class (read-heavy C narrows it; RMW-heavy F and
scan-heavy E widen it — scans pay probes, RMW pays validation reads).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import series
from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.kernel.monolithic import MonolithicEngine
from repro.workloads.ycsb import PRESETS, YcsbConfig, YcsbWorkload

OPS = 200


def unbundled():
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=1024)))
    kernel.create_table("usertable")
    return kernel


def monolithic():
    engine = MonolithicEngine(DcConfig(page_size=1024))
    engine.create_table("usertable")
    return engine


@pytest.mark.benchmark(group="ycsb")
@pytest.mark.parametrize("preset", sorted(PRESETS))
@pytest.mark.parametrize("engine_kind", ["unbundled", "monolithic"])
def test_ycsb_preset(benchmark, preset, engine_kind):
    engine = unbundled() if engine_kind == "unbundled" else monolithic()
    workload = YcsbWorkload(
        engine.begin, config=YcsbConfig(preset=preset, keyspace=300, seed=7)
    )
    workload.load()

    def run():
        return workload.run(OPS)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {"committed": stats.committed, "ops_per_s": round(stats.ops_per_second)}
    )
    series(
        f"YCSB-{preset}",
        engine=engine_kind,
        ops_per_s=round(stats.ops_per_second),
        committed=stats.committed,
    )
