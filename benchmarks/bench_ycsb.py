"""YCSB — the standard cloud-serving presets on both engines.

Complements FIG1 with the community-standard mixes: each preset runs on
the unbundled kernel and the monolithic baseline, so the architecture gap
can be read per workload class (read-heavy C narrows it; RMW-heavy F and
scan-heavy E widen it — scans pay probes, RMW pays validation reads).
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, series, write_results
from repro import KernelConfig, UnbundledKernel
from repro.common.config import DcConfig
from repro.kernel.monolithic import MonolithicEngine
from repro.obs import Tracer, validate_chrome_trace, write_chrome_trace
from repro.workloads.ycsb import PRESETS, YcsbConfig, YcsbWorkload

OPS = 200


def unbundled():
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=1024)))
    kernel.create_table("usertable")
    return kernel


def monolithic():
    engine = MonolithicEngine(DcConfig(page_size=1024))
    engine.create_table("usertable")
    return engine


@pytest.mark.benchmark(group="ycsb")
@pytest.mark.parametrize("preset", sorted(PRESETS))
@pytest.mark.parametrize("engine_kind", ["unbundled", "monolithic"])
def test_ycsb_preset(benchmark, preset, engine_kind):
    engine = unbundled() if engine_kind == "unbundled" else monolithic()
    workload = YcsbWorkload(
        engine.begin, config=YcsbConfig(preset=preset, keyspace=300, seed=7)
    )
    workload.load()

    def run():
        return workload.run(OPS)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {"committed": stats.committed, "ops_per_s": round(stats.ops_per_second)}
    )
    series(
        f"YCSB-{preset}",
        engine=engine_kind,
        ops_per_s=round(stats.ops_per_second),
        committed=stats.committed,
    )


def test_ycsb_traced_smoke():
    """One fully traced preset-A run: the CI observability gate.

    Exports ``benchmarks/results/TRACE_ycsb.json`` (Chrome trace-event
    JSON — drag into https://ui.perfetto.dev), validates its shape, and
    asserts the tentpole property: a committed transaction's root span
    links its lock waits, log forces, channel sends and DC execution in
    one tree.  No pytest-benchmark machinery — this is a smoke test, not
    a timing.
    """
    seed = 7
    tracer = Tracer()
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=1024)), tracer=tracer
    )
    kernel.create_table("usertable")
    workload = YcsbWorkload(
        kernel.begin, config=YcsbConfig(preset="A", keyspace=300, seed=seed)
    )
    workload.load()
    started = time.perf_counter()
    stats = workload.run(OPS)
    wall_time_s = time.perf_counter() - started
    assert stats.committed > 0

    trace_path = write_chrome_trace(RESULTS_DIR / "TRACE_ycsb.json", tracer)
    document = json.loads(trace_path.read_text())
    problems = validate_chrome_trace(document)
    assert not problems, problems

    committed_roots = [
        span
        for span in tracer.finished_spans()
        if span.name == "txn" and span.tags.get("outcome") == "committed"
    ]
    assert committed_roots
    required = {"tc.lock_wait", "tc.log_force", "channel.send", "dc.execute"}
    assert any(
        required <= tracer.descendant_names(root) for root in committed_roots
    ), "no committed transaction trace contains all required child spans"

    result_path = write_results(
        "ycsb_traced",
        {
            "preset": "A",
            "engine": "unbundled",
            "ops": OPS,
            "committed": stats.committed,
            "ops_per_s": round(stats.ops_per_second),
            "spans": len(tracer.finished_spans()),
            "trace_file": trace_path.name,
        },
        kernel.metrics,
        seed=seed,
        wall_time_s=wall_time_s,
    )
    percentiles = json.loads(result_path.read_text())["percentiles"]
    latency = percentiles["tc.commit_latency_ms"]
    assert latency["p50"] is not None
    assert latency["p95"] is not None
    assert latency["p99"] is not None
    series(
        "YCSB-A traced",
        committed=stats.committed,
        spans=len(tracer.finished_spans()),
        p50_ms=round(latency["p50"], 3),
        p99_ms=round(latency["p99"], 3),
    )
