"""FIG2 — the cloud movie site (Figure 2, Section 6.3).

Regenerates the scenario's claims as measurable series:

- W1-W4 each touch at most 2 machines (clustering works);
- the cross-machine write W2 commits with a *single* log force and no 2PC,
  vs the textbook 2PC baseline's 4N messages and 2N+1 forces;
- the read-only TC's W1 throughput is unaffected by concurrent updaters
  (versioned read-committed never blocks);
- simulated wide-area latency multiplies the 2PC gap by round trips.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import series
from repro.cloud.movie_site import MovieSite
from repro.cloud.two_pc import TwoPhaseCommitSystem
from repro.common.config import ChannelConfig


def loaded_site(**kwargs) -> MovieSite:
    site = MovieSite(**kwargs)
    for index in range(10):
        site.add_movie(f"m{index}", {"title": f"Movie {index}"})
    for index in range(20):
        site.register_user(f"u{index}", {"name": f"User {index}"})
    for user in range(20):
        for movie in range(0, 10, 3):
            site.post_review(f"u{user}", f"m{movie}", f"review {user}/{movie}")
    return site


@pytest.fixture(scope="module")
def site() -> MovieSite:
    return loaded_site()


@pytest.mark.benchmark(group="fig2-workloads")
def test_fig2_w1_reviews_for_movie(benchmark, site):
    result = benchmark(site.reviews_for_movie, "m0")
    assert len(result) == 20
    _r, machines = site.machines_touched(site.reviews_for_movie, "m0")
    benchmark.extra_info["machines"] = machines
    series("FIG2 W1", machines=machines, reviews=len(result))
    assert machines == 1


@pytest.mark.benchmark(group="fig2-workloads")
def test_fig2_w2_post_review(benchmark, site):
    counter = {"n": 0}

    def post():
        counter["n"] += 1
        site.post_review("u1", f"bench-movie-{counter['n']}", "text")

    benchmark(post)
    _r, machines = site.machines_touched(
        site.post_review, "u1", "bench-machines", "text"
    )
    benchmark.extra_info["machines"] = machines
    series("FIG2 W2", machines=machines, twopc_messages=0)
    assert machines == 2


@pytest.mark.benchmark(group="fig2-workloads")
def test_fig2_w3_update_profile(benchmark, site):
    benchmark(site.update_profile, "u2", {"name": "User 2", "bio": "updated"})
    _r, machines = site.machines_touched(
        site.update_profile, "u2", {"name": "User 2"}
    )
    benchmark.extra_info["machines"] = machines
    series("FIG2 W3", machines=machines)
    assert machines == 1


@pytest.mark.benchmark(group="fig2-workloads")
def test_fig2_w4_my_reviews(benchmark, site):
    result = benchmark(site.my_reviews, "u1")
    _r, machines = site.machines_touched(site.my_reviews, "u1")
    benchmark.extra_info["machines"] = machines
    series("FIG2 W4", machines=machines, reviews=len(result))
    assert machines == 1


@pytest.mark.benchmark(group="fig2-commit-cost")
def test_fig2_unbundled_cross_machine_commit(benchmark):
    site = loaded_site()
    counter = {"n": 0}
    forces_before = site.metrics.get("tclog.forces")
    msgs_before = site.metrics.get("channel.requests")

    def w2():
        counter["n"] += 1
        site.post_review("u3", f"cc-{counter['n']}", "t")

    benchmark(w2)
    runs = max(counter["n"], 1)
    forces = (site.metrics.get("tclog.forces") - forces_before) / runs
    messages = (site.metrics.get("channel.requests") - msgs_before) / runs
    benchmark.extra_info.update(
        {"log_forces_per_txn": round(forces, 2), "messages_per_txn": round(messages, 2)}
    )
    series(
        "FIG2 commit unbundled",
        log_forces_per_txn=round(forces, 2),
        messages_per_txn=round(messages, 2),
    )
    assert forces <= 1.5  # one force per commit (single commit point)


@pytest.mark.benchmark(group="fig2-commit-cost")
def test_fig2_two_phase_commit_baseline(benchmark):
    system = TwoPhaseCommitSystem(["dc-reviews", "dc-users"])

    def commit():
        return system.commit_transaction()

    outcome = benchmark(commit)
    benchmark.extra_info.update(
        {
            "log_forces_per_txn": outcome.log_forces,
            "messages_per_txn": outcome.messages,
            "round_trips": outcome.round_trips,
        }
    )
    series(
        "FIG2 commit 2PC",
        log_forces_per_txn=outcome.log_forces,
        messages_per_txn=outcome.messages,
        round_trips=outcome.round_trips,
    )
    assert outcome.log_forces == 5 and outcome.messages == 8


@pytest.mark.benchmark(group="fig2-reader-isolation")
def test_fig2_w1_unaffected_by_concurrent_updater(benchmark):
    """Readers never block: W1 with an open updater transaction in flight."""
    site = loaded_site()
    pending_uid = "u-pending"
    writer_tc = site.owner_of(pending_uid)
    writer = writer_tc.begin()
    site.reviews.insert(writer, ("m0", pending_uid), "uncommitted")

    result = benchmark(site.reviews_for_movie, "m0")
    assert len(result) == 20  # the pending review is invisible, not blocking
    writer.abort()
    series("FIG2 reader-isolation", blocked="never", rows=len(result))


def test_fig2_wan_latency_sweep():
    """Simulated WAN: unbundled W2 round trips vs 2PC round trips."""
    rows = []
    for latency in (1.0, 10.0, 50.0):
        site = loaded_site(channel_config=ChannelConfig(latency_ms=latency))
        start = sum(c.sim_time_ms for tc in site.updaters for c in tc.channels().values())
        site.post_review("u1", "wan-movie", "t")
        elapsed = (
            sum(c.sim_time_ms for tc in site.updaters for c in tc.channels().values())
            - start
        )
        twopc = TwoPhaseCommitSystem(["a", "b"], latency_ms=latency)
        outcome = twopc.commit_transaction()
        rows.append((latency, round(elapsed, 1), outcome.sim_latency_ms))
    for latency, unbundled_ms, twopc_ms in rows:
        series(
            "FIG2 WAN",
            latency_ms=latency,
            unbundled_w2_ms=unbundled_ms,
            twopc_extra_ms=twopc_ms,
        )
