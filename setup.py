"""Shim for environments without the ``wheel`` package (no PEP 660 path).

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` / ``python setup.py develop``.
"""

from setuptools import setup

setup()
