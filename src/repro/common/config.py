"""Configuration knobs for the unbundled kernel.

Everything an experiment sweeps lives here so benchmark code can vary one
dataclass instead of threading loose parameters through constructors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError


class PageSyncStrategy(enum.Enum):
    """The three page-sync alternatives of Section 5.1.2.

    A page being flushed must carry an LSN representation that is stable
    atomically with it:

    - ``DELAY`` — refuse further operations on the page and wait until the
      TC's low-water mark covers every included LSN, then write a single
      plain LSN.  Cheapest on page space, delays the flush.
    - ``FULL_ABLSN`` — write the entire ``<LSNlw, {LSNin}>`` onto the page
      immediately.  No delay, costs page space.
    - ``PRUNE_THEN_WRITE`` — wait only until ``{LSNin}`` has shrunk below a
      threshold, then write the (small) abLSN.  The hybrid.
    """

    DELAY = "delay"
    FULL_ABLSN = "full_ablsn"
    PRUNE_THEN_WRITE = "prune_then_write"


class RangeLockProtocol(enum.Enum):
    """The two range-locking alternatives of Section 3.1."""

    FETCH_AHEAD = "fetch_ahead"
    RANGE_PARTITION = "range_partition"


#: Vocabulary the typed config validation below accepts.  Kept as module
#: constants so error messages and tests quote one source of truth.
TRANSPORTS = ("inproc", "process", "shm")
#: Transports whose DCs/TCs are real OS processes (``"shm"`` is the
#: process transport plus shared-memory rings on co-located links).
PROCESS_TRANSPORTS = ("process", "shm")
START_METHODS = ("", "fork", "spawn", "forkserver")
SHARING_MODES = ("read_committed", "dirty")
CC_POLICIES = ("2pl", "occ", "mvcc")


@dataclass
class DcConfig:
    """Data component configuration."""

    #: Usable bytes per page (the space model drives splits/consolidates).
    page_size: int = 4096
    #: Pages the buffer pool may cache before evicting.
    buffer_capacity: int = 256
    #: How a page's abLSN is made stable at flush time.
    sync_strategy: PageSyncStrategy = PageSyncStrategy.FULL_ABLSN
    #: PRUNE_THEN_WRITE flushes once ``len({LSNin})`` is at or below this.
    prune_threshold: int = 4
    #: Leaf fill fraction below which a consolidation is attempted.
    min_fill: float = 0.25
    #: Number of replies remembered for duplicate-request resends.
    reply_cache_size: int = 4096
    #: Snapshot-read extension (Section 6.3): how many commit sequence
    #: numbers of version history the DC retains for snapshot readers.
    #: 0 disables snapshots (the paper's plain two-version scheme).
    snapshot_retention: int = 0
    #: Cap on superseded versions kept per record.
    snapshot_max_versions: int = 16


@dataclass
class TcConfig:
    """Transactional component configuration."""

    #: Lock wait budget in "ticks" of the simulated scheduler / real ms.
    lock_timeout: float = 1.0
    #: Deadlock detection: check the waits-for graph on every block.
    deadlock_detection: bool = True
    #: How range reads are locked.
    range_protocol: RangeLockProtocol = RangeLockProtocol.FETCH_AHEAD
    #: Keys per fetch-ahead probe batch.
    fetch_ahead_batch: int = 16
    #: Key-range gap locking for serializable scans/inserts (fetch-ahead
    #: protocol only; the partition protocol excludes phantoms wholesale).
    phantom_protection: bool = True
    #: Give up after this many resend attempts of one operation.
    max_resend_attempts: int = 1000
    #: Number of partitions for the RANGE_PARTITION protocol.
    range_partitions: int = 64
    #: Group commit: up to this many concurrently-committing transactions
    #: share one log force.  Durability is never relaxed — a commit is
    #: acknowledged only once its record's LSN is at or below EOSL; the
    #: knob only coalesces *when* the force happens (1 = force per commit,
    #: the paper-faithful default).
    group_commit_size: int = 1
    #: How long (simulated ms, also the real wait bound) a committing
    #: transaction lingers for group-commit company before forcing anyway.
    group_commit_deadline_ms: float = 1.0
    #: Operation batching (fast path, off by default): accumulate mutations
    #: per DC and ship them in one ``BatchedPerform`` envelope per round
    #: trip instead of one message per operation.  The envelope is a
    #: transport unit, not an atomicity unit — per-op request ids, replies
    #: and idempotence/resend semantics are unchanged.
    batch_ops: bool = False
    #: Flush a transaction's accumulated envelope for a DC at this many
    #: operations (commit and dependent reads flush earlier).
    batch_max_ops: int = 8
    #: TC-side undo-info cache (fast path, off by default): record values
    #: learned from operation replies are kept under the covering lock so
    #: the read-before-write undo-information round trip usually vanishes.
    undo_cache: bool = False
    #: Cap on cached undo-info entries (FIFO eviction).
    undo_cache_size: int = 4096
    #: Send LWM/EOSL to DCs every this-many log appends.
    lwm_interval: int = 8
    #: Operations re-sent after this many ticks without a reply.
    resend_timeout: float = 0.5
    #: Base simulated backoff between resend attempts (doubles per retry).
    resend_backoff_ms: float = 0.1
    #: Ceiling for the exponential backoff.
    resend_backoff_max_ms: float = 25.0
    #: Total simulated backoff one operation may accumulate before the TC
    #: gives up with ResendExhaustedError (the per-operation timeout budget).
    op_timeout_budget_ms: float = 5_000.0
    #: Stripes in the lock-manager hash table: concurrent committers touch
    #: per-stripe mutexes instead of serializing on one global lock-table
    #: mutex.  1 reproduces the old single-mutex behavior exactly.
    lock_stripes: int = 16
    #: Multi-DC batch flush (process transport): pre-send every DC's
    #: envelope concurrently through the pipelined async channel path, so
    #: one TC thread keeps N DC processes busy at once.  No effect on
    #: transports that cannot pipeline (the in-process default).
    pipeline_flush: bool = True
    #: Checkpoint-driven log truncation (Section 4.2 contract
    #: termination): after a checkpoint advances the redo scan start
    #: point, physically drop stable log records below it — capped at
    #: the oldest operation of any transaction without a stable end
    #: record, whose undo information restart still needs.  Bounds
    #: replay cost (and therefore recovery time); off reproduces the
    #: historical grow-forever log.
    truncate_log: bool = True
    #: Restart redo fan-out: replay the redo stream to all DCs
    #: concurrently (one worker per DC) instead of sequentially.  The
    #: per-DC streams are independent — LSN order is preserved within
    #: each DC, which is all idempotence needs.  Automatically falls
    #: back to sequential under fault injection or the deterministic
    #: scheduler to keep schedules reproducible.
    parallel_redo: bool = True
    #: TEST ONLY — skip read locks entirely, breaking strict 2PL on
    #: purpose.  The schedule explorer's negative control flips this to
    #: prove the serializability oracle catches the resulting r/w cycles;
    #: never enable it for anything that should be correct.
    unsafe_skip_read_locks: bool = False
    #: Cross-TC read flavor in the TC service tier (Section 6.2): the
    #: default ``ReadFlavor`` a TC server applies to ``read_other`` /
    #: ``scan_other`` requests that do not name one explicitly.
    #: ``"read_committed"`` uses the versioned before-image;
    #: ``"dirty"`` reads the latest (possibly uncommitted) value.
    sharing_mode: str = "read_committed"
    #: Concurrency-control policy (docs/architecture.md §19).  ``"2pl"``
    #: is the paper's strict two-phase locking; ``"occ"`` drops read locks
    #: and validates read/scan sets at commit against concurrently
    #: committed writers; ``"mvcc"`` serves reads from the committed
    #: before-image (snapshot-style, no read locks) with write locks and
    #: first-committer-wins read validation.  All three are serializable
    #: and swept by the schedule explorer's oracle.
    cc_policy: str = "2pl"
    #: TEST ONLY — OCC/MVCC negative control: skip commit-time read-set
    #: validation, admitting non-serializable interleavings on purpose so
    #: the explorer's oracle can prove it catches a cheating validator.
    unsafe_skip_validation: bool = False
    #: TEST ONLY — MVCC negative control: read the newest (possibly
    #: uncommitted) value instead of the committed before-image and skip
    #: read tracking, producing dirty reads the oracle must flag.
    unsafe_mvcc_read_newest: bool = False

    def __post_init__(self) -> None:
        if self.sharing_mode not in SHARING_MODES:
            raise ConfigError("TcConfig.sharing_mode", self.sharing_mode, SHARING_MODES)
        if self.cc_policy not in CC_POLICIES:
            raise ConfigError("TcConfig.cc_policy", self.cc_policy, CC_POLICIES)

    def retry_policy(self) -> "RetryPolicy":
        return RetryPolicy(
            max_attempts=self.max_resend_attempts,
            base_backoff_ms=self.resend_backoff_ms,
            max_backoff_ms=self.resend_backoff_max_ms,
            timeout_budget_ms=self.op_timeout_budget_ms,
        )

    @classmethod
    def optimized(cls, **overrides) -> "TcConfig":
        """The FIG1 fast-path configuration (docs/architecture.md §9).

        Operation batching, the undo-info cache and group commit all on;
        every §4.2.1 interaction contract is preserved, only round trips
        and log forces are coalesced.  The LWM broadcast interval is
        relaxed because every envelope already piggybacks the current
        EOSL — the broadcast only paces abLSN garbage collection, so a
        lazier cadence trades a little DC-side memory for fewer control
        messages, never correctness.
        """
        settings = dict(
            batch_ops=True,
            undo_cache=True,
            group_commit_size=8,
            lwm_interval=64,
        )
        settings.update(overrides)
        return cls(**settings)


@dataclass(frozen=True)
class RetryPolicy:
    """Unified resend policy: exponential backoff under a total budget.

    Backoff is *simulated* (charged to channel/metrics time, never slept)
    so retry storms are visible in experiments without slowing tests.  An
    operation is abandoned when either bound trips: attempts or budget.
    """

    max_attempts: int = 1000
    base_backoff_ms: float = 0.1
    max_backoff_ms: float = 25.0
    timeout_budget_ms: float = 5_000.0

    def backoff_ms(self, attempt: int) -> float:
        """Deterministic exponential backoff for the given attempt (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(self.base_backoff_ms * (2.0 ** (attempt - 1)), self.max_backoff_ms)

    def exhausted(self, attempts: int, waited_ms: float) -> bool:
        return attempts >= self.max_attempts or waited_ms >= self.timeout_budget_ms


@dataclass
class ChannelConfig:
    """The TC <-> DC transport: simulated in-process, or a real pipe.

    With ``transport="process"`` each DC runs as its own OS process
    (docs/architecture.md §10) and the misbehavior knobs below must stay
    zero — a pipe delivers reliably in order; resend/idempotence get
    exercised by killing the process instead.
    """

    #: One-way latency per message, simulated milliseconds.
    latency_ms: float = 0.0
    #: Probability a request or reply is dropped (exercises resends).
    loss_rate: float = 0.0
    #: Probability a delivered message is duplicated.
    duplicate_rate: float = 0.0
    #: Max positions a message may be reordered past its successors.
    reorder_window: int = 0
    #: Seed for the channel's private RNG (determinism).
    seed: int = 0
    #: ``"inproc"`` (default), ``"process"``, or ``"shm"`` — where DCs
    #: live.  ``"shm"`` is the process transport with a shared-memory ring
    #: pair attached per co-located link (net/shm.py): small frames become
    #: a cross-process memcpy, oversized frames and liveness stay on the
    #: pipe.  Incompatible with ``listen_host`` (rings need one machine).
    transport: str = "inproc"
    #: Process transport: real-time bound one request waits for its reply
    #: before the TC treats it as lost and its resend policy takes over.
    request_timeout_s: float = 30.0
    #: Process transport start method: "" = auto (fork where available,
    #: else spawn), or an explicit multiprocessing start method name.
    process_start_method: str = ""
    #: Negotiate the fast-path binary codec at Hello time
    #: (docs/architecture.md §17).  False forces the tagged codec on every
    #: connection — the mixed-version / tagged-only peer simulation.
    fast_codec: bool = True
    #: TCP data plane: when set (e.g. ``"127.0.0.1"``), DC and TC
    #: listeners bind ``tcp://<listen_host>:0`` (ephemeral port, pinned
    #: after the first Hello, TCP_NODELAY) instead of Unix sockets, so the
    #: tiers can live on other hosts.  "" keeps Unix-domain sockets.
    listen_host: str = ""
    #: ``transport="shm"``: requested bytes per ring direction (rounded
    #: down to a power of two; two rings per link).  Frames above a
    #: quarter of the ring take the pipe.
    shm_ring_bytes: int = 1 << 20
    #: ``transport="shm"``: bounded busy-poll iterations before a consumer
    #: parks (and a full producer falls back to the pipe).
    shm_spin: int = 200
    #: ``transport="shm"``: parked consumer's pipe-poll backstop timeout.
    #: Doorbell frames are the real wakeup; this only closes races.
    shm_park_ms: float = 5.0

    @property
    def process_family(self) -> bool:
        """True for every transport whose components are OS processes."""
        return self.transport in PROCESS_TRANSPORTS

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ConfigError("ChannelConfig.transport", self.transport, TRANSPORTS)
        if self.process_start_method not in START_METHODS:
            raise ConfigError(
                "ChannelConfig.process_start_method",
                self.process_start_method,
                START_METHODS,
            )
        if self.transport == "shm":
            if self.listen_host:
                raise ConfigError(
                    "ChannelConfig.listen_host",
                    self.listen_host,
                    ('transport="shm" is single-machine; use ""',),
                )
            if self.shm_ring_bytes < 4096:
                raise ConfigError(
                    "ChannelConfig.shm_ring_bytes",
                    self.shm_ring_bytes,
                    ("at least 4096",),
                )
        if self.shm_spin < 0:
            raise ConfigError("ChannelConfig.shm_spin", self.shm_spin)
        if self.shm_park_ms < 0:
            raise ConfigError("ChannelConfig.shm_park_ms", self.shm_park_ms)


@dataclass
class KernelConfig:
    """Bundle of everything, for one-call construction of a kernel."""

    dc: DcConfig = field(default_factory=DcConfig)
    tc: TcConfig = field(default_factory=TcConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    #: Process transport: directory holding per-DC journal volumes.  None
    #: = a kernel-owned temporary directory, removed on ``close()``; a
    #: caller-provided path persists across kernels (restart experiments).
    data_dir: Optional[str] = None
    #: TC service tier (docs/architecture.md §16): run the TC as this many
    #: OS processes instead of in the client.  0 = in-process TC (the
    #: historical mode).  The kernel itself drives at most one TC process;
    #: multi-TC fan-out goes through
    #: :class:`repro.cloud.router.TcServiceDeployment`.  Requires
    #: ``channel.transport == "process"``.
    tc_processes: int = 0
    #: Router fan-out: how many key partitions the TC service router
    #: spreads across its TC processes.  0 = one partition per TC.
    router_partitions: int = 0

    def __post_init__(self) -> None:
        if self.tc_processes < 0:
            raise ConfigError("KernelConfig.tc_processes", self.tc_processes)
        if self.router_partitions < 0:
            raise ConfigError("KernelConfig.router_partitions", self.router_partitions)
        if self.tc_processes and not self.channel.process_family:
            raise ConfigError(
                "KernelConfig.tc_processes",
                self.tc_processes,
                ('requires channel.transport "process" or "shm"',),
            )
