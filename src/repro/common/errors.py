"""Exception hierarchy for the unbundled kernel.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single handler while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransactionAborted(ReproError):
    """The transaction was rolled back and must not be used further.

    Raised both for explicit aborts that the caller then re-observes and
    for internally forced aborts (deadlock victims, crash-time losers).
    """

    def __init__(self, txn_id: int, reason: str = "aborted") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""

    def __init__(self, txn_id: int, cycle: tuple[int, ...]) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"deadlock victim (cycle {'->'.join(map(str, cycle))})"
        )
        self.cycle = cycle


class LockTimeoutError(ReproError):
    """A lock request waited longer than the configured timeout."""

    def __init__(self, txn_id: int, resource: object) -> None:
        super().__init__(f"transaction {txn_id} timed out waiting for {resource!r}")
        self.txn_id = txn_id
        self.resource = resource


class CrashedError(ReproError):
    """The component is crashed and cannot serve requests until restart."""

    def __init__(self, component: str) -> None:
        super().__init__(f"{component} is crashed")
        self.component = component


class ComponentUnavailableError(CrashedError):
    """An operation was addressed to a component that is known to be down.

    Raised instead of retrying into a dead component so callers fail fast
    within their timeout budget; the supervisor heals the component and the
    caller may then retry.  Subclasses :class:`CrashedError` so existing
    ``except CrashedError`` handlers keep working.
    """

    def __init__(self, component: str, attempts: int = 0, waited_ms: float = 0.0) -> None:
        CrashedError.__init__(self, component)
        self.attempts = attempts
        self.waited_ms = waited_ms


class ResendExhaustedError(ReproError):
    """An operation's resend policy ran out of attempts or timeout budget.

    The component was not known to be crashed — the channel simply never
    delivered an acknowledgement (sustained loss or a partition).
    """

    def __init__(
        self, op_id: object, component: str, attempts: int, waited_ms: float = 0.0
    ) -> None:
        super().__init__(
            f"operation {op_id} to {component} unacknowledged after "
            f"{attempts} attempts ({waited_ms:.1f}ms of backoff)"
        )
        self.op_id = op_id
        self.component = component
        self.attempts = attempts
        self.waited_ms = waited_ms


class ConfigError(ReproError):
    """A configuration value is outside the vocabulary the kernel accepts.

    Raised at config-construction time (``__post_init__``) so a typo like
    ``transport="proccess"`` fails where it was written instead of deep in
    kernel setup with an unrelated traceback.
    """

    def __init__(self, field: str, value: object, allowed: tuple = ()) -> None:
        hint = f" (expected one of {', '.join(map(repr, allowed))})" if allowed else ""
        super().__init__(f"invalid {field}: {value!r}{hint}")
        self.field = field
        self.value = value
        self.allowed = allowed


class TcRedirect(ReproError):
    """A request landed on a TC that does not own the key's partition.

    Retryable: ``owner`` names the TC that does own it; the router (or any
    client) re-issues the request there.  Section 6's disjoint update
    rights, surfaced as routing information instead of a hard failure.
    """

    def __init__(self, table: str, key: object, owner: str) -> None:
        super().__init__(
            f"key {key!r} of table {table!r} is owned by {owner}; retry there"
        )
        self.table = table
        self.key = key
        self.owner = owner


class InjectedFault(ReproError):
    """A fault deliberately raised by the fault-injection engine."""

    def __init__(self, point: str, note: str = "") -> None:
        super().__init__(f"injected fault at {point}" + (f": {note}" if note else ""))
        self.point = point
        self.note = note


class OwnershipError(ReproError):
    """A TC tried to update data outside its ownership partition.

    Section 6 requires that update rights of TCs sharing a DC be disjoint;
    this error enforces that invariant at the deployment layer.
    """


class PageOverflowError(ReproError):
    """A record does not fit on a page even after a structure modification."""


class SnapshotTooOldError(ReproError):
    """A snapshot read's watermark fell behind the DC's retention horizon."""

    def __init__(self, watermark: int, floor: int) -> None:
        super().__init__(
            f"snapshot watermark {watermark} is older than the retention "
            f"floor {floor}"
        )
        self.watermark = watermark
        self.floor = floor


class WriteAheadViolation(ReproError):
    """The buffer manager was asked to flush a page ahead of the stable log.

    Causality (Section 4.2) forbids making a page stable while it reflects
    operations that could still be lost by a TC crash.
    """


class UnknownTableError(ReproError):
    """An operation referenced a table the DC does not host."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class DuplicateKeyError(ReproError):
    """An insert found an existing (visible) record under the same key."""

    def __init__(self, table: str, key: object) -> None:
        super().__init__(f"duplicate key {key!r} in table {table!r}")
        self.table = table
        self.key = key


class NoSuchRecordError(ReproError):
    """An update/delete addressed a key with no visible record."""

    def __init__(self, table: str, key: object) -> None:
        super().__init__(f"no record with key {key!r} in table {table!r}")
        self.table = table
        self.key = key
