"""Logical records and the versioned-record model of Section 6.2.2.

A record is a key plus an opaque value.  Keys must be totally ordered
within a table (the B-tree relies on this).  Values are arbitrary Python
objects; :func:`sizeof_value` provides the byte-size model used by pages,
logs and the space experiments.

Versioned records support the paper's cross-TC *read committed* sharing: an
update produces a new *uncommitted* version while the *before* (committed)
version is retained.  The owning TC later sends version-cleanup operations
— promote on commit, discard on abort — so readers from other TCs never
block and no two-phase commit is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

Key = Any
Value = Any


class _Tombstone:
    """Sentinel marking a pending delete in a versioned record."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


class _KeyExtreme:
    """Totally-ordered sentinel below (or above) every ordinary key.

    Used to build composite-key range bounds, e.g. all reviews of movie m:
    ``low=(m, KEY_MIN)``, ``high=(m, KEY_MAX)``.
    """

    def __init__(self, top: bool) -> None:
        self._top = top

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _KeyExtreme):
            return (not self._top) and other._top
        return not self._top

    def __gt__(self, other: object) -> bool:
        if isinstance(other, _KeyExtreme):
            return self._top and not other._top
        return self._top

    def __le__(self, other: object) -> bool:
        return not self.__gt__(other)

    def __ge__(self, other: object) -> bool:
        return not self.__lt__(other)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _KeyExtreme) and other._top == self._top

    def __hash__(self) -> int:
        return hash(("_KeyExtreme", self._top))

    def __repr__(self) -> str:
        return "<KEY_MAX>" if self._top else "<KEY_MIN>"


KEY_MIN = _KeyExtreme(top=False)
KEY_MAX = _KeyExtreme(top=True)

#: Exact-type fast table for :func:`sizeof_value` (bool precedes int in the
#: legacy chain, so both get explicit entries here).
_FIXED_VALUE_SIZES = {type(None): 1, bool: 1, int: 8, float: 8}


def sizeof_value(value: Value) -> int:
    """Approximate encoded size in bytes of a record value.

    A deliberately simple, deterministic model: strings and bytes count
    their length, numbers count fixed widths, containers sum their parts
    plus small per-element overhead.  The absolute numbers only need to be
    consistent, since every experiment compares sizes produced by the same
    model.
    """
    # Exact-type dispatch first: the overwhelming majority of values are
    # plain strs/ints/floats, and the isinstance chain below (kept for
    # subclasses and containers) is measurably hot without it.
    kind = type(value)
    if kind is str:
        # ASCII length equals UTF-8 length — no throwaway encode.
        return len(value) if value.isascii() else len(value.encode("utf-8"))
    fixed = _FIXED_VALUE_SIZES.get(kind)
    if fixed is not None:
        return fixed
    if value is None or value is TOMBSTONE:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, frozenset, set)):
        return 2 + sum(sizeof_value(item) + 1 for item in value)
    if isinstance(value, dict):
        return 2 + sum(
            sizeof_value(k) + sizeof_value(v) + 2 for k, v in value.items()
        )
    return len(repr(value).encode("utf-8"))


def sizeof_key(key: Key) -> int:
    """Encoded size of a key; keys use the same model as values."""
    return sizeof_value(key)


@dataclass
class VersionedRecord:
    """A record slot inside a DC page.

    ``committed`` is the version visible to cross-TC read-committed
    readers.  ``pending`` is the uncommitted version produced by the owning
    TC's in-flight transaction (``TOMBSTONE`` for a pending delete); it is
    what the owner itself and dirty readers see.  Non-versioned tables keep
    everything in ``committed`` and never populate ``pending``.

    ``owner_tc`` links the record to the TC whose abLSN covers it — the
    record->TC chain of Section 6.1.2 that enables record-level page reset.

    **Snapshot extension** (Section 6.3 "potential for providing snapshot
    isolation"): versioned tables may additionally retain a bounded
    *history* of superseded committed versions, each stamped with the
    DC-local commit sequence number at which it was installed.
    ``commit_seq`` stamps the current committed value;
    :meth:`snapshot_value` reads as-of any past watermark.
    """

    key: Key
    committed: Value = None
    pending: Value = None
    has_pending: bool = False
    owner_tc: int = 0
    #: Commit sequence at which ``committed`` was installed (0 = unknown /
    #: non-versioned table).
    commit_seq: int = 0
    #: Superseded committed versions, oldest first: (commit_seq, value);
    #: TOMBSTONE records a deleted state.
    history: list = field(default_factory=list)

    # -- visibility ------------------------------------------------------

    def visible_value(self, read_committed: bool) -> Value:
        """The value a reader sees, or ``None`` for "no visible record".

        ``read_committed=True`` is the cross-TC flavor (before-version when
        an uncommitted version exists); ``False`` is the owner's own view /
        dirty read (latest version).
        """
        if read_committed:
            return self.committed
        if self.has_pending:
            return None if self.pending is TOMBSTONE else self.pending
        return self.committed

    def exists_for(self, read_committed: bool) -> bool:
        if read_committed:
            return self.committed is not None
        if self.has_pending:
            return self.pending is not TOMBSTONE
        return self.committed is not None

    # -- mutation by the DC ----------------------------------------------

    def set_pending(self, value: Value) -> None:
        self.pending = value
        self.has_pending = True

    def promote_pending(self, commit_seq: int = 0, keep_history: int = 0) -> None:
        """Version cleanup on commit: the pending version becomes committed.

        With ``keep_history > 0`` the superseded committed version is
        retained (up to that many entries) for snapshot readers, stamped
        with the sequence it originally carried.
        """
        if not self.has_pending:
            return
        if keep_history > 0 and self.commit_seq > 0:
            old = TOMBSTONE if self.committed is None else self.committed
            self.history.append((self.commit_seq, old))
            if len(self.history) > keep_history:
                del self.history[: len(self.history) - keep_history]
        self.committed = None if self.pending is TOMBSTONE else self.pending
        self.commit_seq = commit_seq
        self.pending = None
        self.has_pending = False

    def discard_pending(self) -> None:
        """Version cleanup on abort: drop the uncommitted version."""
        self.pending = None
        self.has_pending = False

    def snapshot_value(self, watermark: int) -> Value:
        """The committed value as of ``watermark``; None if the record did
        not (visibly) exist then.

        The caller (the DC) is responsible for rejecting watermarks older
        than its retention horizon — below the horizon, pruned history
        makes "did not exist" indistinguishable from "version discarded".
        """
        if self.commit_seq and self.commit_seq <= watermark:
            return self.committed
        for seq, value in reversed(self.history):
            if seq <= watermark:
                return None if value is TOMBSTONE else value
        return None

    def prune_history(self, oldest_seq_to_keep: int) -> int:
        """Drop history entries strictly older than the horizon."""
        before = len(self.history)
        self.history = [
            (seq, value) for seq, value in self.history if seq >= oldest_seq_to_keep
        ]
        return before - len(self.history)

    def max_seq(self) -> int:
        top = self.commit_seq
        for seq, _value in self.history:
            if seq > top:
                top = seq
        return top

    def is_dead(self) -> bool:
        """True when the slot holds no version at all and can be reclaimed."""
        return self.committed is None and not self.has_pending and not self.history

    # -- space model -------------------------------------------------------

    def encoded_size(self) -> int:
        size = sizeof_key(self.key) + 4  # slot header
        size += sizeof_value(self.committed)
        if self.has_pending:
            size += sizeof_value(self.pending)
        if self.owner_tc:
            size += 2  # the two-byte chain offset of Section 6.1.2
        if self.commit_seq:
            size += 8
        for _seq, value in self.history:
            size += 8 + sizeof_value(value)
        return size

    def clone(self) -> "VersionedRecord":
        return VersionedRecord(
            key=self.key,
            committed=self.committed,
            pending=self.pending,
            has_pending=self.has_pending,
            owner_tc=self.owner_tc,
            commit_seq=self.commit_seq,
            history=list(self.history),
        )


@dataclass(frozen=True)
class RecordView:
    """Immutable (key, value) pair returned by reads."""

    key: Key
    value: Value

    def as_tuple(self) -> tuple[Key, Value]:
        return (self.key, self.value)
