"""Shared primitives for the unbundled kernel.

This package holds the vocabulary both components speak: log sequence
numbers and the abstract-LSN algebra of Section 5.1.2, logical records and
operations, the TC/DC message API of Section 4.2.1, configuration, and the
exception hierarchy.
"""

from repro.common.errors import (
    CrashedError,
    DeadlockError,
    LockTimeoutError,
    OwnershipError,
    PageOverflowError,
    ReproError,
    TransactionAborted,
    WriteAheadViolation,
)
from repro.common.lsn import NULL_LSN, AbstractLsn, Lsn, LsnGenerator

__all__ = [
    "AbstractLsn",
    "CrashedError",
    "DeadlockError",
    "LockTimeoutError",
    "Lsn",
    "LsnGenerator",
    "NULL_LSN",
    "OwnershipError",
    "PageOverflowError",
    "ReproError",
    "TransactionAborted",
    "WriteAheadViolation",
]
