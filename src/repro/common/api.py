"""The TC/DC interaction API of Section 4.2.1, as typed messages.

The paper presents the interface as methods of the DC invoked by the TC but
explicitly allows any transport ("asynchronous messages ... in a cloud
environment, signals and shared variables ... for a multi-core design").
We model each call as a message dataclass so the same code runs over the
direct in-process transport and over the reordering/lossy simulated network
(:mod:`repro.net.channel`).

Messages TC -> DC:

- :class:`PerformOperation` — a logical operation with its unique request
  id (the LSN for mutations); resends reuse the id.
- :class:`BatchedPerform` — a transport envelope of several
  ``PerformOperation`` requests for the same DC, answered by one
  :class:`BatchedReply`.  Purely an optimization: per-op ids, replies and
  idempotence semantics are exactly those of the unbatched messages.
- :class:`EndOfStableLog` — WAL across components: the DC may make stable
  any page whose operations are all at or below EOSL.
- :class:`LowWaterMark` — the TC has replies for everything <= LWM, so the
  DC can raise page low waters and prune {LSNin}.
- :class:`CheckpointRequest` — advance the redo scan start point: the DC
  must make stable every page containing operations below ``new_rssp``.
- :class:`RestartBegin` / :class:`RestartEnd` — bracket TC-driven restart;
  ``RestartBegin`` carries LSNst, the largest LSN on the stable TC log,
  telling the DC which cached state must be reset.

Messages DC -> TC:

- :class:`OperationReply` — correlated by request id.
- :class:`CheckpointReply` — the contract-termination acknowledgement.
- :class:`CrashNotice` — the out-of-band prompt that the DC restarted and
  the TC must begin redo from its redo scan start point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.lsn import Lsn
from repro.common.ops import LogicalOperation, OpResult


@dataclass(frozen=True)
class Message:
    """Base class for all TC/DC messages."""

    tc_id: int


@dataclass(frozen=True)
class PerformOperation(Message):
    """A logical operation request (Section 4.2.1, ``perform_operation``).

    ``op_id`` is the unique, monotonically increasing request identifier —
    for mutating operations it is the LSN of the TC log record; reads draw
    from the same sequence so ids stay totally ordered per TC.  A resend
    reuses the same ``op_id``, which is what lets the DC provide
    idempotence.
    """

    op_id: Lsn = 0
    op: Optional[LogicalOperation] = None
    resend: bool = False
    #: Piggybacked end-of-stable-log, so the WAL bound stays fresh without
    #: a dedicated message per log force (an explicit
    #: :class:`EndOfStableLog` is still sent at checkpoint/restart time).
    eosl: Lsn = 0
    #: Part of a redo stream replay after a component restart.  A DC in its
    #: redo window accepts only these; ordinary operations bounce until
    #: the TC signals :class:`RedoComplete` (recovery ordering, Section
    #: 5.2.2 — an operation validated against not-yet-redone state would
    #: read committed records as absent).
    redo: bool = False


@dataclass(frozen=True)
class OperationReply(Message):
    op_id: Lsn = 0
    result: Optional[OpResult] = None


@dataclass(frozen=True)
class BatchedPerform(Message):
    """Several :class:`PerformOperation` requests in one round trip.

    The envelope is a *transport* unit, not an atomicity unit: the DC
    executes each enclosed operation independently (each against its own
    abLSN idempotence test) and replies per-op.  Losing, duplicating or
    reordering the envelope is therefore no different from losing,
    duplicating or reordering every enclosed operation together — the
    per-op resend/idempotence contracts of Section 4.2.1 are unchanged.
    ``eosl`` is piggybacked once for the whole envelope.
    """

    ops: tuple[PerformOperation, ...] = ()
    eosl: Lsn = 0
    #: The envelope belongs to a redo stream replay (every enclosed
    #: operation carries ``redo=True`` too); a DC redo window admits it
    #: just like a single redo :class:`PerformOperation`.
    redo: bool = False


@dataclass(frozen=True)
class BatchedReply(Message):
    """Per-op replies for one :class:`BatchedPerform`, correlated by op_id."""

    replies: tuple[OperationReply, ...] = ()


@dataclass(frozen=True)
class ControlAck(Message):
    """Acknowledges a control message that carries no other reply.

    Control messages that change contract state (``RestartBegin``,
    ``EndOfStableLog``) must be *delivered*, not merely sent: over a lossy
    channel the sender resends until this ack arrives."""


@dataclass(frozen=True)
class EndOfStableLog(Message):
    """``end_of_stable_log(EOSL)``: causality/WAL enforcement point."""

    eosl: Lsn = 0


@dataclass(frozen=True)
class RedoComplete(Message):
    """This TC's redo stream for a restarted DC has been fully resent.

    Closes the DC's redo window for the sending TC: ordinary operations
    are accepted again, and LWM advances may once more prune its abLSNs.
    Must be delivered (ControlAck + resend), like other contract-state
    control messages."""


@dataclass(frozen=True)
class LowWaterMark(Message):
    """``low_water_mark(LWM)``: no gaps at or below LWM."""

    lwm: Lsn = 0


@dataclass(frozen=True)
class CheckpointRequest(Message):
    """``checkpoint(newRSSP)``: terminate resend contracts below newRSSP."""

    new_rssp: Lsn = 0


@dataclass(frozen=True)
class CheckpointReply(Message):
    granted_rssp: Lsn = 0


@dataclass(frozen=True)
class RestartBegin(Message):
    """Start of the ``restart`` conversation after a TC (or DC) crash.

    ``stable_lsn`` (LSNst) is the largest LSN on the stable TC log; any DC
    state reflecting higher LSNs belongs to operations lost forever and
    must be reset before redo begins.  ``reset_mode`` selects how
    surgically the DC sheds that state (Section 5.3.2 / 6.1.2): one of
    ``full_drop``, ``drop_affected``, ``record_reset``.
    """

    stable_lsn: Lsn = 0
    reset_mode: str = "record_reset"


@dataclass(frozen=True)
class RestartEnd(Message):
    """All redo and undo operations have been applied; resume normal work."""


@dataclass(frozen=True)
class CrashNotice(Message):
    """DC -> TC out-of-band prompt: the DC crashed and has restarted."""

    dc_name: str = ""


@dataclass(frozen=True)
class WatermarkRequest(Message):
    """Snapshot extension (Section 6.3): ask for the DC's current commit-
    sequence watermark; reads ``as_of`` it see a per-DC-consistent past."""


@dataclass(frozen=True)
class WatermarkReply(Message):
    watermark: int = 0
    floor: int = 0  # oldest watermark still served (retention horizon)
