"""Log sequence numbers and the abstract-LSN algebra of Section 5.1.2.

The TC labels every logical operation with a unique, monotonically
increasing LSN drawn from its log.  Because TC and DC are independently
multi-threaded (or separated by a reordering network), operations can reach
a page out of LSN order, which breaks the classical ``opLSN <= pageLSN``
idempotence test.  The paper's fix is the *abstract LSN*::

    abLSN = <LSNlw, {LSNin}>

where every operation with LSN <= LSNlw is known to be reflected in the
page, and {LSNin} enumerates the reflected operations above the low water.
The containment test then becomes::

    lsn <= abLSN  iff  lsn <= LSNlw  or  lsn in {LSNin}

:class:`AbstractLsn` implements that algebra, including the low-water
advancement driven by the TC's ``low_water_mark`` calls and the merge used
when two pages are consolidated (Section 5.2.2).
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Iterator

#: LSNs are plain integers; 0 is the null LSN ("before everything").
Lsn = int

NULL_LSN: Lsn = 0

#: Space model: bytes to encode a single LSN on a page (8-byte integer,
#: matching a conventional on-disk LSN).  Used by the page-sync and
#: record-level-LSN space experiments.
LSN_ENCODED_BYTES = 8


class LsnGenerator:
    """Thread-safe source of unique, monotonically increasing LSNs."""

    def __init__(self, start: Lsn = NULL_LSN) -> None:
        self._last = start
        self._lock = threading.Lock()

    def next(self) -> Lsn:
        """Return the next LSN (strictly greater than all previous)."""
        with self._lock:
            self._last += 1
            return self._last

    @property
    def last(self) -> Lsn:
        """The most recently issued LSN (NULL_LSN if none issued)."""
        return self._last

    def advance_to(self, lsn: Lsn) -> None:
        """Ensure future LSNs are greater than ``lsn`` (used at restart)."""
        with self._lock:
            if lsn > self._last:
                self._last = lsn


class AbstractLsn:
    """The paper's ``abLSN = <LSNlw, {LSNin}>`` with its generalized ``<=``.

    Instances are mutable (the DC updates the abLSN of a cached page on
    every applied operation) but expose :meth:`snapshot` for an immutable
    copy, used when an abLSN must be captured in a log record or written to
    a stable page image.
    """

    __slots__ = ("_low_water", "_included")

    def __init__(self, low_water: Lsn = NULL_LSN, included: Iterable[Lsn] = ()) -> None:
        self._low_water = low_water
        self._included = {lsn for lsn in included if lsn > low_water}

    # -- the generalized idempotence test -------------------------------

    def contains(self, lsn: Lsn) -> bool:
        """``lsn <= abLSN``: is the operation's effect already in the page?"""
        return lsn <= self._low_water or lsn in self._included

    # -- mutation during normal execution --------------------------------

    def include(self, lsn: Lsn) -> None:
        """Record that the operation with ``lsn`` has been applied."""
        if lsn > self._low_water:
            self._included.add(lsn)

    def advance_low_water(self, lwm: Lsn) -> None:
        """Raise LSNlw to the TC-supplied low-water mark and prune {LSNin}.

        The TC guarantees it has received replies for every operation with
        LSN <= ``lwm``, so there are no gaps below it: any such operation
        applicable to this page has been applied (Section 5.1.2,
        "Establishing LSNlw").
        """
        if lwm <= self._low_water:
            return
        self._low_water = lwm
        self._included = {lsn for lsn in self._included if lsn > lwm}

    def merge(self, other: "AbstractLsn") -> "AbstractLsn":
        """Combine two abLSNs for a page consolidation (Section 5.2.2).

        The paper asks for "an abLSN ... that is the maximum of abLSNs of
        the two pages"; with the set representation that is the max low
        water plus the union of surviving included LSNs, which covers every
        operation covered by either input.

        CAVEAT: taking the *max* low water is only sound when both pages
        are at the same operation horizon (true in normal execution, where
        LWM broadcasts keep all cached pages aligned).  Merging pages with
        *unequal* low waters — which happens exactly when redo is replaying
        onto asymmetric stable baselines — would let the higher low water
        falsely claim the other range's still-unreplayed operations.  The
        B-tree therefore refuses such merges
        (:meth:`repro.storage.btree.BTree._horizons_compatible`).
        """
        low = max(self._low_water, other._low_water)
        merged = AbstractLsn(low)
        merged._included = {
            lsn
            for lsn in itertools.chain(self._included, other._included)
            if lsn > low
        }
        return merged

    # -- inspection ------------------------------------------------------

    @property
    def low_water(self) -> Lsn:
        return self._low_water

    @property
    def included(self) -> frozenset[Lsn]:
        return frozenset(self._included)

    def max_lsn(self) -> Lsn:
        """Largest operation LSN covered by this abLSN.

        Governs causality: a page may be flushed only when its abLSN's
        ``max_lsn`` is at or below the TC's end of stable log.
        """
        return max(self._included, default=self._low_water)

    def lsns_above(self, bound: Lsn) -> frozenset[Lsn]:
        """Included LSNs strictly greater than ``bound``.

        Used at TC-crash time to find pages reflecting lost operations
        (Section 5.3.2): if the low water itself exceeds ``bound`` the page
        is unconditionally affected and this returns the low water too.
        """
        above = {lsn for lsn in self._included if lsn > bound}
        if self._low_water > bound:
            above.add(self._low_water)
        return frozenset(above)

    def pending_count(self) -> int:
        """Size of {LSNin}; the page-sync experiments track this."""
        return len(self._included)

    def encoded_size(self) -> int:
        """Bytes to store this abLSN on a page (space-model, Section 5.1.2)."""
        return LSN_ENCODED_BYTES * (1 + len(self._included))

    def snapshot(self) -> "AbstractLsn":
        """Immutable-by-convention copy for log records and page images."""
        return AbstractLsn(self._low_water, self._included)

    def is_null(self) -> bool:
        return self._low_water == NULL_LSN and not self._included

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractLsn):
            return NotImplemented
        return (
            self._low_water == other._low_water and self._included == other._included
        )

    def __hash__(self) -> int:
        return hash((self._low_water, frozenset(self._included)))

    def __iter__(self) -> Iterator[Lsn]:
        """Iterate the explicitly tracked LSNs (not the implied prefix)."""
        return iter(sorted(self._included))

    def __repr__(self) -> str:
        inc = ",".join(map(str, sorted(self._included)))
        return f"abLSN<lw={self._low_water},{{{inc}}}>"
