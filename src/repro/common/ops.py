"""Logical, record-oriented operations — the only language the TC speaks.

Section 4.1.1 requires the TC to operate purely at the logical level: every
request to a DC names a table and a key (or key range) and carries no page
knowledge whatsoever.  The DC maps these to pages privately.

Update operations have *inverses* (:func:`inverse_of`) so the TC can roll a
transaction back by submitting inverse operations in reverse chronological
order (Section 4.1.1 item 2b).  Computing an inverse may require the value
the operation overwrote; the DC returns that in the operation reply and the
TC stores it as undo information in its log.

For versioned tables (Section 6.2.2) the mutating operations create
*pending* versions and the two cleanup operations —
:class:`PromoteVersionsOp` / :class:`DiscardVersionsOp` — implement commit
and abort without any distributed protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.records import Key, RecordView, Value, sizeof_key, sizeof_value

#: Per-log-record / per-message framing overhead in the space model (bytes).
OP_HEADER_BYTES = 16


class ReadFlavor(enum.Enum):
    """Which version of a record a read observes (Section 6.2).

    ``OWN`` — the reading TC owns the partition and sees its own pending
    updates (latest version).  ``READ_COMMITTED`` — cross-TC read of the
    before/committed version, never blocking.  ``DIRTY`` — cross-TC read of
    the latest version, uncommitted data included.
    """

    OWN = "own"
    READ_COMMITTED = "read_committed"
    DIRTY = "dirty"
    #: Snapshot-read extension (Section 6.3): read as of a past per-DC
    #: commit-sequence watermark; never blocks, transactionally consistent
    #: per DC.
    SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class LogicalOperation:
    """Base class; concrete operations are the frozen dataclasses below."""

    table: str

    #: True for operations that change DC state (and hence are logged,
    #: carry an LSN, and participate in idempotence/redo).
    MUTATES = False

    def encoded_size(self) -> int:
        return OP_HEADER_BYTES + sizeof_value(self.table)


@dataclass(frozen=True)
class InsertOp(LogicalOperation):
    key: Key = None
    value: Value = None
    versioned: bool = False

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.key) + sizeof_value(self.value)


@dataclass(frozen=True)
class UpdateOp(LogicalOperation):
    key: Key = None
    value: Value = None
    versioned: bool = False

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.key) + sizeof_value(self.value)


@dataclass(frozen=True)
class DeleteOp(LogicalOperation):
    key: Key = None
    versioned: bool = False

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.key)


@dataclass(frozen=True)
class IncrementOp(LogicalOperation):
    """Add ``delta`` to a numeric record — a *logical* operation proper.

    Increments showcase two things the paper's logical level buys:

    - **value-independent undo**: the inverse is just the negated delta, no
      prior value needed in the log;
    - **non-idempotence**: replaying an increment twice corrupts the value,
      so the abLSN exactly-once machinery is doing real work here (a
      blind "set value" would mask double-execution bugs).
    """

    key: Key = None
    delta: float = 0
    versioned: bool = False

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.key) + 8


@dataclass(frozen=True)
class ReadOp(LogicalOperation):
    key: Key = None
    flavor: ReadFlavor = ReadFlavor.OWN
    #: Snapshot watermark (SNAPSHOT flavor only).
    as_of: int = 0

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.key) + 1


@dataclass(frozen=True)
class RangeReadOp(LogicalOperation):
    """Read all records with ``low <= key <= high`` (inclusive bounds).

    ``limit`` caps the number of records returned; ``None`` bounds are
    open.  Range reads are what make unbundled locking hard (Section 3.1):
    the TC must lock before it knows which keys exist in the range.
    """

    low: Optional[Key] = None
    high: Optional[Key] = None
    limit: Optional[int] = None
    flavor: ReadFlavor = ReadFlavor.OWN
    #: Exclude ``low`` itself (used by fetch-ahead batch continuation).
    low_exclusive: bool = False
    #: Snapshot watermark (SNAPSHOT flavor only).
    as_of: int = 0

    def encoded_size(self) -> int:
        return (
            super().encoded_size() + sizeof_key(self.low) + sizeof_key(self.high) + 5
        )


@dataclass(frozen=True)
class ProbeNextKeysOp(LogicalOperation):
    """Speculative probe of the fetch-ahead protocol (Section 3.1).

    Returns up to ``count`` existing keys strictly greater than ``after``
    (or from the start when ``after`` is None) and no earlier than
    ``until`` would allow.  The TC locks the returned keys and then issues
    the real read; if the keys changed meanwhile it probes again.
    """

    after: Optional[Key] = None
    count: int = 16
    until: Optional[Key] = None
    #: Include ``after`` itself in the result (first batch of a scan).
    inclusive: bool = False

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.after) + 4


@dataclass(frozen=True)
class PromoteVersionsOp(LogicalOperation):
    """Version cleanup at commit: pending versions become committed."""

    keys: tuple[Key, ...] = ()

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sum(sizeof_key(k) for k in self.keys)


@dataclass(frozen=True)
class DiscardVersionsOp(LogicalOperation):
    """Version cleanup at abort: pending versions are removed."""

    keys: tuple[Key, ...] = ()

    MUTATES = True

    def encoded_size(self) -> int:
        return super().encoded_size() + sum(sizeof_key(k) for k in self.keys)


class OpStatus(enum.Enum):
    OK = "ok"
    NOT_FOUND = "not_found"
    DUPLICATE = "duplicate"
    ERROR = "error"


@dataclass(frozen=True)
class OpResult:
    """Reply payload for a logical operation.

    ``prior`` carries the overwritten value for updates/deletes so the TC
    can build undo information; ``records`` carries range-read results and
    ``keys`` carries probe results.
    """

    status: OpStatus = OpStatus.OK
    value: Value = None
    prior: Value = None
    records: tuple[RecordView, ...] = ()
    keys: tuple[Key, ...] = ()
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status is OpStatus.OK

    @staticmethod
    def okay(value: Value = None, prior: Value = None) -> "OpResult":
        if value is None and prior is None:
            return _OKAY  # frozen, so one shared instance serves every bare OK
        return OpResult(status=OpStatus.OK, value=value, prior=prior)

    @staticmethod
    def not_found(message: str = "") -> "OpResult":
        return OpResult(status=OpStatus.NOT_FOUND, message=message)

    @staticmethod
    def duplicate(message: str = "") -> "OpResult":
        return OpResult(status=OpStatus.DUPLICATE, message=message)

    @staticmethod
    def error(message: str) -> "OpResult":
        return OpResult(status=OpStatus.ERROR, message=message)


_OKAY = OpResult(status=OpStatus.OK)


def inverse_of(op: LogicalOperation, result: OpResult) -> Optional[LogicalOperation]:
    """The logical inverse used for transaction rollback (Section 4.1.1).

    ``result`` is the reply from the forward execution; its ``prior`` field
    supplies the overwritten value where one is needed.  Returns ``None``
    for operations that need no inverse (reads, probes, version cleanups —
    versioned mutations are rolled back wholesale by a single
    :class:`DiscardVersionsOp`, which the TC constructs itself).
    """
    if isinstance(op, InsertOp):
        if op.versioned:
            return None
        return DeleteOp(table=op.table, key=op.key)
    if isinstance(op, DeleteOp):
        if op.versioned:
            return None
        return InsertOp(table=op.table, key=op.key, value=result.prior)
    if isinstance(op, UpdateOp):
        if op.versioned:
            return None
        return UpdateOp(table=op.table, key=op.key, value=result.prior)
    if isinstance(op, IncrementOp):
        return IncrementOp(table=op.table, key=op.key, delta=-op.delta)
    return None


#: Operations whose effects the DC must make idempotent via abLSNs.
MUTATING_OPS = (
    InsertOp,
    UpdateOp,
    DeleteOp,
    IncrementOp,
    PromoteVersionsOp,
    DiscardVersionsOp,
)
