"""Lightweight metrics used by every component and every experiment.

Counters record how often things happen (messages, locks, flushes,
resends); observations record value distributions (log-record bytes, abLSN
set sizes, redo batch lengths).  All methods are thread-safe — the kernel
is multi-threaded by design (Section 1.2).
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.obs.hist import Histogram

#: The event-loop server core's counter family (net/eventloop.py).  The
#: DC/TC servers fold these into their ``StatsRequest`` payloads and the
#: transport benchmarks record them in repro-bench/v2 snapshots, so the
#: single-threaded server core is observable end to end:
#:
#: - ``eventloop.connections_open``   currently adopted connections (the
#:   +1/-1 pair makes this a live gauge in counter clothing);
#: - ``eventloop.connections_total``  lifetime adopted connections;
#: - ``eventloop.frames_deferred``    sends that parked bytes in a peer's
#:   out-buffer because the fd would block (write interest engaged);
#: - ``eventloop.wakeups``            selector returns — readiness,
#:   doorbells and park-timeout backstops alike.
EVENTLOOP_COUNTERS = (
    "eventloop.connections_open",
    "eventloop.connections_total",
    "eventloop.frames_deferred",
    "eventloop.wakeups",
)


@dataclass
class Distribution:
    """Summary of observed values: count / total / min / max / percentiles.

    Percentiles come from a fixed-bucket log-scale :class:`Histogram`
    (see :mod:`repro.obs.hist`), so tails are real measurements, not
    mean-plus-hope.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    hist: Histogram = field(default_factory=Histogram, repr=False, compare=False)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.hist.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return self.hist.percentile(q)

    def merge(self, other: "Distribution") -> "Distribution":
        """Fold ``other``'s observations into ``self``."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.hist.merge(other.hist)
        return self

    def summary(self) -> dict[str, object]:
        """The snapshot row: plain built-ins, JSON-serializable as-is."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "p50": self.percentile(0.50) if self.count else None,
            "p95": self.percentile(0.95) if self.count else None,
            "p99": self.percentile(0.99) if self.count else None,
        }


class CounterSlot:
    """A pre-bound, lock-free counter for per-operation hot paths.

    ``slot.value += 1`` (or :meth:`incr`) is a single attribute update —
    no dict lookup, no lock acquisition.  Like :meth:`Metrics.buffer`, it
    relies on the GIL making the read-modify-write effectively atomic for
    our workloads; slot totals fold into the owning :class:`Metrics`
    whenever any reader runs, so ``metrics.get(name)`` always sees the sum
    of locked increments and slot increments under one name.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount


class Metrics:
    """A named bag of counters and distributions.

    A single :class:`Metrics` instance is threaded through TC, DC, channel
    and buffer pool so an experiment reads one object at the end.  Create a
    fresh instance per experiment run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._distributions: dict[str, Distribution] = defaultdict(Distribution)
        self._buffers: dict[str, deque] = {}
        self._slots: dict[str, CounterSlot] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> CounterSlot:
        """A cached :class:`CounterSlot` for ``name`` (hot-path counters).

        Callers bind the slot once at construction and bump
        ``slot.value`` per event; readers fold every slot's value into the
        named counter, so mixing ``incr(name)`` and a slot is safe.
        """
        with self._lock:
            slot = self._slots.get(name)
            if slot is None:
                slot = self._slots[name] = CounterSlot()
            return slot

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._distributions[name].observe(value)

    def buffer(self, name: str) -> deque:
        """A lock-free sink for per-transaction hot-path observations.

        ``deque.append`` is atomic under the GIL, an order of magnitude
        cheaper than :meth:`observe` (no lock, no histogram math).  Buffered
        values fold into the named distribution lazily, whenever any reader
        (:meth:`dist`, :meth:`snapshot`, :meth:`merged_with`) runs.  Callers
        cache the returned deque and append raw values to it.
        """
        with self._lock:
            return self._buffers.setdefault(name, deque())

    def _drain(self) -> None:
        """Fold buffered observations into distributions (lock held)."""
        for name, buf in self._buffers.items():
            dist = self._distributions[name]
            while True:
                try:
                    value = buf.popleft()
                except IndexError:
                    break
                dist.observe(value)

    def _folded_counters(self) -> dict[str, int]:
        """Counters plus slot totals, zero-valued names dropped (lock held)."""
        counters = dict(self._counters)
        for name, slot in self._slots.items():
            if slot.value:
                counters[name] = counters.get(name, 0) + slot.value
        return counters

    def get(self, name: str) -> int:
        with self._lock:
            value = self._counters.get(name, 0)
            slot = self._slots.get(name)
            if slot is not None:
                value += slot.value
            return value

    def dist(self, name: str) -> Distribution:
        with self._lock:
            self._drain()
            return self._distributions.get(name, Distribution())

    def counters(self) -> dict[str, int]:
        with self._lock:
            return self._folded_counters()

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._distributions.clear()
            for buf in self._buffers.values():
                buf.clear()
            for slot in self._slots.values():
                slot.value = 0

    def merged_with(self, other: "Metrics") -> dict[str, object]:
        """A snapshot-shaped dict of both objects' data combined.

        Counters add; distributions merge count/total/min/max *and* their
        histograms, so multi-component experiments keep full observation
        data (this used to drop distributions entirely).
        """
        merged = Metrics()
        for source in (self, other):
            with source._lock:
                source._drain()
                counters = source._folded_counters()
                distributions = {
                    name: (dist.count, dist.total, dist.minimum, dist.maximum, dist.hist.snapshot())
                    for name, dist in source._distributions.items()
                }
            for name, value in counters.items():
                merged._counters[name] += value
            for name, (count, total, minimum, maximum, hist) in distributions.items():
                target = merged._distributions[name]
                target.count += count
                target.total += total
                target.minimum = min(target.minimum, minimum)
                target.maximum = max(target.maximum, maximum)
                target.hist.merge(hist)
        return merged.snapshot()

    def snapshot(self) -> dict[str, object]:
        """A point-in-time copy of everything: counters plus distribution
        summaries (with p50/p95/p99), as plain built-in types
        (JSON-serializable as-is)."""
        with self._lock:
            self._drain()
            return {
                "counters": dict(sorted(self._folded_counters().items())),
                "distributions": {
                    name: dist.summary()
                    for name, dist in sorted(self._distributions.items())
                },
            }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot rendered as JSON (benchmark result files)."""
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.counters().items()))
        return f"Metrics({items})"


#: Shared no-op-ish default so components can always assume a metrics object.
def new_metrics() -> Metrics:
    return Metrics()
