"""Lightweight metrics used by every component and every experiment.

Counters record how often things happen (messages, locks, flushes,
resends); observations record value distributions (log-record bytes, abLSN
set sizes, redo batch lengths).  All methods are thread-safe — the kernel
is multi-threaded by design (Section 1.2).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass


@dataclass
class Distribution:
    """Summary of observed values: count / total / min / max."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Metrics:
    """A named bag of counters and distributions.

    A single :class:`Metrics` instance is threaded through TC, DC, channel
    and buffer pool so an experiment reads one object at the end.  Create a
    fresh instance per experiment run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = defaultdict(int)
        self._distributions: dict[str, Distribution] = defaultdict(Distribution)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._distributions[name].observe(value)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def dist(self, name: str) -> Distribution:
        with self._lock:
            return self._distributions.get(name, Distribution())

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._distributions.clear()

    def merged_with(self, other: "Metrics") -> dict[str, int]:
        mine = self.counters()
        for name, value in other.counters().items():
            mine[name] = mine.get(name, 0) + value
        return mine

    def snapshot(self) -> dict[str, object]:
        """A point-in-time copy of everything: counters plus distribution
        summaries, as plain built-in types (JSON-serializable as-is)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "distributions": {
                    name: {
                        "count": dist.count,
                        "total": dist.total,
                        "mean": dist.mean,
                        "min": dist.minimum if dist.count else None,
                        "max": dist.maximum if dist.count else None,
                    }
                    for name, dist in sorted(self._distributions.items())
                },
            }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot rendered as JSON (benchmark result files)."""
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.counters().items()))
        return f"Metrics({items})"


#: Shared no-op-ish default so components can always assume a metrics object.
def new_metrics() -> Metrics:
    return Metrics()
