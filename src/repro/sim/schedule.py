"""Cooperative deterministic scheduling of concurrent kernel activity.

The chaos runner perturbs *what* fails; this module perturbs *when things
interleave*.  N transactions (plus DC recovery, when a schedule injects a
crash) run as virtual tasks on real threads, but only one task executes at
a time: a run token passes from the scheduler to exactly one task, and the
task hands it back at the next **yield point** — an instrumented
interleaving site in the kernel's hot paths:

==================  ====================================================
yield point         site
==================  ====================================================
``lock.acquire``    :meth:`LockManager._acquire` entry (tc/lock_manager)
``lock.blocked``    the 2PL wait loop, replacing the condition wait
``lock.release``    :meth:`LockManager.release` / ``release_all`` exit
``channel.send``    :meth:`MessageChannel._request` before delivery
``channel.recv``    :meth:`MessageChannel._request` before the reply
``tc.log_force``    :meth:`TcLog._force` entry (before the log mutex)
``tc.checkpoint``   :meth:`TransactionalComponent.checkpoint` entry
``tc.truncate``     before checkpoint-driven TC log truncation drops the
                    stable prefix below the RSSP
``buffer.latch``    DC operation entry, before the buffer/latch bracket
``dc.systxn``       :meth:`SystemTransaction._commit` entry
``dc.redo_wait``    TC dispatch stalled on a DC's redo window
==================  ====================================================

Every site pays only a module-global ``is None`` check when no scheduler
is installed (the same zero-overhead discipline as the tracer and fault
hooks).  With a scheduler installed, the choice of which task runs next is
delegated to a pluggable :class:`Strategy`; each choice is appended to a
**decision trace**, so any schedule replays exactly from ``(seed, trace)``
via :class:`TraceStrategy`, and a failing trace delta-debugs down to a
minimal reproducer with :func:`minimize_trace`.

Blocking discipline.  A task that would block inside the lock manager's
2PL wait loop must not block for real (it holds the run token); instead
the wait loop yields ``lock.blocked`` and the scheduler marks the task
blocked until some task releases a lock.  When every live task is blocked
the scheduler schedules one anyway — its next wait-loop iteration runs the
ordinary deadlock detector, which aborts the victim and un-wedges the
rest.  Tasks must also never *park* while holding a real latch: the DC
operation bracket marks a critical section (:func:`enter_critical`), and
yield points hit inside it record their event but keep running.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional, Sequence

from repro.common.errors import ReproError


class YieldPoint:
    """Names of the instrumented interleaving sites (and note events)."""

    LOCK_ACQUIRE = "lock.acquire"
    LOCK_BLOCKED = "lock.blocked"
    LOCK_RELEASE = "lock.release"
    CHANNEL_SEND = "channel.send"
    CHANNEL_RECV = "channel.recv"
    TC_LOG_FORCE = "tc.log_force"
    TC_CHECKPOINT = "tc.checkpoint"
    TC_TRUNCATE = "tc.truncate"
    BUFFER_LATCH = "buffer.latch"
    DC_SYSTXN = "dc.systxn"
    DC_REDO_WAIT = "dc.redo_wait"
    CC_VALIDATE = "cc.validate"
    CC_INSTALL = "cc.install"


#: The installed scheduler, or None.  Instrumented sites read this module
#: attribute and bail on None, so the hot paths pay a single global load
#: when exploration is off.
ACTIVE: Optional["DeterministicScheduler"] = None


class ScheduleInterrupted(BaseException):
    """Unwinds a task when the scheduler shuts a schedule down early.

    Derives from ``BaseException`` so kernel-level ``except Exception``
    handlers (journal replay, abort cleanup) cannot swallow it.
    """


def maybe_yield(point: str, target: str = "", **detail: object) -> None:
    """Hand the run token back to the scheduler, if one is installed."""
    scheduler = ACTIVE
    if scheduler is not None:
        scheduler._on_yield(point, target, detail)


def note_event(point: str, target: str = "", **detail: object) -> None:
    """Record an event in the active schedule's history without yielding."""
    scheduler = ACTIVE
    if scheduler is not None:
        scheduler.note(point, target, **detail)


def enter_critical() -> None:
    """The current task is entering a real-latch bracket: record-only mode."""
    scheduler = ACTIVE
    if scheduler is not None:
        task = scheduler._current()
        if task is not None:
            task.critical_depth += 1


def exit_critical() -> None:
    scheduler = ACTIVE
    if scheduler is not None:
        task = scheduler._current()
        if task is not None and task.critical_depth > 0:
            task.critical_depth -= 1


def notify(resource: object) -> None:
    """Unblock tasks parked on ``resource`` (non-lock waits, e.g. redo)."""
    scheduler = ACTIVE
    if scheduler is not None:
        for task in scheduler._tasks:
            if task.blocked_on == resource:
                task.blocked_on = None


def task_active() -> bool:
    """True when the calling thread is a task of the installed scheduler.

    The lock manager uses this to pick its blocking style: yield to the
    scheduler (cooperative) versus a real condition wait (normal threads).
    """
    scheduler = ACTIVE
    return scheduler is not None and scheduler._current() is not None


class _Task:
    """One virtual task: a real thread gated by a semaphore token."""

    __slots__ = (
        "tid",
        "name",
        "fn",
        "gate",
        "thread",
        "done",
        "error",
        "blocked_on",
        "critical_depth",
        "interrupted",
    )

    def __init__(self, tid: int, name: str, fn: Callable[[], None]) -> None:
        self.tid = tid
        self.name = name
        self.fn = fn
        self.gate = threading.Semaphore(0)
        self.thread: Optional[threading.Thread] = None
        self.done = False
        self.error: Optional[BaseException] = None
        self.blocked_on: Optional[object] = None
        self.critical_depth = 0
        self.interrupted = False


# -- strategies --------------------------------------------------------------


class Strategy:
    """Picks which runnable task takes the next step."""

    name = "strategy"

    def pick(self, runnable: Sequence[_Task], step: int) -> _Task:
        raise NotImplementedError


class RandomWalkStrategy(Strategy):
    """Uniform seeded choice at every step: the workhorse explorer."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def pick(self, runnable: Sequence[_Task], step: int) -> _Task:
        return self._rng.choice(list(runnable))


class PctStrategy(Strategy):
    """PCT-style priority scheduling (Burckhardt et al.).

    Each task gets a random priority; the highest-priority runnable task
    always runs.  At ``depth - 1`` pre-chosen change points the current
    top task is demoted below everyone, forcing a context switch exactly
    there.  Small ``depth`` targets low-preemption-count bugs directly.
    """

    name = "pct"

    def __init__(self, seed: int, depth: int = 3, horizon: int = 1000) -> None:
        self._rng = random.Random(seed)
        count = max(0, depth - 1)
        self._changes = set(self._rng.sample(range(horizon), count))
        self._prio: dict[int, float] = {}
        self._floor = 0.0

    def pick(self, runnable: Sequence[_Task], step: int) -> _Task:
        for task in runnable:
            if task.tid not in self._prio:
                self._prio[task.tid] = 1.0 + self._rng.random()
        best = max(runnable, key=lambda t: self._prio[t.tid])
        if step in self._changes:
            self._floor -= 1.0
            self._prio[best.tid] = self._floor
            best = max(runnable, key=lambda t: self._prio[t.tid])
        return best


class RoundRobinStrategy(Strategy):
    """Bounded round-robin: run each task ``budget`` steps, then preempt."""

    name = "rr"

    def __init__(self, budget: int = 4) -> None:
        self.budget = max(1, budget)
        self._current_tid: Optional[int] = None
        self._spent = 0

    def pick(self, runnable: Sequence[_Task], step: int) -> _Task:
        by_tid = {task.tid: task for task in runnable}
        current = (
            by_tid.get(self._current_tid)
            if self._current_tid is not None
            else None
        )
        if current is not None and self._spent < self.budget:
            self._spent += 1
            return current
        order = sorted(by_tid)
        if self._current_tid is not None:
            later = [tid for tid in order if tid > self._current_tid]
            order = later + [tid for tid in order if tid <= self._current_tid]
        chosen = by_tid[order[0]]
        self._current_tid = chosen.tid
        self._spent = 1
        return chosen


class TraceStrategy(Strategy):
    """Replay a recorded decision trace; deterministic fallback after it.

    Decision ``i`` names the task tid to run at step ``i``.  When the
    named task is not runnable (the trace was minimized, so context
    differs) or the trace is exhausted, the lowest-tid runnable task runs
    — fully deterministic, so ``(seed, trace)`` is a complete reproducer.
    """

    name = "trace"

    def __init__(self, trace: Sequence[int]) -> None:
        self.trace = list(trace)

    def pick(self, runnable: Sequence[_Task], step: int) -> _Task:
        if step < len(self.trace):
            wanted = self.trace[step]
            for task in runnable:
                if task.tid == wanted:
                    return task
        return min(runnable, key=lambda t: t.tid)


# -- the scheduler ------------------------------------------------------------


class DeterministicScheduler:
    """Token-passing cooperative scheduler over real threads.

    Usage::

        sched = DeterministicScheduler(RandomWalkStrategy(seed))
        sched.spawn("t0", work_fn)
        sched.at_step(20, lambda: kernel.crash_dc())
        sched.run()          # installs itself as the module-global ACTIVE
        sched.decisions      # the replayable yield-decision trace
        sched.events         # seq-ordered history (yields + noted events)
    """

    #: Wall-clock bound on one task step; tripping it means a task blocked
    #: on a real lock held by a parked task — an instrumentation bug, not
    #: a kernel bug — and the run fails loudly instead of hanging.
    STEP_TIMEOUT_S = 60.0

    def __init__(
        self,
        strategy: Strategy,
        max_steps: int = 5000,
    ) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        self.events: list[dict] = []
        self.decisions: list[int] = []
        self.steps = 0
        self.exhausted = False
        self._tasks: list[_Task] = []
        self._by_ident: dict[int, _Task] = {}
        self._control = threading.Semaphore(0)
        self._stop = False
        self._seq = 0
        self._actions: dict[int, list[Callable[[], None]]] = {}

    # -- task management ----------------------------------------------------

    def spawn(self, name: str, fn: Callable[[], None]) -> _Task:
        """Add a task (also mid-run, e.g. recovery after a crash action)."""
        task = _Task(len(self._tasks), name, fn)
        self._tasks.append(task)
        task.thread = threading.Thread(
            target=self._task_body, args=(task,), name=f"sched-{name}", daemon=True
        )
        task.thread.start()
        return task

    def at_step(self, step: int, action: Callable[[], None]) -> None:
        """Run ``action`` on the scheduler thread right before step ``step``.

        Actions run while no task holds the token, so they may crash
        components (a ``sim/faults``-style fail-stop) or spawn new tasks;
        combined with strategy-driven yields this interleaves a crash at
        any yield point of the schedule.
        """
        self._actions.setdefault(step, []).append(action)

    def _task_body(self, task: _Task) -> None:
        self._by_ident[threading.get_ident()] = task
        task.gate.acquire()
        try:
            if not self._stop:
                task.fn()
        except ScheduleInterrupted:
            pass
        except BaseException as exc:  # recorded, never propagated to the pool
            task.error = exc
            self._record("task.error", "", task, {"error": repr(exc)})
        finally:
            task.done = True
            self._control.release()

    def _current(self) -> Optional[_Task]:
        return self._by_ident.get(threading.get_ident())

    # -- events -------------------------------------------------------------

    def _record(
        self, point: str, target: str, task: Optional[_Task], detail: dict
    ) -> None:
        event = {
            "seq": self._seq,
            "point": point,
            "target": target,
            "task": None if task is None else task.name,
        }
        self._seq += 1
        if detail:
            event.update(detail)
        self.events.append(event)

    def note(self, point: str, target: str = "", **detail: object) -> None:
        self._record(point, target, self._current(), detail)

    def signature(self) -> list[tuple]:
        """Determinism fingerprint: the event stream minus volatile ids."""
        return [(e["point"], e["target"], e["task"]) for e in self.events]

    # -- yielding -----------------------------------------------------------

    def _on_yield(self, point: str, target: str, detail: dict) -> None:
        task = self._current()
        self._record(point, target, task, detail)
        if task is None or task.interrupted:
            return  # setup/teardown threads and unwinding tasks never park
        if point in (YieldPoint.LOCK_BLOCKED, YieldPoint.DC_REDO_WAIT):
            task.blocked_on = detail.get("resource")
        elif point == YieldPoint.LOCK_RELEASE:
            # A release may make any blocked task grantable; wake them all
            # to re-check (the wait loop re-evaluates grantability).
            for other in self._tasks:
                other.blocked_on = None
        if task.critical_depth > 0 and point != YieldPoint.LOCK_BLOCKED:
            return  # holding a real latch: record, but do not park
        self._control.release()
        task.gate.acquire()
        task.blocked_on = None
        if self._stop:
            task.interrupted = True
            raise ScheduleInterrupted()

    # -- the run loop -------------------------------------------------------

    def run(self) -> None:
        """Drive tasks to completion (or ``max_steps``), one step at a time."""
        global ACTIVE
        if ACTIVE is not None:
            raise ReproError("a deterministic scheduler is already installed")
        ACTIVE = self
        try:
            while True:
                for action in self._actions.pop(self.steps, ()):
                    action()
                live = [t for t in self._tasks if not t.done]
                if not live:
                    break
                if self.steps >= self.max_steps:
                    self.exhausted = True
                    break
                runnable = [t for t in live if t.blocked_on is None]
                if not runnable:
                    # Everyone waits on a lock.  Schedule them all anyway:
                    # the next wait-loop iteration runs deadlock detection,
                    # aborts a victim, and the rest drain normally.
                    for t in live:
                        t.blocked_on = None
                    runnable = live
                task = self.strategy.pick(runnable, self.steps)
                self.decisions.append(task.tid)
                self.steps += 1
                self._step(task)
        finally:
            self._shutdown()
            ACTIVE = None

    def _step(self, task: _Task) -> None:
        task.gate.release()
        if not self._control.acquire(timeout=self.STEP_TIMEOUT_S):
            self._stop = True
            raise ReproError(
                f"schedule wedged: task {task.name!r} neither yielded nor "
                f"finished within {self.STEP_TIMEOUT_S}s (a task parked "
                f"while holding a native lock?)"
            )

    def _shutdown(self) -> None:
        """Unwind every unfinished task via ScheduleInterrupted."""
        self._stop = True
        for task in self._tasks:
            while not task.done:
                task.gate.release()
                if not self._control.acquire(timeout=self.STEP_TIMEOUT_S):
                    break  # daemon thread is wedged; abandon it

    # -- results ------------------------------------------------------------

    def errors(self) -> dict[str, BaseException]:
        return {t.name: t.error for t in self._tasks if t.error is not None}


# -- trace minimization -------------------------------------------------------


def minimize_trace(
    trace: Sequence[int],
    still_fails: Callable[[list[int]], bool],
    max_replays: int = 120,
) -> list[int]:
    """Delta-debug a failing yield-decision trace to a smaller one.

    ``still_fails(candidate)`` replays the schedule under
    :class:`TraceStrategy` and reports whether the anomaly persists.  Two
    passes: binary-search the shortest failing prefix (the deterministic
    fallback finishes the schedule), then ddmin-style chunk removal.  The
    replay budget bounds total work; the best trace found so far is
    returned even when the budget trips.
    """
    budget = [max_replays]

    def check(candidate: list[int]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return still_fails(candidate)

    best = list(trace)
    # Pass 1: shortest failing prefix.
    lo, hi = 0, len(best)
    while lo < hi:
        mid = (lo + hi) // 2
        if check(best[:mid]):
            hi = mid
        else:
            lo = mid + 1
    if check(best[:hi]):
        best = best[:hi]
    # Pass 2: remove interior chunks, halving granularity.
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and budget[0] > 0:
        index = 0
        while index < len(best) and budget[0] > 0:
            candidate = best[:index] + best[index + chunk :]
            if candidate != best and check(candidate):
                best = candidate
            else:
                index += chunk
        chunk //= 2
    return best
