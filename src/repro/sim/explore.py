"""The schedule explorer: seeded interleaving search with oracle checking.

One **schedule** = one fresh :class:`~repro.kernel.unbundled.UnbundledKernel`
driving N concurrent transactions as virtual tasks under a
:class:`~repro.sim.schedule.DeterministicScheduler`.  The workload, the
scheduling strategy and any injected DC crash are all pure functions of a
single integer seed, so every schedule — including a failing one — replays
bit-for-bit from ``(seed, trace)``.

A sweep (:func:`explore`) runs many schedules across strategies and crash
modes; the first anomalous schedule is delta-debugged
(:func:`minimize_failure`) into a minimal replayable artifact::

    {"version": "repro-explore/v1", "seed": 17, "strategy": "random",
     "trace": [2, 0, 1, ...], "config": {...}, "anomaly": "..."}

Replay with :func:`replay_artifact` (or ``python -m repro explore
--replay artifact.json``).

Crashes compose with the scheduler two ways: the built-in crash plan
(``crash=True``) fail-stops a DC at a seeded step and runs recovery as its
own schedulable task, so redo interleaves with live transactions; and a
:class:`~repro.sim.faults.FaultInjector` schedule (``fault_rules``) rides
along untouched — every fault hook point sits next to a yield point, so a
fault can fire at any interleaving the strategy reaches.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from repro.common.config import ChannelConfig, KernelConfig, TcConfig
from repro.common.ops import ReadFlavor
from repro.common.errors import ReproError
from repro.kernel.unbundled import UnbundledKernel
from repro.sim.oracle import OracleReport, SerializationOracle
from repro.sim.schedule import (
    DeterministicScheduler,
    PctStrategy,
    RandomWalkStrategy,
    RoundRobinStrategy,
    ScheduleInterrupted,
    Strategy,
    TraceStrategy,
    minimize_trace,
    note_event,
)

ARTIFACT_VERSION = "repro-explore/v1"

STRATEGIES = ("random", "pct", "rr")


@dataclass
class ExploreConfig:
    """Shape of one explored schedule's workload."""

    txns: int = 3
    ops_per_txn: int = 3
    keyspace: int = 4
    read_fraction: float = 0.5
    #: Fail-stop one DC at a seeded step and schedule recovery as a task.
    crash: bool = False
    #: Run TC checkpoints (and their log truncation) as their own
    #: schedulable task, so checkpoint/truncation decision points
    #: interleave with live transactions and any crash/recovery task.
    checkpoint: bool = False
    #: A negative control: run with TcConfig.unsafe_skip_read_locks.
    skip_read_locks: bool = False
    #: Concurrency-control policy under test ("2pl" | "occ" | "mvcc").
    cc_policy: str = "2pl"
    #: Negative control for occ/mvcc: skip commit-time validation.
    skip_validation: bool = False
    #: Negative control for mvcc: read newest bytes, not the snapshot.
    mvcc_read_newest: bool = False
    max_steps: int = 2000
    table: str = "t"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ScheduleOutcome:
    """Everything one schedule produced."""

    seed: int
    strategy: str
    decisions: list[int]
    report: OracleReport
    steps: int
    exhausted: bool
    committed: int
    aborted: int
    events: list[dict] = field(repr=False, default_factory=list)
    task_errors: dict[str, str] = field(default_factory=dict)

    @property
    def anomaly(self) -> Optional[str]:
        return self.report.anomaly()


def _build_strategy(name: str, seed: int, trace: Optional[Sequence[int]]) -> Strategy:
    if name == "trace":
        return TraceStrategy(trace or [])
    if name == "random":
        return RandomWalkStrategy(seed)
    if name == "pct":
        rng = random.Random(seed ^ 0x9C7)
        return PctStrategy(seed, depth=2 + rng.randrange(3))
    if name == "rr":
        rng = random.Random(seed ^ 0x22B)
        return RoundRobinStrategy(budget=1 + rng.randrange(6))
    raise ReproError(f"unknown exploration strategy {name!r}")


def run_schedule(
    seed: int,
    config: Optional[ExploreConfig] = None,
    strategy: str = "random",
    trace: Optional[Sequence[int]] = None,
    fault_rules: Optional[Sequence[object]] = None,
) -> ScheduleOutcome:
    """Run one schedule: build a kernel, interleave, judge the history."""
    config = config or ExploreConfig()
    tc_config = TcConfig(
        # Real-time lock timeouts would fire spuriously under step-paced
        # scheduling; deadlock detection (which the scheduler guarantees a
        # chance to run) is the liveness mechanism instead.
        lock_timeout=60.0,
        unsafe_skip_read_locks=config.skip_read_locks,
        cc_policy=config.cc_policy,
        unsafe_skip_validation=config.skip_validation,
        unsafe_mvcc_read_newest=config.mvcc_read_newest,
    )
    injector = None
    if fault_rules is not None:
        from repro.sim.faults import FaultInjector

        injector = FaultInjector(seed=seed)
    kernel = UnbundledKernel(
        config=KernelConfig(tc=tc_config, channel=ChannelConfig(seed=seed)),
        dc_count=1,
        faults=injector,
    )
    try:
        if injector is not None:
            injector.load_schedule(list(fault_rules))
        table = config.table
        kernel.create_table(table)
        initial: dict[tuple[str, object], object] = {}
        with kernel.begin() as txn:
            for key in range(config.keyspace):
                value = f"init.k{key}"
                txn.insert(table, key, value)
                initial[(table, key)] = value

        scheduler = DeterministicScheduler(
            _build_strategy(strategy, seed, trace), max_steps=config.max_steps
        )
        for index in range(config.txns):
            scheduler.spawn(
                f"t{index}", _txn_task(kernel, config, seed, index)
            )
        if config.checkpoint:
            scheduler.spawn("checkpoint", _checkpoint_task(kernel))
        if config.crash:
            _plan_crash(scheduler, kernel, seed)
        scheduler.run()

        final = None
        if not scheduler.exhausted:
            final = _read_final_state(kernel, config, initial)
        report = SerializationOracle().check(
            scheduler.events,
            initial=initial,
            final=final,
            strict=not scheduler.exhausted,
            # Event order is conflict order only under 2PL, where a lock
            # pins every operation until transaction end.  occ re-serves
            # repeated reads from its transaction-private workspace and
            # mvcc reads before-images, so both can legitimately return
            # an older value *after* a concurrent in-place write — the
            # value-aware MVSG is their judge.  Negative controls run
            # under the same mode as their honest policy: an anomaly
            # only counts as caught if the honest policy sweeps clean
            # under the identical judge.
            multiversion=config.cc_policy in ("occ", "mvcc"),
        )
        commits = sum(
            1 for e in scheduler.events if e["point"] == "txn.commit"
        )
        aborts = sum(1 for e in scheduler.events if e["point"] == "txn.abort")
        return ScheduleOutcome(
            seed=seed,
            strategy=strategy,
            decisions=list(scheduler.decisions),
            report=report,
            steps=scheduler.steps,
            exhausted=scheduler.exhausted,
            committed=commits,
            aborted=aborts,
            events=scheduler.events,
            task_errors={
                name: repr(error) for name, error in scheduler.errors().items()
            },
        )
    finally:
        kernel.close()


def _txn_task(kernel: UnbundledKernel, config: ExploreConfig, seed: int, index: int):
    """One transaction as a virtual task; its ops are a pure seed function."""

    def body() -> None:
        rng = random.Random((seed << 8) ^ (index * 0x9E3779B1 + 1))
        name = f"t{index}"
        table = config.table
        txn = kernel.begin()
        note_event("txn.begin", txn=name)
        try:
            for op_no in range(config.ops_per_txn):
                key = rng.randrange(config.keyspace)
                if rng.random() < config.read_fraction:
                    note_event("op.invoke", txn=name, op="read", table=table, key=key)
                    value = txn.read(table, key)
                    note_event(
                        "op.ok", txn=name, op="read", table=table, key=key, value=value
                    )
                else:
                    value = f"{name}.o{op_no}"
                    note_event(
                        "op.invoke", txn=name, op="update", table=table, key=key,
                        value=value,
                    )
                    txn.update(table, key, value)
                    note_event(
                        "op.ok", txn=name, op="update", table=table, key=key,
                        value=value,
                    )
            txn.commit()
            note_event("txn.commit", txn=name)
        except ScheduleInterrupted:
            raise
        except ReproError:
            try:
                txn.abort()
            except ReproError:
                pass  # the DC is down; retry_pending settles it post-run
            note_event("txn.abort", txn=name)

    return body


def _checkpoint_task(kernel: UnbundledKernel):
    """TC checkpoints as a schedulable task: each attempt yields at the
    ``tc.checkpoint``/``tc.truncate`` decision points, so the strategy can
    interleave contract termination anywhere in the transaction mix."""

    def body() -> None:
        for _ in range(2):
            try:
                granted = kernel.checkpoint()
            except ScheduleInterrupted:
                raise
            except ReproError:
                # A concurrently-injected DC crash makes the checkpoint
                # round trip fail; recovery is its own task.
                note_event("tc.checkpoint.failed")
                return
            note_event("tc.checkpoint.done", granted=granted)

    return body


def _plan_crash(
    scheduler: DeterministicScheduler, kernel: UnbundledKernel, seed: int
) -> None:
    """Fail-stop a DC at a seeded step; recovery runs as its own task."""
    rng = random.Random(seed ^ 0xD0C)
    dc_name = sorted(kernel.dcs)[0]
    step = rng.randrange(5, 45)

    def crash_now() -> None:
        if kernel.dcs[dc_name].crashed:
            return
        kernel.crash_dc(dc_name)
        scheduler.spawn("recovery", recover)

    def recover() -> None:
        kernel.recover_dc(dc_name)
        note_event("dc.recover.task_done", target=dc_name)

    scheduler.at_step(step, crash_now)


def _read_final_state(
    kernel: UnbundledKernel,
    config: ExploreConfig,
    initial: dict[tuple[str, object], object],
) -> Optional[dict[tuple[str, object], object]]:
    try:
        # Finish any rollback/cleanup a DC outage interrupted (the
        # supervisor's job in chaos runs) so the final state is settled.
        kernel.tc.retry_pending()
        final: dict[tuple[str, object], object] = {}
        for (table, key) in initial:
            final[(table, key)] = kernel.tc.read_other(
                table, key, flavor=ReadFlavor.READ_COMMITTED
            )
        return final
    except ReproError:
        return None  # a DC is still down; skip the final-state check


# -- sweeps -------------------------------------------------------------------


@dataclass
class ExplorationSummary:
    explored: int = 0
    anomalies: int = 0
    committed: int = 0
    aborted: int = 0
    exhausted: int = 0
    per_variant: dict[str, int] = field(default_factory=dict)
    first_failure: Optional[ScheduleOutcome] = None
    #: The exact variant config the first failure ran under (sweeps mutate
    #: crash/checkpoint/cc_policy per variant) — what minimize_failure needs.
    first_failure_config: Optional[ExploreConfig] = None

    def to_dict(self) -> dict:
        data = {
            "explored": self.explored,
            "anomalies": self.anomalies,
            "committed": self.committed,
            "aborted": self.aborted,
            "exhausted": self.exhausted,
            "per_variant": dict(self.per_variant),
        }
        if self.first_failure is not None:
            data["first_failure"] = {
                "seed": self.first_failure.seed,
                "strategy": self.first_failure.strategy,
                "anomaly": self.first_failure.anomaly,
            }
            if self.first_failure_config is not None:
                data["first_failure"]["config"] = self.first_failure_config.to_dict()
        return data


def explore(
    config: Optional[ExploreConfig] = None,
    schedules: int = 100,
    strategies: Sequence[str] = ("random", "pct"),
    crash_modes: Sequence[bool] = (False,),
    checkpoint_modes: Optional[Sequence[bool]] = None,
    cc_policies: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    stop_on_anomaly: bool = True,
) -> ExplorationSummary:
    """Sweep ``schedules`` seeds round-robin over strategy × crash-mode
    (× checkpoint-mode, when ``checkpoint_modes`` is given, × CC policy,
    when ``cc_policies`` is given)."""
    config = config or ExploreConfig()
    summary = ExplorationSummary()
    checkpoints = (
        tuple(checkpoint_modes) if checkpoint_modes is not None else (config.checkpoint,)
    )
    policies = (
        tuple(cc_policies) if cc_policies is not None else (config.cc_policy,)
    )
    variants = [
        (strategy, crash, ckpt, policy)
        for strategy in strategies
        for crash in crash_modes
        for ckpt in checkpoints
        for policy in policies
    ]
    for index in range(schedules):
        strategy, crash, ckpt, policy = variants[index % len(variants)]
        variant_config = ExploreConfig(
            **{
                **config.to_dict(),
                "crash": crash,
                "checkpoint": ckpt,
                "cc_policy": policy,
            }
        )
        seed = base_seed + index
        outcome = run_schedule(seed, variant_config, strategy)
        summary.explored += 1
        summary.committed += outcome.committed
        summary.aborted += outcome.aborted
        if outcome.exhausted:
            summary.exhausted += 1
        key = f"{strategy}{'+crash' if crash else ''}{'+ckpt' if ckpt else ''}"
        if cc_policies is not None:
            key = f"{key}+{policy}"
        summary.per_variant[key] = summary.per_variant.get(key, 0) + 1
        if outcome.anomaly is not None:
            summary.anomalies += 1
            if summary.first_failure is None:
                summary.first_failure = outcome
                summary.first_failure_config = variant_config
            if stop_on_anomaly:
                break
    return summary


# -- minimization & artifacts -------------------------------------------------


def minimize_failure(
    outcome: ScheduleOutcome,
    config: ExploreConfig,
    max_replays: int = 120,
) -> dict:
    """Delta-debug a failing schedule's decision trace into an artifact.

    The anomaly category is pinned: a candidate trace counts as failing
    only if it reproduces the *same kind* of anomaly (a cycle stays a
    cycle), so minimization cannot drift onto a different bug.
    """
    want_cycle = outcome.report.cycle is not None

    def still_fails(candidate: list[int]) -> bool:
        replay = run_schedule(
            outcome.seed, config, strategy="trace", trace=candidate
        )
        if want_cycle:
            return replay.report.cycle is not None
        return replay.anomaly is not None

    trace = minimize_trace(outcome.decisions, still_fails, max_replays=max_replays)
    replayed = run_schedule(outcome.seed, config, strategy="trace", trace=trace)
    return {
        "version": ARTIFACT_VERSION,
        "seed": outcome.seed,
        "strategy": outcome.strategy,
        "trace": trace,
        "config": config.to_dict(),
        "anomaly": replayed.anomaly or outcome.anomaly,
        "original_trace_len": len(outcome.decisions),
    }


def replay_artifact(artifact: dict) -> ScheduleOutcome:
    """Re-run a minimized ``(seed, trace)`` artifact deterministically."""
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ReproError(
            f"unknown explorer artifact version {artifact.get('version')!r}"
        )
    config = ExploreConfig.from_dict(artifact.get("config", {}))
    return run_schedule(
        int(artifact["seed"]),
        config,
        strategy="trace",
        trace=list(artifact.get("trace", ())),
    )


def save_artifact(artifact: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
