"""Deterministic fault injection for the unbundled kernel.

The paper's contracts (causality, unique request ids, idempotence, resend,
recovery ordering) are only interesting *under failure* — so failure must
be scriptable.  A single :class:`FaultInjector` is threaded through every
component; each component announces named **hook points** by calling
:meth:`FaultInjector.hit` at its fault surface:

==================== ========================================================
hook point           fired
==================== ========================================================
``disk.page_write``  before a page image is installed on stable storage
``disk.dclog_force`` before a system-transaction batch is forced to the
                     stable DC log (the "failed fsync" surface)
``buffer.flush``     before the buffer manager flushes a dirty page
``channel.send``     before a request is delivered to the DC
``channel.recv``     before a reply is returned to the TC
``tc.log_force``     before the TC forces its log (commit durability point)
``tc.checkpoint``    at the start of a TC checkpoint
``tc.truncate``      after a checkpoint is stable, before the TC log's
                     prefix below the RSSP is physically dropped
``tc.redo``          before each operation of a restart redo stream is
                     resent (crash-mid-redo surface)
``dc.systxn``        at system-transaction commit, after the split halves
                     exist in memory but before anything is stable
``dc.restart``       at the start of DC recovery (double-failure surface)
==================== ========================================================

A **schedule** is an ordered list of :class:`FaultRule`; each rule matches
one hook point (optionally filtered to one component) and fires on the Nth
matching hit.  Actions:

- ``crash``    — crash the target component (fail-stop) and abort the
                 in-flight call with ``CrashedError``.  A crash at
                 ``disk.page_write`` models a torn/partial page write: the
                 write never happens (atomic page semantics: torn = nothing)
                 and the volume's DC dies, exactly like a checksum-detected
                 torn sector on real hardware.
- ``drop``     — lose the message (channel points); ``count`` > 1 makes a
                 burst.
- ``partition``— lose *every* message on the channel until the supervisor
                 heals it.
- ``delay``    — charge a latency spike of ``delay_ms`` simulated ms.
- ``fail``     — raise :class:`~repro.common.errors.InjectedFault`.

Determinism: rules fire on exact hit counts and the random mode *generates
a schedule up front* from a seed — execution itself draws no randomness,
so every run is fully reproducible from the ``(seed, schedule)`` pair that
:meth:`FaultInjector.describe` prints on failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import CrashedError, InjectedFault
from repro.sim.metrics import Metrics


class FaultPoint:
    """Names of the kernel's fault hook points."""

    DISK_PAGE_WRITE = "disk.page_write"
    DISK_LOG_FORCE = "disk.dclog_force"
    BUFFER_FLUSH = "buffer.flush"
    CHANNEL_SEND = "channel.send"
    CHANNEL_RECV = "channel.recv"
    TC_LOG_FORCE = "tc.log_force"
    TC_CHECKPOINT = "tc.checkpoint"
    TC_TRUNCATE = "tc.truncate"
    TC_REDO = "tc.redo"
    #: occ/mvcc commit windows: entering commit-time validation, and the
    #: instant after the version stamps were installed (validation passed,
    #: commit record not yet durable).  Fire only under a ValidatingCc.
    TC_CC_VALIDATE = "tc.cc_validate"
    TC_CC_INSTALL = "tc.cc_install"
    DC_SYSTXN = "dc.systxn"
    DC_RESTART = "dc.restart"

    #: Points whose target is a DC name.
    DC_POINTS = (
        DISK_PAGE_WRITE,
        DISK_LOG_FORCE,
        BUFFER_FLUSH,
        DC_SYSTXN,
        DC_RESTART,
    )
    #: Points whose target is a DC name but whose fault surface is the wire.
    CHANNEL_POINTS = (CHANNEL_SEND, CHANNEL_RECV)
    #: Points whose target is a TC name.
    TC_POINTS = (
        TC_LOG_FORCE,
        TC_CHECKPOINT,
        TC_TRUNCATE,
        TC_REDO,
        TC_CC_VALIDATE,
        TC_CC_INSTALL,
    )

    ALL = DC_POINTS + CHANNEL_POINTS + TC_POINTS


class FaultAction:
    CRASH = "crash"
    DROP = "drop"
    PARTITION = "partition"
    DELAY = "delay"
    FAIL = "fail"


@dataclass
class FaultRule:
    """One scheduled fault: fire ``action`` on the ``after``-th matching hit.

    ``count`` extends drop/delay faults over consecutive hits (a burst);
    crash/fail faults fire once.  A partition stays active from its trigger
    until :meth:`FaultInjector.heal` lifts it.
    """

    point: str
    action: str
    target: str = ""
    after: int = 1
    count: int = 1
    delay_ms: float = 5.0
    note: str = ""

    def describe(self) -> str:
        parts = [self.point, self.action]
        if self.target:
            parts.append(f"target={self.target}")
        parts.append(f"after={self.after}")
        if self.count != 1:
            parts.append(f"count={self.count}")
        if self.action == FaultAction.DELAY:
            parts.append(f"delay_ms={self.delay_ms}")
        if self.note:
            parts.append(f"note={self.note!r}")
        return "FaultRule(" + ", ".join(parts) + ")"


@dataclass
class FaultOutcome:
    """What a non-raising fault asks the call site to do."""

    action: str
    rule: FaultRule
    delay_ms: float = 0.0


@dataclass
class _RuleState:
    rule: FaultRule
    seen: int = 0
    fired: int = 0
    healed: bool = False

    def matches(self, point: str, target: str) -> bool:
        if self.rule.point != point:
            return False
        return not self.rule.target or self.rule.target == target

    def active(self) -> bool:
        if self.healed:
            return False
        if self.rule.action == FaultAction.PARTITION:
            return self.seen >= self.rule.after
        return self.rule.after <= self.seen < self.rule.after + self.rule.count


class FaultInjector:
    """Executes a fault schedule against registered components.

    Components self-register with :meth:`register_component` so a ``crash``
    rule can reach their ``crash()`` method; every fired fault is appended
    to :attr:`fired` (the trace printed with the schedule on failure).
    """

    def __init__(
        self,
        schedule: Sequence[FaultRule] = (),
        seed: int = 0,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.seed = seed
        self.schedule = list(schedule)
        self.metrics = metrics or Metrics()
        self._states = [_RuleState(rule) for rule in self.schedule]
        self._components: dict[str, tuple[str, Callable[[], object]]] = {}
        #: Human-readable trace of every fired fault, in order.
        self.fired: list[str] = []

    def load_schedule(self, schedule: Sequence[FaultRule]) -> None:
        """Install a schedule after construction (all hit counts reset).

        Lets callers build the injector first, wire components through it
        (so their registered names are known), and only then generate a
        schedule targeting those names."""
        self.schedule = list(schedule)
        self._states = [_RuleState(rule) for rule in self.schedule]

    # -- wiring ------------------------------------------------------------

    def register_component(
        self, name: str, kind: str, crash: Callable[[], object]
    ) -> None:
        """Register a crashable component (kind is ``"tc"`` or ``"dc"``)."""
        self._components[name] = (kind, crash)

    def component_names(self, kind: Optional[str] = None) -> list[str]:
        return sorted(
            name
            for name, (component_kind, _crash) in self._components.items()
            if kind is None or component_kind == kind
        )

    # -- the hook ----------------------------------------------------------

    def hit(self, point: str, target: str = "") -> Optional[FaultOutcome]:
        """Announce one pass through a hook point; maybe inject a fault.

        Returns a :class:`FaultOutcome` for drop/partition/delay faults
        (the call site interprets it), returns None when nothing fires,
        raises ``CrashedError`` for crash faults (after crashing the target
        component) and :class:`InjectedFault` for fail faults.
        """
        if not self._states:
            return None
        chosen: Optional[_RuleState] = None
        for state in self._states:
            if not state.matches(point, target):
                continue
            state.seen += 1
            if chosen is None and state.active():
                chosen = state
        if chosen is None:
            return None
        rule = chosen.rule
        chosen.fired += 1
        self._record(rule, point, target)
        if rule.action == FaultAction.CRASH:
            self._crash(rule.target or target, point)
        if rule.action == FaultAction.FAIL:
            raise InjectedFault(point, rule.note)
        if rule.action == FaultAction.DELAY:
            return FaultOutcome(FaultAction.DELAY, rule, rule.delay_ms)
        return FaultOutcome(rule.action, rule)

    def _crash(self, name: str, point: str) -> None:
        entry = self._components.get(name)
        if entry is None:
            raise InjectedFault(point, f"crash target {name!r} is not registered")
        _kind, crash = entry
        crash()
        raise CrashedError(name)

    def _record(self, rule: FaultRule, point: str, target: str) -> None:
        self.fired.append(f"{point}[{target or '*'}] -> {rule.action}")
        self.metrics.incr(f"faults.{point}.{rule.action}")
        self.metrics.incr("faults.fired")

    # -- healing -----------------------------------------------------------

    def heal(self, target: Optional[str] = None) -> int:
        """Lift active partitions (all of them, or one target's); returns
        how many rules were disarmed.  Called by the supervisor when it
        re-attaches channels."""
        healed = 0
        for state in self._states:
            if state.rule.action != FaultAction.PARTITION or state.healed:
                continue
            if target is not None and state.rule.target != target:
                continue
            if state.seen >= state.rule.after:
                state.healed = True
                healed += 1
                self.metrics.incr("faults.partitions_healed")
        return healed

    def partitioned(self, target: str) -> bool:
        return any(
            state.rule.action == FaultAction.PARTITION
            and state.active()
            and (not state.rule.target or state.rule.target == target)
            for state in self._states
        )

    # -- reproducibility ---------------------------------------------------

    def describe(self) -> str:
        """The full reproduction recipe: seed + schedule + fired trace."""
        rules = ", ".join(rule.describe() for rule in self.schedule)
        trace = "; ".join(self.fired) or "none"
        return f"seed={self.seed} schedule=[{rules}] fired=[{trace}]"

    def pending(self) -> int:
        """Rules that have not fired yet (partitions count until healed)."""
        return sum(1 for state in self._states if not state.fired)

    # -- seeded random schedules -------------------------------------------

    @classmethod
    def random_schedule(
        cls,
        seed: int,
        dc_names: Sequence[str],
        tc_names: Sequence[str] = (),
        rules: int = 6,
        horizon: int = 300,
        metrics: Optional[Metrics] = None,
    ) -> "FaultInjector":
        """An injector pre-loaded with :meth:`random_rules`."""
        return cls(
            cls.random_rules(seed, dc_names, tc_names, rules, horizon),
            seed=seed,
            metrics=metrics,
        )

    @staticmethod
    def random_rules(
        seed: int,
        dc_names: Sequence[str],
        tc_names: Sequence[str] = (),
        rules: int = 6,
        horizon: int = 300,
    ) -> list[FaultRule]:
        """Generate a reproducible schedule of ``rules`` faults from ``seed``.

        All randomness happens *here*; executing the schedule draws no
        randomness, so ``(seed, schedule)`` fully determines a run.
        ``horizon`` bounds the hit counts at which faults trigger — scale
        it to the workload so faults actually land.
        """
        rng = random.Random(seed)
        menu: list[tuple[str, str, str]] = []
        for dc in dc_names:
            menu.extend(
                [
                    (FaultPoint.DISK_PAGE_WRITE, FaultAction.CRASH, dc),
                    (FaultPoint.DISK_LOG_FORCE, FaultAction.CRASH, dc),
                    (FaultPoint.BUFFER_FLUSH, FaultAction.CRASH, dc),
                    (FaultPoint.DC_SYSTXN, FaultAction.CRASH, dc),
                    (FaultPoint.CHANNEL_SEND, FaultAction.DROP, dc),
                    (FaultPoint.CHANNEL_RECV, FaultAction.DROP, dc),
                    (FaultPoint.CHANNEL_SEND, FaultAction.DELAY, dc),
                    (FaultPoint.CHANNEL_SEND, FaultAction.PARTITION, dc),
                ]
            )
        for tc in tc_names:
            menu.extend(
                [
                    (FaultPoint.TC_LOG_FORCE, FaultAction.CRASH, tc),
                    (FaultPoint.TC_CHECKPOINT, FaultAction.CRASH, tc),
                    (FaultPoint.TC_TRUNCATE, FaultAction.CRASH, tc),
                    (FaultPoint.TC_REDO, FaultAction.CRASH, tc),
                ]
            )
        if not menu:
            raise ValueError("random_schedule needs at least one component name")
        # Hook points fire at wildly different rates (a channel carries
        # thousands of messages while a buffer flushes dozens of pages), so
        # the trigger-count horizon is scaled per point — otherwise rules
        # on rare points never land.
        horizon_scale = {
            FaultPoint.DISK_PAGE_WRITE: 20,
            FaultPoint.DISK_LOG_FORCE: 30,
            FaultPoint.BUFFER_FLUSH: 20,
            FaultPoint.DC_SYSTXN: 30,
            FaultPoint.DC_RESTART: 100,
            FaultPoint.TC_LOG_FORCE: 2,
            FaultPoint.TC_CHECKPOINT: 50,
            FaultPoint.TC_TRUNCATE: 50,
            FaultPoint.TC_REDO: 20,
        }
        schedule = []
        for index in range(rules):
            point, action, target = rng.choice(menu)
            point_horizon = max(3, horizon // horizon_scale.get(point, 1))
            schedule.append(
                FaultRule(
                    point=point,
                    action=action,
                    target=target,
                    after=rng.randint(1, point_horizon),
                    count=rng.randint(1, 8) if action == FaultAction.DROP else 1,
                    delay_ms=rng.choice((1.0, 5.0, 25.0)),
                    note=f"r{index}",
                )
            )
        return schedule
