"""History-level oracles for explored schedules.

The explorer records a history: operation invocations and responses
(transaction, op kind, table, key, value) interleaved with the scheduler's
yield events and DC lifecycle notes (``dc.crash`` / ``dc.recover.begin`` /
``dc.recover.ready`` / ``dc.apply``).  This module judges that history:

- **Conflict serializability** — build the conflict serialization graph
  over *committed* transactions (an edge T1 -> T2 for every pair of
  conflicting operations on the same key where T1's completed first) and
  report any cycle.  Under strict 2PL conflicting operations are never in
  flight concurrently — a lock pins each one until transaction end — so
  response order *is* conflict order and the graph must be acyclic.  With
  read locks weakened (``TcConfig.unsafe_skip_read_locks``) the classic
  r/w interleavings produce cycles, which is the negative control proving
  the checker has teeth.
- **Dirty reads** — writes carry values unique per transaction, so a read
  observing the value of a transaction that later aborted is detected
  exactly.
- **Final state** — every key must end at its last committed write (or its
  initial value); repeat-history rollback and post-crash redo both feed
  this check.
- **Recovery ordering** — between a DC's ``dc.crash`` and its
  ``dc.recover.ready`` (structures rebuilt and validated), no operation
  may apply at that DC: logical redo before well-formedness would violate
  the Section 5.2.2 contract.

The oracle is pure: it reads an event list and returns an
:class:`OracleReport`; it never touches the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

# Event points written by the explorer harness (sim/explore.py).
OP_OK = "op.ok"
TXN_COMMIT = "txn.commit"
TXN_ABORT = "txn.abort"

# Event points written by DC instrumentation (dc/data_component.py).
DC_CRASH = "dc.crash"
DC_RECOVER_BEGIN = "dc.recover.begin"
DC_RECOVER_READY = "dc.recover.ready"
DC_APPLY = "dc.apply"

#: Pseudo-writer owning pre-populated initial values.
INITIAL = "<initial>"


@dataclass
class _Op:
    seq: int
    txn: str
    kind: str  # "read" | "write"
    table: str
    key: object
    value: object


@dataclass
class OracleReport:
    """Everything the oracle concluded about one schedule's history."""

    committed: list[str] = field(default_factory=list)
    aborted: list[str] = field(default_factory=list)
    edges: list[tuple[str, str]] = field(default_factory=list)
    cycle: Optional[list[str]] = None
    dirty_reads: list[dict] = field(default_factory=list)
    final_state_mismatches: list[dict] = field(default_factory=list)
    recovery_violations: list[dict] = field(default_factory=list)

    @property
    def serializable(self) -> bool:
        return self.cycle is None

    @property
    def ok(self) -> bool:
        return (
            self.cycle is None
            and not self.dirty_reads
            and not self.final_state_mismatches
            and not self.recovery_violations
        )

    def anomaly(self) -> Optional[str]:
        """One-line description of the first anomaly, or None."""
        if self.cycle is not None:
            return f"serialization cycle: {' -> '.join(self.cycle)}"
        if self.dirty_reads:
            return f"dirty read: {self.dirty_reads[0]}"
        if self.recovery_violations:
            return f"recovery-ordering violation: {self.recovery_violations[0]}"
        if self.final_state_mismatches:
            return f"final-state mismatch: {self.final_state_mismatches[0]}"
        return None


class SerializationOracle:
    """Judges one explored schedule's recorded history."""

    def check(
        self,
        events: Sequence[dict],
        initial: Optional[dict[tuple[str, object], object]] = None,
        final: Optional[dict[tuple[str, object], object]] = None,
        strict: bool = True,
        multiversion: bool = False,
    ) -> OracleReport:
        """Analyze ``events``.

        ``initial`` maps (table, key) to the pre-populated value, so reads
        of untouched keys attribute to a pseudo-writer instead of looking
        like reads of nothing.  ``final`` is the post-run state read back
        by the harness; pass None to skip the final-state check (e.g. a
        schedule cut off at its step budget leaves transactions
        mid-flight, where partial writes are expected, not anomalous).
        ``strict=False`` also skips the dirty-read check for the same
        reason: an interrupted transaction never recorded its abort.

        ``multiversion=True`` builds a value-aware multiversion
        serialization graph instead of the event-order conflict graph.
        Event order is only conflict order when every read returns the
        *latest* state (strict 2PL): an mvcc before-image read, or an
        occ read re-served from the transaction's workspace, can
        legitimately complete after a concurrent writer's in-place write
        yet return the older version, which the event-order graph would
        misreport as a cycle.  The MVSG attributes each read to the
        transaction that wrote the value it actually returned (values are
        unique per operation), orders versions by committed-write event
        order (valid: write locks are held to transaction end), and adds
        the read -> next-version-writer anti-dependency edges.
        """
        report = OracleReport()
        ops = self._collect_ops(events, report)
        if multiversion:
            self._mv_conflict_graph(ops, initial or {}, report)
        else:
            self._conflict_graph(ops, report)
        if strict:
            self._dirty_reads(ops, initial or {}, report)
        if final is not None:
            self._final_state(ops, initial or {}, final, report)
        self._recovery_ordering(events, report)
        return report

    # -- history parsing ----------------------------------------------------

    def _collect_ops(self, events: Sequence[dict], report: OracleReport) -> list[_Op]:
        ops: list[_Op] = []
        for event in events:
            point = event.get("point")
            if point == OP_OK:
                kind = "read" if event["op"] == "read" else "write"
                ops.append(
                    _Op(
                        seq=event["seq"],
                        txn=event["txn"],
                        kind=kind,
                        table=event["table"],
                        key=event["key"],
                        value=event.get("value"),
                    )
                )
            elif point == TXN_COMMIT:
                report.committed.append(event["txn"])
            elif point == TXN_ABORT:
                report.aborted.append(event["txn"])
        return ops

    # -- conflict serializability -------------------------------------------

    def _conflict_graph(self, ops: list[_Op], report: OracleReport) -> None:
        committed = set(report.committed)
        by_key: dict[tuple[str, object], list[_Op]] = {}
        for op in ops:
            if op.txn in committed:
                by_key.setdefault((op.table, op.key), []).append(op)
        edges: set[tuple[str, str]] = set()
        for key_ops in by_key.values():
            key_ops.sort(key=lambda op: op.seq)
            for i, first in enumerate(key_ops):
                for second in key_ops[i + 1 :]:
                    if first.txn == second.txn:
                        continue
                    if first.kind == "read" and second.kind == "read":
                        continue
                    edges.add((first.txn, second.txn))
        report.edges = sorted(edges)
        report.cycle = self._find_cycle(report.edges)

    def _mv_conflict_graph(
        self,
        ops: list[_Op],
        initial: dict[tuple[str, object], object],
        report: OracleReport,
    ) -> None:
        """Multiversion serialization graph over committed transactions.

        Three edge families per key:

        - **wr** — reader depends on the transaction that wrote the value
          it returned (value -> writer is unambiguous: unique per op).
        - **ww** — committed writers in write-event order (their X locks
          are held to transaction end, so event order is version order).
        - **rw** — the reader must precede the writer of the *next*
          version after the one it read (later versions follow via ww).
        """
        committed = set(report.committed)
        # Version lists per key: committed writes in event order, with the
        # pre-populated value (if any) as version zero by the pseudo-writer.
        versions: dict[tuple[str, object], list[_Op]] = {}
        reads: list[_Op] = []
        for op in ops:
            if op.txn not in committed:
                continue
            if op.kind == "write":
                versions.setdefault((op.table, op.key), []).append(op)
            elif op.value is not None:
                reads.append(op)
        for slot, value in initial.items():
            versions.setdefault(slot, []).insert(
                0, _Op(seq=-1, txn=INITIAL, kind="write", table=slot[0], key=slot[1], value=value)
            )
        for chain in versions.values():
            chain.sort(key=lambda op: op.seq)
        writer_of = {
            op.value: op for chain in versions.values() for op in chain
        }
        edges: set[tuple[str, str]] = set()
        # ww: consecutive committed writers of each key, in version order.
        for chain in versions.values():
            for first, second in zip(chain, chain[1:]):
                if first.txn != second.txn and first.txn != INITIAL:
                    edges.add((first.txn, second.txn))
        # wr and rw: attribute each read to its version, then point the
        # reader at the next version's writer.
        for read in reads:
            source = writer_of.get(read.value)
            if source is None:
                continue  # value from an uncommitted/aborted writer:
                # _dirty_reads (aborted) or step-budget cutoff territory,
                # not expressible as a version dependency.
            if source.txn not in (read.txn, INITIAL):
                edges.add((source.txn, read.txn))
            chain = versions.get((read.table, read.key), [])
            try:
                index = chain.index(source)
            except ValueError:
                continue
            for later in chain[index + 1 :]:
                if later.txn != read.txn:
                    edges.add((read.txn, later.txn))
                    break
        report.edges = sorted(edges)
        report.cycle = self._find_cycle(report.edges)

    @staticmethod
    def _find_cycle(edges: list[tuple[str, str]]) -> Optional[list[str]]:
        graph: dict[str, list[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        parent: dict[str, str] = {}
        for root in graph:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[str, iter]] = [(root, iter(graph.get(root, ())))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    state = color.get(nxt, WHITE)
                    if state == GRAY:
                        # Found a back edge: walk parents to emit the cycle.
                        cycle = [nxt, node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(graph.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # -- dirty reads ---------------------------------------------------------

    def _writer_of(self, ops: list[_Op]) -> dict[object, str]:
        """Map written value -> writer (values are unique per transaction)."""
        return {op.value: op.txn for op in ops if op.kind == "write"}

    def _dirty_reads(
        self,
        ops: list[_Op],
        initial: dict[tuple[str, object], object],
        report: OracleReport,
    ) -> None:
        writer_of = self._writer_of(ops)
        aborted = set(report.aborted)
        committed = set(report.committed)
        for op in ops:
            if op.kind != "read" or op.txn not in committed or op.value is None:
                continue
            writer = writer_of.get(op.value)
            if writer is None or writer == op.txn:
                continue
            if writer in aborted:
                report.dirty_reads.append(
                    {
                        "reader": op.txn,
                        "writer": writer,
                        "table": op.table,
                        "key": op.key,
                        "value": op.value,
                        "seq": op.seq,
                    }
                )

    # -- final state ---------------------------------------------------------

    def _final_state(
        self,
        ops: list[_Op],
        initial: dict[tuple[str, object], object],
        final: dict[tuple[str, object], object],
        report: OracleReport,
    ) -> None:
        committed = set(report.committed)
        expected = dict(initial)
        last_write: dict[tuple[str, object], _Op] = {}
        for op in ops:
            if op.kind == "write" and op.txn in committed:
                slot = (op.table, op.key)
                prior = last_write.get(slot)
                if prior is None or op.seq > prior.seq:
                    last_write[slot] = op
        for slot, op in last_write.items():
            expected[slot] = op.value
        for slot, want in expected.items():
            got = final.get(slot)
            if got != want:
                report.final_state_mismatches.append(
                    {"table": slot[0], "key": slot[1], "expected": want, "actual": got}
                )

    # -- recovery ordering ---------------------------------------------------

    def _recovery_ordering(
        self, events: Sequence[dict], report: OracleReport
    ) -> None:
        """No ``dc.apply`` may land between ``dc.crash`` and recover-ready."""
        down_since: dict[str, int] = {}
        for event in events:
            point = event.get("point")
            target = event.get("target", "")
            if point == DC_CRASH:
                down_since[target] = event["seq"]
            elif point == DC_RECOVER_READY:
                down_since.pop(target, None)
            elif point == DC_APPLY and target in down_since:
                report.recovery_violations.append(
                    {
                        "dc": target,
                        "crash_seq": down_since[target],
                        "apply_seq": event["seq"],
                        "detail": {
                            k: v
                            for k, v in event.items()
                            if k not in ("point", "target")
                        },
                    }
                )
