"""Simulation support: metrics, fault injection, supervision, chaos."""

from repro.sim.faults import FaultAction, FaultInjector, FaultPoint, FaultRule
from repro.sim.metrics import Metrics
from repro.sim.supervisor import CrashNotice, HealReport, Supervisor, SupervisorGaveUp

__all__ = [
    "ChaosRunner",
    "ChaosViolation",
    "CrashNotice",
    "FaultAction",
    "FaultInjector",
    "FaultPoint",
    "FaultRule",
    "HealReport",
    "HistoryRecorder",
    "Metrics",
    "Supervisor",
    "SupervisorGaveUp",
]

#: chaos drives a whole kernel, whose modules import this package for
#: metrics/faults — resolve those names lazily to keep the cycle open.
_CHAOS_EXPORTS = {"ChaosRunner", "ChaosViolation", "HistoryRecorder"}


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.sim import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
