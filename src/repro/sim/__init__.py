"""Simulation support: metrics, fault injection, supervision, chaos."""

from repro.sim.faults import FaultAction, FaultInjector, FaultPoint, FaultRule
from repro.sim.metrics import Metrics
from repro.sim.oracle import OracleReport, SerializationOracle
from repro.sim.schedule import (
    DeterministicScheduler,
    PctStrategy,
    RandomWalkStrategy,
    RoundRobinStrategy,
    ScheduleInterrupted,
    TraceStrategy,
    YieldPoint,
    minimize_trace,
)
from repro.sim.supervisor import CrashNotice, HealReport, Supervisor, SupervisorGaveUp

__all__ = [
    "ChaosRunner",
    "ChaosViolation",
    "CrashNotice",
    "DeterministicScheduler",
    "ExploreConfig",
    "FaultAction",
    "FaultInjector",
    "FaultPoint",
    "FaultRule",
    "HealReport",
    "HistoryRecorder",
    "Metrics",
    "OracleReport",
    "PctStrategy",
    "RandomWalkStrategy",
    "RoundRobinStrategy",
    "ScheduleInterrupted",
    "SerializationOracle",
    "Supervisor",
    "SupervisorGaveUp",
    "TraceStrategy",
    "YieldPoint",
    "minimize_failure",
    "minimize_trace",
    "replay_artifact",
    "run_schedule",
]

#: chaos drives a whole kernel, whose modules import this package for
#: metrics/faults — resolve those names lazily to keep the cycle open.
#: explore builds kernels too, so its exports resolve the same way.
_CHAOS_EXPORTS = {"ChaosRunner", "ChaosViolation", "HistoryRecorder"}
_EXPLORE_EXPORTS = {
    "ExploreConfig",
    "minimize_failure",
    "replay_artifact",
    "run_schedule",
}


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.sim import chaos

        return getattr(chaos, name)
    if name in _EXPLORE_EXPORTS:
        from repro.sim import explore

        return getattr(explore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
