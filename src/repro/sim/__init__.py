"""Simulation support: metrics collection and crash/failure injection."""

from repro.sim.metrics import Metrics

__all__ = ["Metrics"]
