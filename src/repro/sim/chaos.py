"""Invariant-checking chaos runner: torture the kernel, prove it honest.

The runner drives a seeded transaction workload against an
:class:`~repro.kernel.unbundled.UnbundledKernel` wired through a
:class:`~repro.sim.faults.FaultInjector`, lets the
:class:`~repro.sim.supervisor.Supervisor` heal every failure, and checks
after each heal (and at the end) that the survivors tell a consistent
story:

- **durability** — every acknowledged commit is visible in full;
- **atomicity** — no partial transaction is ever visible: a transaction's
  effects are all there or all absent;
- **well-formedness** — every B-tree validates after every heal.

Transactions whose ``commit()`` call *raised* are **indeterminate**: the
commit record may or may not have become stable before the crash.  The
runner never touches such a handle again (its log state is unknowable from
outside); instead, after the heal it reads the touched keys back and
classifies the transaction — all post-images visible means it committed,
all pre-images means it aborted, anything else is an atomicity violation.

Every assertion message ends with the injector's ``(seed, schedule)``
recipe, so a failing run is reproducible with::

    ChaosRunner(seed=<seed>).run()          # random mode
    ChaosRunner(schedule=[...]).run()       # scripted mode

With ``channel_config=ChannelConfig(transport="process")`` the runner
drives DC *server processes* instead.  Fault-injection hooks are
local-only there (architecture.md §10), so scripted schedules are
rejected; pass ``kill_every=N`` and every N transactions a seeded-random
DC process takes a real ``kill -9``.  The same durability/atomicity/
well-formedness invariants are then proven across genuine process
kill-and-restart — journal replay, TC resend, and abLSN idempotence
doing the converging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.config import ChannelConfig, KernelConfig, TcConfig
from repro.common.errors import (
    ComponentUnavailableError,
    ReproError,
    SnapshotTooOldError,
    TransactionAborted,
)
from repro.common.ops import ReadFlavor
from repro.kernel.unbundled import UnbundledKernel
from repro.sim.faults import FaultInjector, FaultRule
from repro.sim.metrics import Metrics
from repro.sim.supervisor import Supervisor, SupervisorGaveUp


@dataclass
class _TxnEffects:
    """Intended effects of one transaction: (table, key) -> (pre, post).

    ``pre`` is the model value when the transaction first touched the key
    (None = absent), ``post`` the value it meant to leave behind.  Values
    are unique per transaction, so pre/post images discriminate outcomes.
    """

    txn_no: int
    writes: dict[tuple[str, object], tuple[object, object]] = field(
        default_factory=dict
    )

    def record(self, table: str, key: object, pre: object, post: object) -> None:
        slot = self.writes.get((table, key))
        if slot is None:
            self.writes[(table, key)] = (pre, post)
        else:
            self.writes[(table, key)] = (slot[0], post)


class HistoryRecorder:
    """The committed model: what a perfect kernel would contain."""

    def __init__(self) -> None:
        self.model: dict[tuple[str, object], object] = {}
        self.committed = 0
        self.aborted = 0
        self.resolved_committed = 0
        self.resolved_aborted = 0

    def value(self, table: str, key: object) -> Optional[object]:
        return self.model.get((table, key))

    def apply(self, effects: _TxnEffects) -> None:
        for (table, key), (_pre, post) in effects.writes.items():
            if post is None:
                self.model.pop((table, key), None)
            else:
                self.model[(table, key)] = post

    def table_items(self, table: str) -> dict[object, object]:
        return {
            key: value
            for (tbl, key), value in self.model.items()
            if tbl == table
        }


class ChaosViolation(AssertionError):
    """An invariant failed; the message carries the reproduction recipe."""


class ChaosRunner:
    """Seeded chaos: random (or scripted) faults under a random workload.

    ``schedule=None`` generates ``rules`` random fault rules from ``seed``
    once the kernel's component names are known; a scripted ``schedule``
    is executed as given.  The *workload* is always derived from ``seed``,
    so either way the whole run is a pure function of its arguments.
    """

    TABLES = ("t", "v")  # "t" plain B-tree, "v" versioned

    def __init__(
        self,
        seed: int = 0,
        schedule: Optional[Sequence[FaultRule]] = None,
        txns: int = 250,
        rules: int = 8,
        horizon: int = 600,
        dc_count: int = 2,
        keyspace: int = 48,
        deferred_rate: float = 0.25,
        checkpoint_every: int = 41,
        snapshot_every: int = 29,
        metrics: Optional[Metrics] = None,
        tracer: Optional[object] = None,
        tc_config: Optional[TcConfig] = None,
        channel_config: Optional[ChannelConfig] = None,
        kill_every: int = 0,
        tc_processes: int = 0,
        kill_tc_every: int = 0,
        increment_rate: float = 0.0,
    ) -> None:
        self.seed = seed
        self.txns = txns
        self.keyspace = keyspace
        self.deferred_rate = deferred_rate
        self.checkpoint_every = checkpoint_every
        self.snapshot_every = snapshot_every
        self.metrics = metrics or Metrics()
        #: When a real tracer is passed, invariant failures dump the run's
        #: trace next to the benchmark results (see :meth:`_fail`).
        self.tracer = tracer
        process_mode = (
            channel_config is not None and channel_config.process_family
        )
        self._process_mode = process_mode
        self._shm = process_mode and channel_config.transport == "shm"
        self._tcp = process_mode and bool(channel_config.listen_host)
        if channel_config is not None and channel_config.seed == 0:
            # One top-level seed reproduces everything — workload, fault
            # schedule, *and* channel misbehavior — so a failing run is a
            # single ``--seed`` away, in process mode too.
            channel_config.seed = seed
        self.kill_every = kill_every
        self.kill_tc_every = kill_tc_every
        #: Rate of increment-canary ops: each adds +1 to a reserved slot
        #: (key ``keyspace``, outside the normal workload range), so the
        #: final value counts exactly the committed increments — the
        #: logical-undo (negated delta) analogue of the model check.
        #: Gated (no rng draw at 0.0) to keep default workloads
        #: bit-identical across versions.
        self.increment_rate = increment_rate
        self.kills = 0
        self.tc_kills = 0
        self._tc_process_mode = bool(tc_processes)
        if tc_processes and not process_mode:
            raise ReproError(
                "tc_processes needs the process transport "
                "(channel_config=ChannelConfig(transport='process'))"
            )
        if process_mode:
            # Fault-injection hooks are local-only (architecture.md §10):
            # against DC server processes the only fault is the real one —
            # a SIGKILL, scheduled every ``kill_every`` transactions on a
            # seeded-random victim.  The rest of the runner (workload,
            # heal loop, indeterminate resolution, invariant checks) is
            # transport-agnostic and runs unchanged over the wire.
            if schedule is not None:
                raise ReproError(
                    "scripted fault schedules are local-only; in process "
                    "mode crashes are real kills (use kill_every=N)"
                )
            self.injector = None
        else:
            self.injector = FaultInjector(seed=seed, metrics=self.metrics)
        # The durability invariant checks *acknowledged* commits; commit
        # acknowledgement is force-before-ack at every group_commit_size
        # (the GroupCommitCoalescer waits for the commit record to reach
        # the stable log), so callers may hand in any TcConfig — including
        # the optimized fast-path one — without weakening the check.
        config = KernelConfig(
            tc=tc_config or TcConfig(group_commit_size=1),
            channel=(
                channel_config if channel_config is not None else ChannelConfig()
            ),
            tc_processes=tc_processes,
        )
        self.kernel = UnbundledKernel(
            config=config,
            metrics=self.metrics,
            dc_count=dc_count,
            faults=self.injector,
            tracer=tracer,
        )
        dc_names = list(self.kernel.dcs)
        self.kernel.create_table("t", kind="btree", dc_name=dc_names[0])
        self.kernel.create_table(
            "v", kind="btree", versioned=True, dc_name=dc_names[-1]
        )
        if self.injector is not None:
            if schedule is None:
                schedule = FaultInjector.random_rules(
                    seed,
                    dc_names=self.injector.component_names("dc"),
                    tc_names=self.injector.component_names("tc"),
                    rules=rules,
                    horizon=horizon,
                )
            self.injector.load_schedule(schedule)
        self.supervisor = Supervisor(self.injector, self.metrics)
        self.supervisor.watch_kernel(self.kernel)
        self.history = HistoryRecorder()
        self._indeterminate: list[_TxnEffects] = []
        self.heals = 0
        self.checks = 0

    # -- the run -----------------------------------------------------------

    def run(self) -> dict[str, object]:
        rng = random.Random(self.seed ^ 0xC0FFEE)
        kill_rng = random.Random(self.seed ^ 0x51D)
        tc = self.kernel.tc
        for txn_no in range(self.txns):
            if self.kill_every and txn_no % self.kill_every == self.kill_every - 1:
                self._kill_one(kill_rng)
            # TC kills ride a distinct phase offset so DC and TC deaths
            # interleave (and occasionally coincide) over a long run.
            if (
                self.kill_tc_every
                and txn_no % self.kill_tc_every == self.kill_tc_every // 2
            ):
                self._kill_tc()
            if self.checkpoint_every and txn_no % self.checkpoint_every == 7:
                self._probe(tc.checkpoint)
            if self.snapshot_every and txn_no % self.snapshot_every == 11:
                self._snapshot_probe(rng)
            self._run_txn(rng, txn_no)
        self._heal_and_check()
        return self.report()

    def report(self) -> dict[str, object]:
        if self.injector is not None:
            faults_fired = len(self.injector.fired)
            points = sorted(
                {entry.split("[", 1)[0] for entry in self.injector.fired}
            )
        else:
            faults_fired = self.kills
            points = ["process.kill"] if self.kills else []
        return {
            "seed": self.seed,
            "txns": self.txns,
            "committed": self.history.committed,
            "aborted": self.history.aborted,
            "resolved_committed": self.history.resolved_committed,
            "resolved_aborted": self.history.resolved_aborted,
            "heals": self.heals,
            "invariant_checks": self.checks,
            "tc_kills": self.tc_kills,
            "faults_fired": faults_fired,
            "fault_points_hit": points,
            "recipe": self._recipe(),
        }

    def _recipe(self) -> str:
        if self.injector is not None:
            return self.injector.describe()
        return (
            f"seed={self.seed} kill_every={self.kill_every} "
            f"kill_tc_every={self.kill_tc_every} "
            f"tc_processes={int(self._tc_process_mode)} "
            f"channel_config=ChannelConfig(transport="
            f"'{'shm' if self._shm else 'process'}'"
            f"{', listen_host=<loopback>' if self._tcp else ''}) "
            f"(kills fired: {self.kills}, of which TC: {self.tc_kills})"
        )

    def repro_command(self) -> str:
        """A copy-pasteable command line reproducing this exact run."""
        parts = [f"python -m repro chaos --seed {self.seed}"]
        if self.txns != 250:
            parts.append(f"--txns {self.txns}")
        cc_policy = self.kernel.config.tc.cc_policy
        if cc_policy != "2pl":
            parts.append(f"--cc {cc_policy}")
        if self.increment_rate:
            parts.append(f"--increment-rate {self.increment_rate}")
        if self._process_mode:
            parts.append("--process")
            if self.kill_every:
                parts.append(f"--kill-every {self.kill_every}")
            if self._tc_process_mode and not self._tcp:
                parts.append("--tc-process")
            if self.kill_tc_every:
                parts.append(f"--kill-tc-every {self.kill_tc_every}")
            if self._tcp:
                parts.append("--tcp")
            if self._shm:
                parts.append("--shm")
        return " ".join(parts)

    def _kill_one(self, rng: random.Random) -> None:
        """The process-mode fault: SIGKILL a live DC server process.

        ``crash()`` on a :class:`~repro.net.process.RemoteDc` is a real
        ``kill -9``; the supervisor later restarts the server, which
        replays its journal before the §5.2.1 redo prompt.
        """
        victims = [dc for dc in self.kernel.dcs.values() if not dc.crashed]
        if victims:
            rng.choice(victims).crash()
            self.kills += 1

    def _kill_tc(self) -> None:
        """Kill the TC mid-run.  Against a TC server process this is a
        real ``kill -9``; the supervisor's restart then exercises the
        §5.3.2 journal-replay + record-reset path under live traffic."""
        tc = self.kernel.tc
        if not tc.crashed:
            tc.crash()
            self.kills += 1
            self.tc_kills += 1

    # -- one transaction ---------------------------------------------------

    def _run_txn(self, rng: random.Random, txn_no: int) -> None:
        effects = _TxnEffects(txn_no)
        stage = "begin"
        txn = None
        try:
            txn = self.kernel.begin()
            stage = "ops"
            for op_no in range(rng.randint(1, 4)):
                self._one_op(rng, txn, effects, txn_no, op_no)
            stage = "commit"
            txn.commit()
        except TransactionAborted:
            # Determinate: rolled back (deadlock-free here, so this is the
            # commit-time "DC unavailable" conversion or a forced abort).
            self.history.aborted += 1
            self._heal_and_check()
        except ReproError:
            if stage == "commit":
                # Indeterminate: never touch this handle again.
                self._indeterminate.append(effects)
            else:
                if txn is not None:
                    self._abandon(txn)
                self.history.aborted += 1
            self._heal_and_check()
        else:
            self.history.apply(effects)
            self.history.committed += 1

    def _one_op(
        self,
        rng: random.Random,
        txn,
        effects: _TxnEffects,
        txn_no: int,
        op_no: int,
    ) -> None:
        table = rng.choice(self.TABLES)
        if self.increment_rate and rng.random() < self.increment_rate:
            key = self.keyspace  # the reserved canary slot
            pre = self._pending_value(effects, table, key)
            if pre is None:
                txn.insert(table, key, 0)
                effects.record(table, key, None, 0)
            else:
                txn.increment(table, key, 1)
                effects.record(table, key, pre, pre + 1)
            return
        key = rng.randrange(self.keyspace)
        pre = self._pending_value(effects, table, key)
        value = f"s{self.seed}.t{txn_no}.o{op_no}"
        deferred = rng.random() < self.deferred_rate
        if pre is None:
            txn.insert(table, key, value, deferred=deferred)
            effects.record(table, key, pre, value)
        elif rng.random() < 0.25:
            txn.delete(table, key, deferred=deferred)
            effects.record(table, key, pre, None)
        else:
            txn.update(table, key, value, deferred=deferred)
            effects.record(table, key, pre, value)

    def _pending_value(
        self, effects: _TxnEffects, table: str, key: object
    ) -> Optional[object]:
        slot = effects.writes.get((table, key))
        if slot is not None:
            return slot[1]
        return self.history.value(table, key)

    def _abandon(self, txn) -> None:
        """Roll back a transaction that failed mid-operation; tolerate the
        abort itself failing (the supervisor finishes it as a zombie)."""
        try:
            txn.abort()
        except ReproError:
            pass

    def _probe(self, call) -> None:
        """Run an auxiliary call (checkpoint); heal if it takes a crash."""
        try:
            call()
        except ReproError:
            self._heal_and_check()

    def _snapshot_probe(self, rng: random.Random) -> None:
        """Degraded-mode snapshot reads: healthy DCs answer, down DCs raise
        ComponentUnavailableError instead of hanging."""
        tc = self.kernel.tc
        if not hasattr(tc, "begin_snapshot"):
            return  # a TC server process has no snapshot surface (yet)
        try:
            reader = tc.begin_snapshot(allow_degraded=True)
            for _ in range(3):
                table = rng.choice(self.TABLES)
                key = rng.randrange(self.keyspace)
                try:
                    reader.read(table, key)
                except (ComponentUnavailableError, SnapshotTooOldError):
                    pass
        except ReproError:
            self._heal_and_check()

    # -- heal + invariants -------------------------------------------------

    def _heal_and_check(self) -> None:
        """Heal, resolve indeterminates, verify — repeating if the
        verification traffic itself takes fresh faults."""
        for _ in range(8):
            try:
                report = self.supervisor.heal()
            except SupervisorGaveUp as exc:
                raise ChaosViolation(f"heal did not converge: {exc}") from exc
            if report.acted:
                self.heals += 1
            try:
                self._resolve_indeterminate()
                self.check_invariants()
                return
            except ChaosViolation:
                raise
            except ReproError:
                continue  # a new crash mid-verification; heal again
        self._fail("healing/verification kept crashing and never converged")

    def _resolve_indeterminate(self) -> None:
        # Consume only after classification, so a crash mid-resolution
        # (handled by the caller's retry loop) loses nothing.
        while self._indeterminate:
            effects = self._indeterminate[0]
            post_hits = 0
            pre_hits = 0
            for (table, key), (pre, post) in effects.writes.items():
                actual = self._read_actual(table, key)
                if actual == post:
                    post_hits += 1
                if actual == pre:
                    pre_hits += 1
            total = len(effects.writes)
            if post_hits == total:
                self.history.apply(effects)
                self.history.resolved_committed += 1
            elif pre_hits == total:
                self.history.resolved_aborted += 1
            else:
                self._fail(
                    f"txn {effects.txn_no} is partially visible after heal: "
                    f"{post_hits}/{total} post-images, {pre_hits}/{total} "
                    f"pre-images ({effects.writes!r})"
                )
            self._indeterminate.pop(0)

    def _read_actual(self, table: str, key: object) -> Optional[object]:
        return self.kernel.tc.read_other(
            table, key, flavor=ReadFlavor.READ_COMMITTED
        )

    def check_invariants(self) -> None:
        """Model equality per table, plus structural validation per DC."""
        self.checks += 1
        for table in self.TABLES:
            expected = self.history.table_items(table)
            actual = dict(
                self.kernel.tc.scan_other(
                    table, flavor=ReadFlavor.READ_COMMITTED
                )
            )
            if actual != expected:
                missing = sorted(set(expected) - set(actual))
                extra = sorted(set(actual) - set(expected))
                wrong = sorted(
                    key
                    for key in set(actual) & set(expected)
                    if actual[key] != expected[key]
                )
                self._fail(
                    f"table {table!r} diverged from the committed model: "
                    f"missing={missing} extra={extra} wrong={wrong}"
                )
        for dc in self.kernel.dcs.values():
            for name in dc.table_names():
                # Remote DC handles are catalog-only: the structure lives
                # in the server process and validates itself on recovery.
                structure = getattr(dc.table(name), "structure", None)
                if hasattr(structure, "validate"):
                    try:
                        structure.validate()
                    except ReproError as exc:
                        self._fail(f"structure {name!r} on {dc.name}: {exc}")

    def _fail(self, message: str) -> None:
        trace_note = ""
        path = self._dump_trace()
        if path is not None:
            trace_note = f"\ntrace dumped to: {path}"
        raise ChaosViolation(
            f"{message}\nreproduce with: {self.repro_command()}"
            f"\nrecipe: {self._recipe()}{trace_note}"
        )

    def _dump_trace(self) -> Optional[str]:
        """Export the failing run's spans for post-mortem (Perfetto)."""
        if self.tracer is None or not getattr(self.tracer, "enabled", False):
            return None
        from pathlib import Path

        from repro.obs.export import write_chrome_trace

        target = (
            Path(__file__).resolve().parents[3]
            / "benchmarks"
            / "results"
            / f"CHAOS_TRACE_seed{self.seed}.json"
        )
        try:
            return str(write_chrome_trace(target, self.tracer))
        except OSError:  # pragma: no cover - read-only checkout etc.
            return None
