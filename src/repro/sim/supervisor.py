"""Self-healing supervision for unbundled deployments.

The paper's recovery story (Sections 5.2-5.3) is mechanism: each component
knows how to restart itself and re-establish its contracts.  What it leaves
implicit is *policy* — something must notice a crash, decide a restart
order, and re-drive the work the outage interrupted.  In a cloud setting
that role belongs to the control plane; here it is the :class:`Supervisor`.

The supervisor watches components through their crash listeners (and, for
belt and braces, by polling ``crashed`` flags at heal time — a crash
callback can be lost if the crash happens while the callback list is being
torn down).  :meth:`heal` then repairs the deployment in dependency order:

1. lift healed network partitions at the fault injector, so recovery
   traffic can flow;
2. if any TC crashed, recover crashed DCs *quietly* (``notify_tcs=False``)
   and then restart the TCs — TC restart performs its own DC reset and
   redo, so a DC-prompted redo against a half-restarted TC would be wasted
   or wrong;
3. otherwise recover each crashed DC with ``notify_tcs=True`` — the normal
   Section 5.2.1 path where the TC resends its redo stream;
4. ask every healthy TC to re-drive interrupted work (zombie rollbacks and
   post-commit cleanups).

Recovery itself passes through fault hook points (``dc.restart``,
``tc.log_force``, ``buffer.flush``...), so a heal round can *cause* new
crashes.  :meth:`heal` therefore loops until a round completes with
everything up, bounded by ``max_rounds``; exceeding the bound raises
:class:`SupervisorGaveUp` carrying the injector's reproduction recipe.

The same policy heals the process deployment mode unchanged: a
:class:`~repro.net.process.RemoteDc` exposes the identical ``crashed`` /
``on_crash`` / ``recover()`` surface, except that a "crash" is a real
``SIGKILL``-ed OS process and ``recover()`` spawns a fresh server that
replays its journal before the §5.2.1 redo prompt runs.  The supervisor
cannot tell the difference — which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import CrashedError, ReproError, ResendExhaustedError
from repro.sim.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.dc.data_component import DataComponent
    from repro.sim.faults import FaultInjector
    from repro.tc.transactional_component import TransactionalComponent


class SupervisorGaveUp(ReproError):
    """Healing did not converge within the supervisor's round budget."""

    def __init__(self, rounds: int, detail: str) -> None:
        super().__init__(f"supervisor gave up after {rounds} heal rounds: {detail}")
        self.rounds = rounds


@dataclass
class CrashNotice:
    """One observed crash: which component, of what kind, and whether a
    subsequent :meth:`Supervisor.heal` round repaired it."""

    component: str
    kind: str
    healed: bool = False


@dataclass
class HealReport:
    """What one :meth:`Supervisor.heal` call did."""

    rounds: int = 0
    dc_restarts: int = 0
    tc_restarts: int = 0
    partitions_lifted: int = 0
    zombies_cleared: int = 0
    notices: list[CrashNotice] = field(default_factory=list)

    @property
    def acted(self) -> bool:
        return bool(
            self.dc_restarts
            or self.tc_restarts
            or self.partitions_lifted
            or self.zombies_cleared
        )


class Supervisor:
    """Watches TCs and DCs; restarts what crashes, re-drives what stalled."""

    def __init__(
        self,
        injector: Optional["FaultInjector"] = None,
        metrics: Optional[Metrics] = None,
        max_rounds: int = 10,
    ) -> None:
        self.injector = injector
        self.metrics = metrics or Metrics()
        self.max_rounds = max_rounds
        self._dcs: dict[str, "DataComponent"] = {}
        self._tcs: dict[str, "TransactionalComponent"] = {}
        #: DCs recovered but whose TC redo prompt has not completed yet —
        #: retried every round until it lands (the prompt is idempotent).
        self._pending_prompts: set[str] = set()
        #: Crash notices in arrival order (also the UI/audit trail).
        self.notices: list[CrashNotice] = []

    # -- wiring ------------------------------------------------------------

    def watch_dc(self, dc: "DataComponent") -> None:
        self._dcs[dc.name] = dc
        dc.on_crash.append(self._on_crash)

    def watch_tc(self, tc: "TransactionalComponent") -> None:
        self._tcs[tc.name] = tc
        tc.on_crash.append(self._on_crash)

    def watch_kernel(self, kernel) -> None:
        """Watch an :class:`~repro.kernel.unbundled.UnbundledKernel`."""
        self.watch_tc(kernel.tc)
        for dc in kernel.dcs.values():
            self.watch_dc(dc)

    def watch_deployment(self, deployment) -> None:
        """Watch a :class:`~repro.cloud.deployment.CloudDeployment`."""
        for tc in deployment.tcs.values():
            self.watch_tc(tc)
        for dc in deployment.dcs.values():
            self.watch_dc(dc)

    def _on_crash(self, name: str, kind: str) -> None:
        self.notices.append(CrashNotice(name, kind))
        self.metrics.incr(f"supervisor.crash_notices.{kind}")

    # -- state -------------------------------------------------------------

    def crashed_components(self) -> list[CrashNotice]:
        """Poll the watched components for down state (listener-independent)."""
        down = [
            CrashNotice(dc.name, "dc") for dc in self._dcs.values() if dc.crashed
        ]
        down.extend(
            CrashNotice(tc.name, "tc") for tc in self._tcs.values() if tc.crashed
        )
        return down

    def all_healthy(self) -> bool:
        if self.crashed_components():
            return False
        if self._pending_prompts:
            return False
        if self.injector is not None and any(
            self.injector.partitioned(name) for name in self._dcs
        ):
            return False
        return all(tc.pending_zombies() == 0 for tc in self._tcs.values())

    # -- healing -----------------------------------------------------------

    def heal(self) -> HealReport:
        """Repair the deployment; loops until a round converges.

        Idempotent and safe to call when nothing is wrong (returns a
        no-op report).  Raises :class:`SupervisorGaveUp` when
        ``max_rounds`` rounds still leave something down — the message
        carries the injector's ``(seed, schedule)`` recipe when one is
        attached.
        """
        report = HealReport()
        for _ in range(self.max_rounds):
            report.rounds += 1
            # No early exit on a "no-progress" round: repair traffic moves
            # hit counters, so a fault rule (e.g. a partition) can trigger
            # *during* a round and only be liftable in the next one.
            self._heal_round(report)
            if self.all_healthy():
                for notice in self.notices:
                    notice.healed = True
                report.notices = list(self.notices)
                self.metrics.incr("supervisor.heals")
                return report
        detail = ", ".join(
            f"{notice.kind}:{notice.component}" for notice in self.crashed_components()
        ) or "pending zombies or partitions remain"
        if self.injector is not None:
            detail += f" | {self.injector.describe()}"
        raise SupervisorGaveUp(report.rounds, detail)

    def _heal_round(self, report: HealReport) -> None:
        """One repair pass."""
        if self.injector is not None:
            lifted = self.injector.heal()
            if lifted:
                report.partitions_lifted += lifted
                self.metrics.incr("supervisor.partitions_lifted", lifted)
        crashed_tcs = [tc for tc in self._tcs.values() if tc.crashed]
        crashed_dcs = [dc for dc in self._dcs.values() if dc.crashed]
        for dc in crashed_dcs:
            # Recover quietly; the TC redo prompt is driven separately
            # below so a prompt that fails (new fault, partition triggered
            # mid-heal) is retried next round instead of silently lost.
            try:
                dc.recover(notify_tcs=False)
            except (CrashedError, ResendExhaustedError):
                # A fault during recovery took the DC down again; the next
                # round retries.
                self.metrics.incr("supervisor.restart_interrupted")
                continue
            report.dc_restarts += 1
            self.metrics.incr("supervisor.dc_restarts")
            # A duplicate prompt after a TC restart (which runs its own
            # reset + redo) is absorbed by abLSNs, so always queue it.
            self._pending_prompts.add(dc.name)
        for tc in crashed_tcs:
            try:
                tc.restart()
                report.tc_restarts += 1
                self.metrics.incr("supervisor.tc_restarts")
            except (CrashedError, ResendExhaustedError):
                self.metrics.incr("supervisor.restart_interrupted")
        for name in sorted(self._pending_prompts):
            dc = self._dcs.get(name)
            if dc is None or dc.crashed:
                continue
            if any(tc.crashed for tc in self._tcs.values()):
                break  # prompt once the TCs are back up
            try:
                dc.prompt_redo()
            except (CrashedError, ResendExhaustedError):
                self.metrics.incr("supervisor.restart_interrupted")
                continue
            self._pending_prompts.discard(name)
        for tc in self._tcs.values():
            if tc.crashed:
                continue
            pending = tc.pending_zombies()
            if not pending:
                continue
            try:
                tc.retry_pending()
            except (CrashedError, ResendExhaustedError):
                self.metrics.incr("supervisor.restart_interrupted")
                continue
            cleared = pending - tc.pending_zombies()
            if cleared:
                report.zombies_cleared += cleared
                self.metrics.incr("supervisor.zombies_cleared", cleared)
