"""repro — "Unbundling Transaction Services in the Cloud" (CIDR 2009).

A faithful Python implementation of Lomet, Fekete, Weikum & Zwilling's
unbundled database kernel: a logical Transactional Component (TC) and a
physical Data Component (DC) interacting through idempotent, causality-
governed messages — abstract page LSNs, reordered system-transaction
recovery, partial-failure resets, and multi-TC cloud sharing without
two-phase commit.

Quick start::

    from repro import UnbundledKernel

    kernel = UnbundledKernel()
    kernel.create_table("users")
    with kernel.begin() as txn:
        txn.insert("users", 1, {"name": "ada"})
    with kernel.begin() as txn:
        print(txn.read("users", 1))
"""

from repro.common.config import (
    ChannelConfig,
    DcConfig,
    KernelConfig,
    PageSyncStrategy,
    RangeLockProtocol,
    TcConfig,
)
from repro.common.errors import (
    CrashedError,
    DeadlockError,
    DuplicateKeyError,
    LockTimeoutError,
    NoSuchRecordError,
    ReproError,
    TransactionAborted,
)
from repro.common.lsn import AbstractLsn, Lsn, NULL_LSN
from repro.common.ops import ReadFlavor
from repro.dc.data_component import DataComponent
from repro.kernel.unbundled import UnbundledKernel
from repro.net.channel import MessageChannel
from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import Transaction, TransactionalComponent

__version__ = "1.0.0"

__all__ = [
    "AbstractLsn",
    "ChannelConfig",
    "CrashedError",
    "DataComponent",
    "DcConfig",
    "DeadlockError",
    "DuplicateKeyError",
    "KernelConfig",
    "LockTimeoutError",
    "Lsn",
    "MessageChannel",
    "Metrics",
    "NULL_LSN",
    "NULL_TRACER",
    "NoSuchRecordError",
    "NullTracer",
    "PageSyncStrategy",
    "RangeLockProtocol",
    "ReadFlavor",
    "ReproError",
    "ResetMode",
    "TcConfig",
    "Tracer",
    "Transaction",
    "TransactionAborted",
    "TransactionalComponent",
    "UnbundledKernel",
]
