"""Pages: the physical unit the DC manages and the TC never sees.

Leaf pages hold :class:`~repro.common.records.VersionedRecord` slots in key
order.  Inner pages hold separator keys routing to child pages.  Every page
carries:

- ``dlsn`` — the DC-log LSN of the last structure modification reflected in
  the page (Section 5.2.2), making system-transaction redo idempotent;
- one :class:`~repro.common.lsn.AbstractLsn` *per TC* with data on the page
  (Section 6.1.1), making TC logical redo idempotent under out-of-order
  execution;
- a record→TC association (``VersionedRecord.owner_tc``, the paper's
  two-byte chain offsets) enabling *record-level reset* after a TC crash
  (Section 6.1.2) so co-resident TCs keep their cached work.

The byte-budget space model (``used_bytes`` vs the configured page size)
is what triggers splits and consolidations in the B-tree.
"""

from __future__ import annotations

import bisect
import enum
import threading
from typing import Callable, Iterable, Iterator, Optional

from repro.common.lsn import AbstractLsn, Lsn, NULL_LSN
from repro.common.records import Key, VersionedRecord, sizeof_key

#: Fixed header bytes per page in the space model.
PAGE_HEADER_BYTES = 64

#: Bytes per child entry on an inner page (separator handled separately).
INNER_ENTRY_BYTES = 8


class PageKind(enum.Enum):
    LEAF = "leaf"
    INNER = "inner"


class Page:
    """State common to leaf and inner pages."""

    kind: PageKind

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        #: DC-log LSN of the last SMO applied to this page.
        self.dlsn: Lsn = NULL_LSN
        #: Per-TC abstract LSNs (Section 6.1.1).
        self.ablsns: dict[int, AbstractLsn] = {}
        #: Classic single page LSN — used only by the monolithic baseline
        #: engine (the unbundled DC never stores one; that is the point).
        self.page_lsn: Lsn = NULL_LSN
        #: Short-duration physical latch (Section 4.1.2 item 1).
        self.latch = threading.RLock()
        self.dirty = False

    # -- abLSN management -------------------------------------------------

    def ablsn_for(self, tc_id: int) -> AbstractLsn:
        """The abLSN tracking this TC's operations, created on demand."""
        ablsn = self.ablsns.get(tc_id)
        if ablsn is None:
            ablsn = AbstractLsn()
            self.ablsns[tc_id] = ablsn
        return ablsn

    def apply_low_water(self, tc_id: int, lwm: Lsn) -> None:
        ablsn = self.ablsns.get(tc_id)
        if ablsn is not None:
            ablsn.advance_low_water(lwm)

    def max_lsn(self, tc_id: int) -> Lsn:
        ablsn = self.ablsns.get(tc_id)
        return ablsn.max_lsn() if ablsn is not None else NULL_LSN

    def reflects_loss(self, tc_id: int, stable_lsn: Lsn) -> bool:
        """Does this page include effects of the TC's *lost* operations?

        After a TC crash, operations with LSN > ``stable_lsn`` are gone
        forever; a cached page reflecting any of them must be reset
        (Section 5.3.2).
        """
        ablsn = self.ablsns.get(tc_id)
        if ablsn is None:
            return False
        return bool(ablsn.lsns_above(stable_lsn))

    def ablsn_overhead_bytes(self) -> int:
        """Space the abLSNs would occupy if written with the page."""
        return sum(ablsn.encoded_size() for ablsn in self.ablsns.values())

    def pending_lsn_count(self) -> int:
        return sum(ablsn.pending_count() for ablsn in self.ablsns.values())

    # -- space model (subclasses refine) ----------------------------------

    def used_bytes(self) -> int:
        raise NotImplementedError

    def snapshot(self) -> "PageImage":
        raise NotImplementedError


class LeafPage(Page):
    """A slotted leaf page holding records in key order."""

    kind = PageKind.LEAF

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self._keys: list[Key] = []
        self._records: dict[Key, VersionedRecord] = {}
        self._used = PAGE_HEADER_BYTES

    # -- record access -----------------------------------------------------

    def get(self, key: Key) -> Optional[VersionedRecord]:
        return self._records.get(key)

    def record_count(self) -> int:
        return len(self._keys)

    def keys(self) -> list[Key]:
        return list(self._keys)

    def records_in_order(self) -> Iterator[VersionedRecord]:
        for key in self._keys:
            yield self._records[key]

    def range(self, low: Optional[Key], high: Optional[Key]) -> Iterator[VersionedRecord]:
        """Records with low <= key <= high, in key order (open bounds=None)."""
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        for key in self._keys[start:]:
            if high is not None and key > high:
                break
            yield self._records[key]

    def keys_after(self, after: Optional[Key]) -> Iterator[Key]:
        """Keys strictly greater than ``after`` (all keys when None)."""
        start = 0 if after is None else bisect.bisect_right(self._keys, after)
        yield from self._keys[start:]

    def keys_from(self, low: Optional[Key]) -> Iterator[Key]:
        """Keys at or above ``low`` (all keys when None)."""
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        yield from self._keys[start:]

    def min_key(self) -> Optional[Key]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Key]:
        return self._keys[-1] if self._keys else None

    # -- record mutation ---------------------------------------------------

    def put(self, record: VersionedRecord, delta: Optional[int] = None) -> int:
        """Insert or replace the record slot; returns the byte-size delta.

        ``delta`` lets a caller that already sized the records (for a
        :meth:`fits` check) avoid re-walking both values; it must equal
        the size difference between ``record`` and the current slot."""
        old = self._records.get(record.key)
        if delta is None:
            delta = record.encoded_size() - (old.encoded_size() if old else 0)
        if old is None:
            bisect.insort(self._keys, record.key)
        self._records[record.key] = record
        self._used += delta
        self.dirty = True
        return delta

    def remove(self, key: Key) -> Optional[VersionedRecord]:
        """Remove the slot entirely (physical removal); returns it."""
        record = self._records.pop(key, None)
        if record is None:
            return None
        index = bisect.bisect_left(self._keys, key)
        del self._keys[index]
        self._used -= record.encoded_size()
        self.dirty = True
        return record

    def resize_slot(self, key: Key, delta: int) -> None:
        """Adjust used bytes after in-place mutation of a record object."""
        self._used += delta
        self.dirty = True

    # -- space model ---------------------------------------------------------

    def used_bytes(self) -> int:
        return self._used

    def fits(self, extra_bytes: int, page_size: int) -> bool:
        return self._used + extra_bytes <= page_size

    def fill_fraction(self, page_size: int) -> float:
        payload = self._used - PAGE_HEADER_BYTES
        return payload / max(page_size - PAGE_HEADER_BYTES, 1)

    # -- structure modification helpers ------------------------------------

    def choose_split_key(self) -> Key:
        """Key at which to split: first key of the upper half by bytes."""
        if len(self._keys) < 2:
            raise ValueError("cannot split a page with fewer than 2 records")
        target = (self._used - PAGE_HEADER_BYTES) / 2
        acc = 0
        for index, key in enumerate(self._keys):
            acc += self._records[key].encoded_size()
            if acc >= target and index + 1 < len(self._keys):
                return self._keys[index + 1]
        return self._keys[-1]

    def extract_from(self, split_key: Key) -> list[VersionedRecord]:
        """Remove and return all records with key >= split_key."""
        index = bisect.bisect_left(self._keys, split_key)
        moving_keys = self._keys[index:]
        moved = []
        for key in moving_keys:
            record = self._records.pop(key)
            self._used -= record.encoded_size()
            moved.append(record)
        del self._keys[index:]
        self.dirty = True
        return moved

    def absorb(self, records: Iterable[VersionedRecord]) -> None:
        for record in records:
            self.put(record)

    # -- record-level reset (Section 6.1.2) ---------------------------------

    def reset_tc_records(self, tc_id: int, disk_image: Optional["PageImage"]) -> int:
        """Replace this TC's records with the stable (disk) versions.

        Records owned by other TCs are untouched, so their TCs neither lose
        cached work nor replay logs.  Returns the number of slots changed.
        ``disk_image`` is ``None`` when the page has never been flushed —
        then the TC's records simply disappear (they were born after the
        last flush and are covered by the failed TC's redo).
        """
        changed = 0
        for key in [k for k in self._keys if self._records[k].owner_tc == tc_id]:
            self.remove(key)
            changed += 1
        if disk_image is not None:
            for record in disk_image.records:
                if record.owner_tc == tc_id:
                    self.put(record.clone())
                    changed += 1
            disk_ablsn = disk_image.ablsns.get(tc_id)
            self.ablsns[tc_id] = (
                disk_ablsn.snapshot() if disk_ablsn is not None else AbstractLsn()
            )
        else:
            self.ablsns[tc_id] = AbstractLsn()
        self.dirty = True
        return changed

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> "PageImage":
        return PageImage(
            page_id=self.page_id,
            kind=self.kind,
            dlsn=self.dlsn,
            ablsns={tc: ab.snapshot() for tc, ab in self.ablsns.items()},
            records=tuple(self._records[k].clone() for k in self._keys),
            page_lsn=self.page_lsn,
        )

    def __repr__(self) -> str:
        return f"LeafPage(id={self.page_id}, n={len(self._keys)}, dlsn={self.dlsn})"


class InnerPage(Page):
    """An index page: separators s1..sn route keys among children c0..cn.

    Child ``c_i`` covers keys ``s_i <= key < s_{i+1}`` (with open ends).
    """

    kind = PageKind.INNER

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.separators: list[Key] = []
        self.children: list[int] = []

    def child_for(self, key: Key) -> int:
        index = bisect.bisect_right(self.separators, key)
        return self.children[index]

    def child_index(self, child_id: int) -> int:
        return self.children.index(child_id)

    def insert_child(self, separator: Key, child_id: int) -> None:
        """Register a new right-sibling created by a split."""
        index = bisect.bisect_left(self.separators, separator)
        self.separators.insert(index, separator)
        self.children.insert(index + 1, child_id)
        self.dirty = True

    def remove_child(self, child_id: int) -> None:
        """Drop a consolidated-away child and its separator."""
        index = self.children.index(child_id)
        if index == 0:
            raise ValueError("cannot remove the leftmost child")
        del self.children[index]
        del self.separators[index - 1]
        self.dirty = True

    def used_bytes(self) -> int:
        return (
            PAGE_HEADER_BYTES
            + sum(sizeof_key(s) for s in self.separators)
            + INNER_ENTRY_BYTES * len(self.children)
        )

    def fits(self, extra_bytes: int, page_size: int) -> bool:
        return self.used_bytes() + extra_bytes <= page_size

    def snapshot(self) -> "PageImage":
        return PageImage(
            page_id=self.page_id,
            kind=self.kind,
            dlsn=self.dlsn,
            ablsns={tc: ab.snapshot() for tc, ab in self.ablsns.items()},
            separators=tuple(self.separators),
            children=tuple(self.children),
            page_lsn=self.page_lsn,
        )

    def __repr__(self) -> str:
        return (
            f"InnerPage(id={self.page_id}, children={len(self.children)}, "
            f"dlsn={self.dlsn})"
        )


class PageImage:
    """An immutable point-in-time copy of a page.

    This is what stable storage holds, what physical DC-log records carry
    (Section 5.2.2: the new page of a split, the consolidated page of a
    delete), and what record-level reset reads back.
    """

    __slots__ = (
        "page_id",
        "kind",
        "dlsn",
        "ablsns",
        "records",
        "separators",
        "children",
        "page_lsn",
    )

    def __init__(
        self,
        page_id: int,
        kind: PageKind,
        dlsn: Lsn,
        ablsns: dict[int, AbstractLsn],
        records: tuple[VersionedRecord, ...] = (),
        separators: tuple[Key, ...] = (),
        children: tuple[int, ...] = (),
        page_lsn: Lsn = NULL_LSN,
    ) -> None:
        self.page_id = page_id
        self.kind = kind
        self.dlsn = dlsn
        self.ablsns = ablsns
        self.records = records
        self.separators = separators
        self.children = children
        self.page_lsn = page_lsn

    def materialize(self) -> Page:
        """Rebuild a live page object from this image."""
        page: Page
        if self.kind is PageKind.LEAF:
            leaf = LeafPage(self.page_id)
            for record in self.records:
                leaf.put(record.clone())
            leaf.dirty = False
            page = leaf
        else:
            inner = InnerPage(self.page_id)
            inner.separators = list(self.separators)
            inner.children = list(self.children)
            inner.dirty = False
            page = inner
        page.dlsn = self.dlsn
        page.ablsns = {tc: ab.snapshot() for tc, ab in self.ablsns.items()}
        page.page_lsn = self.page_lsn
        return page

    def encoded_size(self) -> int:
        size = PAGE_HEADER_BYTES
        size += sum(ab.encoded_size() for ab in self.ablsns.values())
        size += sum(record.encoded_size() for record in self.records)
        size += sum(sizeof_key(s) for s in self.separators)
        size += INNER_ENTRY_BYTES * len(self.children)
        return size

    def __repr__(self) -> str:
        return f"PageImage(id={self.page_id}, kind={self.kind.value}, dlsn={self.dlsn})"
