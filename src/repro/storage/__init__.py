"""Physical storage: pages, stable storage, buffer pool, access methods.

Everything in this package is private to the Data Component — the paper's
central discipline is that no page knowledge ever crosses the TC/DC
boundary (Section 1.2).
"""

from repro.storage.disk import StableStorage
from repro.storage.page import InnerPage, LeafPage, Page, PageKind

__all__ = ["InnerPage", "LeafPage", "Page", "PageKind", "StableStorage"]
