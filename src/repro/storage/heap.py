"""A fixed-page hashed heap: the paper's "simple storage structure".

Section 4.1.2: "For simple storage structures, each record lies on a fixed
page, and DC can maintain the indices easily."  Records hash to one of a
fixed set of pages, so no structure modifications (and hence no system
transactions) ever occur after creation — a useful contrast to the B-tree
for the E-SMO experiment, and a demonstration that heterogeneous access
methods coexist behind the same DC interface.

Range scans are supported but cost a full sweep (hashing destroys order);
applications that need ordered access use the B-tree.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.common.config import DcConfig
from repro.common.errors import PageOverflowError
from repro.common.records import Key, VersionedRecord
from repro.dc.dclog import DcLog
from repro.dc.system_txn import StabilityProvider, SystemTransaction
from repro.sim.metrics import Metrics
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage


class HashedHeap:
    """A table stored on ``bucket_count`` fixed pages, addressed by hash."""

    def __init__(
        self,
        name: str,
        storage: StableStorage,
        buffer: BufferPool,
        dclog: DcLog,
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        ensure_stable: Optional[StabilityProvider] = None,
        bucket_count: int = 16,
        bucket_ids: Optional[list[int]] = None,
    ) -> None:
        self.name = name
        self._storage = storage
        self._buffer = buffer
        self._dclog = dclog
        self.config = config or DcConfig()
        self.metrics = metrics or Metrics()
        self._ensure_stable = ensure_stable
        self.latch = threading.RLock()
        if bucket_ids is None:
            bucket_ids = self._create_buckets(bucket_count)
        self.bucket_ids = bucket_ids

    def _create_buckets(self, bucket_count: int) -> list[int]:
        """Allocate and durably log the fixed bucket pages (one sys txn)."""
        txn = SystemTransaction("heap_create", self._dclog, self.metrics, None)
        ids: list[int] = []
        for _ in range(bucket_count):
            page = LeafPage(self._storage.allocate_page_id())
            txn.log_page_image(page)
            self._buffer.register(page)
            ids.append(page.page_id)
        txn.commit()
        return ids

    # -- routing --------------------------------------------------------------

    def _bucket_for(self, key: Key) -> int:
        return self.bucket_ids[hash(key) % len(self.bucket_ids)]

    def find_leaf(self, key: Key) -> LeafPage:
        with self.latch:
            page = self._buffer.fetch(self._bucket_for(key))
            assert isinstance(page, LeafPage)
            return page

    def ensure_room(self, key: Key, extra_bytes: int) -> LeafPage:
        """Fixed pages cannot split; overflow is a hard error by design."""
        with self.latch:
            leaf = self.find_leaf(key)
            if not leaf.fits(extra_bytes, self.config.page_size):
                raise PageOverflowError(
                    f"heap {self.name!r}: bucket page {leaf.page_id} is full "
                    f"(fixed-page structures do not split)"
                )
            return leaf

    def maybe_consolidate(self, key_hint: Key) -> bool:
        return False  # fixed pages never merge

    # -- reads ------------------------------------------------------------------

    def get_record(self, key: Key) -> Optional[VersionedRecord]:
        with self.latch:
            leaf = self.find_leaf(key)
            with leaf.latch:
                self.metrics.incr("heap.latches")
                return leaf.get(key)

    def iter_range(
        self, low: Optional[Key], high: Optional[Key], limit: Optional[int] = None
    ) -> Iterator[VersionedRecord]:
        """Full sweep, merged into key order (hashing is unordered)."""
        with self.latch:
            matches: list[VersionedRecord] = []
            for bucket_id in self.bucket_ids:
                page = self._buffer.fetch(bucket_id)
                assert isinstance(page, LeafPage)
                matches.extend(page.range(low, high))
            matches.sort(key=lambda record: record.key)
            if limit is not None:
                matches = matches[:limit]
            yield from matches

    def next_keys(
        self,
        after: Optional[Key],
        count: int,
        until: Optional[Key] = None,
        inclusive: bool = False,
    ) -> list[Key]:
        keys: list[Key] = []
        for record in self.iter_range(None, until):
            if after is not None:
                if inclusive and record.key < after:
                    continue
                if not inclusive and record.key <= after:
                    continue
            if not record.exists_for(read_committed=False):
                continue  # invisible slot: not a probe anchor
            keys.append(record.key)
            if len(keys) >= count:
                break
        return keys

    # -- introspection -------------------------------------------------------------

    def leaf_ids(self) -> list[int]:
        return list(self.bucket_ids)

    def record_count(self) -> int:
        with self.latch:
            total = 0
            for bucket_id in self.bucket_ids:
                page = self._buffer.fetch(bucket_id)
                assert isinstance(page, LeafPage)
                total += page.record_count()
            return total

    def validate(self) -> None:
        with self.latch:
            for bucket_id in self.bucket_ids:
                page = self._buffer.fetch(bucket_id)
                assert isinstance(page, LeafPage)
