"""The DC's cache manager, with causality-gated flushing (Sections 4.2, 5.1, 5.3).

Partial failures make the cache manager the interesting piece of an
unbundled kernel:

- **Causality / generalized WAL**: a page may be made stable only when
  every operation it reflects is on the *TC's* stable log — i.e. for every
  TC with an abLSN on the page, ``abLSN.max_lsn() <= EOSL(tc)``.  The TC
  communicates EOSL via ``end_of_stable_log``.
- **Page sync** (Section 5.1.2): the abLSN must reach stable storage
  atomically with the page.  The three strategies — delay until the
  low-water covers everything, write the full abLSN, or prune first —
  are selectable per :class:`~repro.common.config.PageSyncStrategy`.
- **TC-crash reset** (Sections 5.3.2, 6.1.2): when a TC loses its log tail,
  the cache must shed exactly the state reflecting lost operations, in one
  of three modes of increasing surgical precision.
"""

from __future__ import annotations

import contextlib
import enum
import threading
from collections import OrderedDict
from typing import Callable, Iterator, Optional

from repro.common.config import DcConfig, PageSyncStrategy
from repro.common.errors import WriteAheadViolation
from repro.common.lsn import Lsn, NULL_LSN
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage, Page, PageImage, PageKind


class ResetMode(enum.Enum):
    """How the DC resets cached state after a TC crash (Section 5.3.2).

    - ``FULL_DROP`` — "turn a partial failure into a complete failure":
      drop every cached page.  Draconian but trivially correct.
    - ``DROP_AFFECTED`` — drop only pages whose abLSNs include lost
      operations (LSN > LSNst).
    - ``RECORD_RESET`` — on multi-TC pages, replace only the failed TC's
      records from the disk version (Section 6.1.2); drop single-TC
      affected pages.
    """

    FULL_DROP = "full_drop"
    DROP_AFFECTED = "drop_affected"
    RECORD_RESET = "record_reset"


class BufferPool:
    """LRU page cache for one DC.

    All calls happen under the owning structure's latch (the DC coarsens
    physical latching per tree; see DESIGN.md), so the pool itself does not
    lock.  Crash semantics: :meth:`crash` throws away everything volatile.
    """

    def __init__(
        self,
        storage: StableStorage,
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        loader: Optional[Callable[[int], Optional["PageImage"]]] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self._storage = storage
        self.config = config or DcConfig()
        self.metrics = metrics or Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: How misses are satisfied.  The DC installs the stable-page-state
        #: reconstructor (disk + DC-log replay) so pages living only as
        #: DC-log images are still fetchable; plain disk reads otherwise.
        self._loader = loader or storage.read_page
        self._pages: OrderedDict[int, Page] = OrderedDict()
        #: Eviction runs only when no operation is in flight, so page
        #: references held by an executing operation can never be evicted
        #: out from under it (the unbundled analogue of page pinning).
        self._op_cv = threading.Condition()
        self._active_ops = 0
        self._evicting = False
        #: End of stable TC log, per TC (causality bound for flushes).
        self._eosl: dict[int, Lsn] = {}
        #: Last gap-free LSN, per TC (prunes {LSNin} sets).
        self._lwm: dict[int, Lsn] = {}

    # -- contract state from the TC -------------------------------------------

    def note_eosl(self, tc_id: int, eosl: Lsn) -> None:
        if eosl > self._eosl.get(tc_id, NULL_LSN):
            self._eosl[tc_id] = eosl

    def note_lwm(self, tc_id: int, lwm: Lsn) -> None:
        if lwm <= self._lwm.get(tc_id, NULL_LSN):
            return
        self._lwm[tc_id] = lwm
        # snapshot the page list: concurrent operations on other tables
        # may admit pages while we walk (pruning them is not required for
        # correctness — the next LWM catches them)
        for page in list(self._pages.values()):
            page.apply_low_water(tc_id, lwm)

    def eosl_for(self, tc_id: int) -> Lsn:
        return self._eosl.get(tc_id, NULL_LSN)

    # -- cache access ------------------------------------------------------------

    def fetch(self, page_id: int) -> Optional[Page]:
        """Return the live page, reading it from stable storage on a miss."""
        page = self._pages.get(page_id)
        if page is not None:
            self._pages.move_to_end(page_id)
            self.metrics.incr("buffer.hits")
            return page
        image = self._loader(page_id)
        if image is None:
            return None
        self.metrics.incr("buffer.misses")
        page = image.materialize()
        self._admit(page)
        return page

    def register(self, page: Page) -> None:
        """Admit a newly created page (from a split or a fresh table)."""
        page.dirty = True
        self._admit(page)

    def discard(self, page_id: int) -> None:
        """Remove a page from the cache without flushing (reset/free)."""
        self._pages.pop(page_id, None)

    def cached_ids(self) -> list[int]:
        return list(self._pages)

    def cached_page(self, page_id: int) -> Optional[Page]:
        return self._pages.get(page_id)

    @contextlib.contextmanager
    def operation(self) -> Iterator[None]:
        """Bracket a DC operation; evictions are deferred to idle moments.

        Operations are "readers", eviction is the exclusive "writer": a new
        operation waits out an in-progress eviction, and eviction starts
        only when the last active operation finishes.
        """
        with self._op_cv:
            while self._evicting:
                self._op_cv.wait()
            self._active_ops += 1
        # Under the schedule explorer the bracket is a critical section:
        # parking a task here while it participates in the reader/eviction
        # protocol would wedge the cooperative run token.
        _sched.enter_critical()
        try:
            yield
        finally:
            _sched.exit_critical()
            run_eviction = False
            with self._op_cv:
                self._active_ops -= 1
                if (
                    self._active_ops == 0
                    and len(self._pages) > self.config.buffer_capacity
                ):
                    self._evicting = True
                    run_eviction = True
            if run_eviction:
                try:
                    self._maybe_evict()
                finally:
                    with self._op_cv:
                        self._evicting = False
                        self._op_cv.notify_all()

    def _admit(self, page: Page) -> None:
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)
        if self._active_ops == 0:
            self._maybe_evict()

    def _maybe_evict(self) -> None:
        while len(self._pages) > self.config.buffer_capacity:
            victim_id = self._pick_victim()
            if victim_id is None:
                self.metrics.incr("buffer.over_capacity")
                return
            victim = self._pages[victim_id]
            if victim.dirty and not self.try_flush(victim):
                self.metrics.incr("buffer.eviction_blocked")
                return
            del self._pages[victim_id]
            self.metrics.incr("buffer.evictions")

    def _pick_victim(self) -> Optional[int]:
        """Oldest page that is clean or currently flushable."""
        for page_id, page in self._pages.items():
            if not page.dirty or self._flush_permitted(page):
                return page_id
        return None

    # -- flushing (causality + page sync) ----------------------------------------

    def _wal_satisfied(self, page: Page) -> bool:
        return all(
            page.max_lsn(tc_id) <= self._eosl.get(tc_id, NULL_LSN)
            for tc_id in page.ablsns
        )

    def _sync_ready(self, page: Page) -> bool:
        strategy = self.config.sync_strategy
        if strategy is PageSyncStrategy.FULL_ABLSN:
            return True
        pending = page.pending_lsn_count()
        if strategy is PageSyncStrategy.DELAY:
            return pending == 0
        return pending <= self.config.prune_threshold

    def _flush_permitted(self, page: Page) -> bool:
        return self._wal_satisfied(page) and self._sync_ready(page)

    def try_flush(self, page: Page) -> bool:
        """Flush if causality and the sync strategy allow; report success."""
        if not page.dirty:
            return True
        if not self._wal_satisfied(page):
            self.metrics.incr("buffer.flush_blocked_wal")
            return False
        if not self._sync_ready(page):
            self.metrics.incr("buffer.flush_delayed_sync")
            return False
        if not self.tracer.enabled:
            self._flush(page)
            return True
        with self.tracer.span("buffer.flush", component="dc", page_id=page.page_id):
            self._flush(page)
        return True

    def _flush(self, page: Page) -> None:
        if self._storage.faults is not None:
            from repro.sim.faults import FaultPoint

            self._storage.faults.hit(FaultPoint.BUFFER_FLUSH, self._storage.owner)
        image = page.snapshot()
        self.metrics.observe(
            "buffer.flushed_ablsn_bytes", page.ablsn_overhead_bytes()
        )
        self.metrics.observe("buffer.flushed_pending_lsns", page.pending_lsn_count())
        self._storage.write_page(image)
        page.dirty = False
        self.metrics.incr("buffer.flushes")

    def flush_page_strict(self, page: Page) -> None:
        """Flush or raise — used by tests asserting the WAL invariant."""
        if not self._wal_satisfied(page):
            raise WriteAheadViolation(
                f"page {page.page_id} reflects operations beyond the stable TC log"
            )
        if not self.try_flush(page):
            raise WriteAheadViolation(
                f"page {page.page_id} not flushable under "
                f"{self.config.sync_strategy.value}"
            )

    def flush_for_checkpoint(self, new_rssp: Lsn) -> bool:
        """Make stable every page containing operations below ``new_rssp``.

        Returns True when every such page was flushed (so the TC may
        advance its redo scan start point), False when some page is still
        blocked by causality or the sync strategy.
        """
        all_flushed = True
        for page in list(self._pages.values()):
            if not page.dirty:
                continue
            # A dirty page might only contain operations at/above newRSSP,
            # but flushing it anyway is always safe and keeps the check
            # simple; only failures on pages with older operations matter.
            if self.try_flush(page):
                continue
            has_older_op = any(
                ablsn.low_water > NULL_LSN
                or any(lsn < new_rssp for lsn in ablsn)
                for ablsn in page.ablsns.values()
            )
            if has_older_op:
                all_flushed = False
        return all_flushed

    def flush_all(self) -> int:
        """Best-effort flush of every dirty page; returns pages flushed."""
        flushed = 0
        for page in list(self._pages.values()):
            if page.dirty and self.try_flush(page):
                flushed += 1
        return flushed

    def dirty_count(self) -> int:
        return sum(1 for page in self._pages.values() if page.dirty)

    # -- crash handling -------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (the DC failed)."""
        self._pages.clear()
        self._eosl.clear()
        self._lwm.clear()

    def reset_after_tc_crash(
        self, tc_id: int, stable_lsn: Lsn, mode: ResetMode = ResetMode.RECORD_RESET
    ) -> dict[str, int]:
        """Shed cached state reflecting the failed TC's lost operations.

        ``stable_lsn`` is LSNst, the largest LSN on the failed TC's stable
        log; anything above it is lost forever.  Causality guarantees no
        such state is on disk, so fixing the cache suffices.  Returns
        counts for the experiments: pages examined / dropped / record-reset
        and records replaced.
        """
        stats = {"examined": 0, "dropped": 0, "record_reset": 0, "records": 0}
        if mode is ResetMode.FULL_DROP:
            stats["examined"] = len(self._pages)
            stats["dropped"] = len(self._pages)
            self._pages.clear()
            self.metrics.incr("buffer.reset_pages_dropped", stats["dropped"])
            return stats
        for page_id in list(self._pages):
            page = self._pages[page_id]
            stats["examined"] += 1
            if not page.reflects_loss(tc_id, stable_lsn):
                continue
            other_tcs = [tc for tc in page.ablsns if tc != tc_id]
            use_record_reset = (
                mode is ResetMode.RECORD_RESET
                and other_tcs
                and isinstance(page, LeafPage)
            )
            if use_record_reset:
                baseline = self._loader(page_id)
                replaced = page.reset_tc_records(tc_id, baseline)
                stats["record_reset"] += 1
                stats["records"] += replaced
                self.metrics.incr("buffer.reset_pages_record_level")
            else:
                del self._pages[page_id]
                stats["dropped"] += 1
                self.metrics.incr("buffer.reset_pages_dropped")
        return stats
