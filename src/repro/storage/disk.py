"""Stable storage with faithful crash semantics.

The paper's substrate is a disk; we substitute an in-memory store with the
two properties recovery actually depends on:

- **Atomic page writes** — a flush installs a complete
  :class:`~repro.storage.page.PageImage` or nothing.
- **Crash separation** — stable contents survive any component crash, while
  everything else (buffer pool, live pages, volatile log tails) is lost.

The store also keeps a small *stable metadata* area (table catalog, free
list, allocation high-water) written atomically by DC checkpoints, plus the
stable portion of the DC log.  Keeping them on one object models a single
disk volume owned by one DC.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.common.lsn import Lsn, NULL_LSN
from repro.obs.tracing import NULL_TRACER
from repro.sim.metrics import Metrics
from repro.storage.page import PageImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.faults import FaultInjector


class StableStorage:
    """One DC's durable volume: pages + metadata + stable DC-log."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._pages: dict[int, PageImage] = {}
        self._metadata: dict[str, object] = {}
        self._dc_log: list[object] = []
        self._next_page_id = 1
        self._lock = threading.Lock()
        self.metrics = metrics or Metrics()
        self.faults: Optional["FaultInjector"] = None
        #: Set by the owning DC; NULL_TRACER keeps standalone use silent.
        self.tracer = NULL_TRACER
        self.owner = ""

    def bind_faults(self, faults: Optional["FaultInjector"], owner: str) -> None:
        """Install the owning DC's fault injector (called by the DC)."""
        self.faults = faults
        self.owner = owner

    # -- page allocation ----------------------------------------------------

    def allocate_page_id(self) -> int:
        """Durable, monotonically increasing page-id allocation.

        Real systems recover the allocation high-water from the structure
        or an allocation map; persisting the counter directly preserves the
        only property recovery needs (no id reuse across a crash).
        """
        with self._lock:
            page_id = self._next_page_id
            self._next_page_id += 1
            return page_id

    def note_allocated(self, page_id: int) -> None:
        """Advance the allocator past ids seen in replayed log records."""
        with self._lock:
            if page_id >= self._next_page_id:
                self._next_page_id = page_id + 1

    # -- pages ---------------------------------------------------------------

    def write_page(self, image: PageImage) -> None:
        if not self.tracer.enabled:
            return self._write_page(image)
        with self.tracer.span(
            "disk.page_write", component=self.owner or "disk", page_id=image.page_id
        ):
            return self._write_page(image)

    def _write_page(self, image: PageImage) -> None:
        # A crash fault here models a torn/partial write: atomic page
        # semantics make torn = nothing, and the volume's DC fail-stops
        # (the raise aborts the call before anything is installed).
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DISK_PAGE_WRITE, self.owner)
        with self._lock:
            self._pages[image.page_id] = image
            self.metrics.incr("disk.page_writes")
            self.metrics.observe("disk.page_bytes", image.encoded_size())

    def read_page(self, page_id: int) -> Optional[PageImage]:
        with self._lock:
            self.metrics.incr("disk.page_reads")
            return self._pages.get(page_id)

    def free_page(self, page_id: int) -> None:
        with self._lock:
            self._pages.pop(page_id, None)
            self.metrics.incr("disk.page_frees")

    def page_ids(self) -> list[int]:
        with self._lock:
            return list(self._pages)

    def has_page(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages

    # -- stable metadata (DC checkpoint area) ---------------------------------

    def write_metadata(self, key: str, value: object) -> None:
        with self._lock:
            self._metadata[key] = value

    def read_metadata(self, key: str, default: object = None) -> object:
        with self._lock:
            return self._metadata.get(key, default)

    # -- stable DC log ---------------------------------------------------------

    def append_dc_log(self, entries: list[object]) -> None:
        """Force a batch of DC-log records (a system-transaction commit)."""
        if not self.tracer.enabled:
            return self._append_dc_log(entries)
        with self.tracer.span(
            "disk.log_force", component=self.owner or "disk", records=len(entries)
        ):
            return self._append_dc_log(entries)

    def _append_dc_log(self, entries: list[object]) -> None:
        # A crash fault here is the "failed fsync": the batch never reaches
        # the stable log, so the system transaction simply never happened.
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DISK_LOG_FORCE, self.owner)
        with self._lock:
            self._dc_log.extend(entries)
            self.metrics.incr("disk.dclog_forces")

    def dc_log_entries(self) -> list[object]:
        with self._lock:
            return list(self._dc_log)

    def truncate_dc_log(self, keep_from_dlsn: Lsn) -> None:
        """Discard DC-log records below a checkpointed dLSN."""
        with self._lock:
            self._dc_log = [
                entry
                for entry in self._dc_log
                if getattr(entry, "dlsn", NULL_LSN) >= keep_from_dlsn
            ]

    def dc_log_length(self) -> int:
        with self._lock:
            return len(self._dc_log)

    # -- sizing ------------------------------------------------------------------

    def total_bytes(self) -> int:
        with self._lock:
            return sum(image.encoded_size() for image in self._pages.values())

    def page_count(self) -> int:
        with self._lock:
            return len(self._pages)
