"""A B+-tree access method maintained entirely inside the DC.

The TC addresses records by ``(table, key)``; how those records map onto
pages — this tree — is invisible above the DC boundary (Section 1.2).
Structure modifications (leaf/inner splits, leaf consolidations, root
growth/collapse) run as system transactions (Section 5.2.2):

- a *split* logs the new page physically (image + abLSN) and the pre-split
  page logically (split key only);
- a *consolidation* logs the merged page physically with the merged (max)
  abLSN of its two inputs, plus a logical page-free for the victim;
- parent/root updates are logged physically (inner pages carry no TC data,
  so their images need no causality gate).

The tree is protected by a per-tree latch; page latches are still taken
around record-level work so latch acquisition counts stay comparable with
the monolithic baseline (DESIGN.md discusses this coarsening).
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, Optional

from repro.common.config import DcConfig
from repro.common.errors import PageOverflowError, ReproError
from repro.common.lsn import AbstractLsn
from repro.common.records import Key, VersionedRecord
from repro.dc.dclog import DcLog
from repro.dc.system_txn import StabilityProvider, SystemTransaction
from repro.sim.metrics import Metrics
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableStorage
from repro.storage.page import InnerPage, LeafPage, Page, PageKind


class BTree:
    """One table's B+-tree.  All entry points assume the tree latch is free
    and acquire it themselves; the DC may also hold it across a whole
    logical operation via :attr:`latch`."""

    def __init__(
        self,
        name: str,
        storage: StableStorage,
        buffer: BufferPool,
        dclog: DcLog,
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        ensure_stable: Optional[StabilityProvider] = None,
        root_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self._storage = storage
        self._buffer = buffer
        self._dclog = dclog
        self.config = config or DcConfig()
        self.metrics = metrics or Metrics()
        self._ensure_stable = ensure_stable
        self.latch = threading.RLock()
        if root_id is None:
            root_id = self._create_empty()
        self.root_id = root_id

    # -- construction -------------------------------------------------------

    def _create_empty(self) -> int:
        """Create the empty root leaf as a system transaction."""
        root = LeafPage(self._storage.allocate_page_id())
        txn = self._new_systxn("create")
        txn.log_page_image(root)
        txn.log_root_changed(self.name, root.page_id)
        txn.commit()
        self._buffer.register(root)
        return root.page_id

    def _new_systxn(self, kind: str) -> SystemTransaction:
        return SystemTransaction(kind, self._dclog, self.metrics, self._ensure_stable)

    # -- descent --------------------------------------------------------------

    def _fetch(self, page_id: int) -> Page:
        page = self._buffer.fetch(page_id)
        if page is None:
            raise ReproError(
                f"btree {self.name!r}: page {page_id} missing from cache and disk"
            )
        return page

    def _descend(self, key: Key) -> tuple[LeafPage, list[InnerPage], Optional[Key]]:
        """Walk from the root to the leaf covering ``key``.

        Returns the leaf, the inner-page path (root first), and the upper
        bound of the leaf's key range (None when rightmost) — the bound is
        what lets range scans continue into the next leaf without sibling
        pointers.
        """
        path: list[InnerPage] = []
        upper: Optional[Key] = None
        page = self._fetch(self.root_id)
        while isinstance(page, InnerPage):
            path.append(page)
            self.metrics.incr("btree.inner_visits")
            index = self._route_index(page, key)
            if index < len(page.separators):
                upper = page.separators[index]
            page = self._fetch(page.children[index])
        assert isinstance(page, LeafPage)
        return page, path, upper

    @staticmethod
    def _route_index(inner: InnerPage, key: Key) -> int:
        return bisect.bisect_right(inner.separators, key)

    def find_leaf(self, key: Key) -> LeafPage:
        with self.latch:
            leaf, _path, _upper = self._descend(key)
            return leaf

    # -- reads -------------------------------------------------------------------

    def get_record(self, key: Key) -> Optional[VersionedRecord]:
        with self.latch:
            leaf, _path, _upper = self._descend(key)
            with leaf.latch:
                self.metrics.incr("btree.latches")
                return leaf.get(key)

    def _descend_leftmost(self) -> tuple[LeafPage, list[InnerPage], Optional[Key]]:
        """Walk to the leftmost leaf without needing a comparable key."""
        path: list[InnerPage] = []
        upper: Optional[Key] = None
        page = self._fetch(self.root_id)
        while isinstance(page, InnerPage):
            path.append(page)
            self.metrics.incr("btree.inner_visits")
            if page.separators:
                upper = page.separators[0]
            page = self._fetch(page.children[0])
        assert isinstance(page, LeafPage)
        return page, path, upper

    def iter_range(
        self, low: Optional[Key], high: Optional[Key], limit: Optional[int] = None
    ) -> Iterator[VersionedRecord]:
        """Yield records with low <= key <= high across leaf boundaries."""
        with self.latch:
            produced = 0
            if low is None:
                leaf, _path, upper = self._descend_leftmost()
            else:
                leaf, _path, upper = self._descend(low)
            cursor = low
            while True:
                with leaf.latch:
                    self.metrics.incr("btree.latches")
                    for record in leaf.range(cursor, high):
                        yield record
                        produced += 1
                        if limit is not None and produced >= limit:
                            return
                if upper is None:
                    return
                if high is not None and upper > high:
                    return
                cursor = upper
                leaf, _path, upper = self._descend(cursor)

    def next_keys(
        self,
        after: Optional[Key],
        count: int,
        until: Optional[Key] = None,
        inclusive: bool = False,
    ) -> list[Key]:
        """Up to ``count`` *visible* keys above ``after`` (strictly, unless
        ``inclusive``), at most ``until``.

        This is the DC half of the fetch-ahead protocol (Section 3.1).
        Visibility matters: a slot whose versions are all dead (e.g. a
        promoted delete retaining snapshot history) is structurally present
        but must not be probed, or the protocol's probe/read validation
        would never converge.
        """
        with self.latch:
            found: list[Key] = []
            if after is None:
                leaf, _path, upper = self._descend_leftmost()
                keys: Iterator[Key] = iter(leaf.keys())
            else:
                leaf, _path, upper = self._descend(after)
                keys = leaf.keys_from(after) if inclusive else leaf.keys_after(after)
            while True:
                with leaf.latch:
                    self.metrics.incr("btree.latches")
                    for key in keys:
                        if until is not None and key > until:
                            return found
                        record = leaf.get(key)
                        if record is None or not record.exists_for(
                            read_committed=False
                        ):
                            continue  # invisible slot: not a probe anchor
                        found.append(key)
                        if len(found) >= count:
                            return found
                if upper is None:
                    return found
                cursor = upper
                leaf, _path, upper = self._descend(cursor)
                keys = leaf.keys_from(cursor)

    # -- structure modifications ---------------------------------------------------

    def ensure_room(self, key: Key, extra_bytes: int) -> LeafPage:
        """Return the leaf for ``key`` with at least ``extra_bytes`` free,
        splitting as many times as necessary."""
        with self.latch:
            while True:
                leaf, path, _upper = self._descend(key)
                if leaf.fits(extra_bytes, self.config.page_size):
                    return leaf
                if leaf.record_count() < 2:
                    raise PageOverflowError(
                        f"record of {extra_bytes} bytes cannot fit on an empty "
                        f"page of {self.config.page_size} bytes"
                    )
                self._split_leaf(leaf, path)

    def _split_leaf(self, leaf: LeafPage, path: list[InnerPage]) -> None:
        """Split ``leaf``; one system transaction (Section 5.2.2, Page Splits)."""
        txn = self._new_systxn("split")
        split_key = leaf.choose_split_key()
        new_leaf = LeafPage(self._storage.allocate_page_id())
        new_leaf.absorb(record.clone() for record in leaf.extract_from(split_key))
        # The new page inherits the abLSNs: every operation covered by the
        # old page's abLSN and addressed to a moved key is reflected in the
        # moved records (inherited coverage of keys that *stayed* is
        # harmless over-approximation — redo routes those keys to the old
        # page and never consults this abLSN for them).
        new_leaf.ablsns = {tc: ab.snapshot() for tc, ab in leaf.ablsns.items()}
        txn.log_page_image(new_leaf)  # physical: actual contents + abLSN
        txn.log_keys_removed(leaf, split_key)  # logical: split key only
        self._insert_separator(txn, path, leaf.page_id, split_key, new_leaf.page_id)
        txn.commit()
        self._buffer.register(new_leaf)
        self.metrics.incr("btree.leaf_splits")

    def _insert_separator(
        self,
        txn: SystemTransaction,
        path: list[InnerPage],
        left_id: int,
        separator: Key,
        right_id: int,
    ) -> None:
        """Post the split ``(separator, right_id)`` into the parent chain."""
        if not path:
            self._grow_root(txn, left_id, separator, right_id)
            return
        parent = path[-1]
        parent.insert_child(separator, right_id)
        if parent.fits(0, self.config.page_size):
            txn.log_page_image(parent)
            return
        # Inner split: promote the middle separator to the grandparent.
        mid = len(parent.separators) // 2
        promoted = parent.separators[mid]
        right_inner = InnerPage(self._storage.allocate_page_id())
        right_inner.separators = parent.separators[mid + 1 :]
        right_inner.children = parent.children[mid + 1 :]
        del parent.separators[mid:]
        del parent.children[mid + 1 :]
        parent.dirty = True
        txn.log_page_image(right_inner)
        txn.log_page_image(parent)
        self._buffer.register(right_inner)
        self.metrics.incr("btree.inner_splits")
        self._insert_separator(
            txn, path[:-1], parent.page_id, promoted, right_inner.page_id
        )

    def _grow_root(
        self, txn: SystemTransaction, left_id: int, separator: Key, right_id: int
    ) -> None:
        new_root = InnerPage(self._storage.allocate_page_id())
        new_root.separators = [separator]
        new_root.children = [left_id, right_id]
        txn.log_page_image(new_root)
        txn.log_root_changed(self.name, new_root.page_id)
        self._buffer.register(new_root)
        self.root_id = new_root.page_id
        self.metrics.incr("btree.root_grows")

    def maybe_consolidate(self, key_hint: Key) -> bool:
        """Merge the leaf covering ``key_hint`` with a sibling if underfull.

        One system transaction (Section 5.2.2, Page Deletes/Consolidates):
        physical image of the surviving page with the *merged* abLSN,
        logical free of the victim.  Returns True when a merge happened.
        """
        with self.latch:
            leaf, path, _upper = self._descend(key_hint)
            if not path:  # root leaf never consolidates
                return False
            if leaf.fill_fraction(self.config.page_size) >= self.config.min_fill:
                return False
            parent = path[-1]
            index = parent.child_index(leaf.page_id)
            # Always merge a right page (victim) into its left sibling
            # (target) so the removed child is never the leftmost one.
            if index > 0:
                target_page: Page = self._fetch(parent.children[index - 1])
                victim_page: Page = leaf
            elif index + 1 < len(parent.children):
                target_page = leaf
                victim_page = self._fetch(parent.children[index + 1])
            else:
                return False  # only child: nothing to merge with
            if not isinstance(target_page, LeafPage) or not isinstance(
                victim_page, LeafPage
            ):
                return False
            target, victim = target_page, victim_page
            victim_payload = sum(r.encoded_size() for r in victim.records_in_order())
            if not target.fits(victim_payload, self.config.page_size):
                self.metrics.incr("btree.consolidation_skipped_nofit")
                return False
            if not self._horizons_compatible(target, victim):
                # The two pages sit at different low-water horizons — they
                # can only differ like this while redo is replaying onto
                # asymmetric stable baselines.  Merging then would let the
                # higher low-water falsely claim coverage of the other
                # range's still-unreplayed operations (a lost-update bug
                # this guard was added for).  Defer; the next LWM broadcast
                # re-equalizes horizons and merges resume.
                self.metrics.incr("btree.consolidation_skipped_horizon")
                return False
            self._merge_leaves(target, victim, path)
            return True

    @staticmethod
    def _horizons_compatible(target: LeafPage, victim: LeafPage) -> bool:
        """True when every TC's low water agrees on both pages.

        In normal execution ``low_water_mark`` broadcasts keep all cached
        pages at one horizon per TC, so this is almost always true; during
        redo, historical baselines disagree and the merge must wait.
        Explicitly *included* LSNs are never a problem — each one is
        genuinely reflected in its page's records, so their union is
        genuinely reflected in the merged records.
        """
        for tc_id in set(target.ablsns) | set(victim.ablsns):
            a = target.ablsns.get(tc_id)
            b = victim.ablsns.get(tc_id)
            low_a = a.low_water if a is not None else None
            low_b = b.low_water if b is not None else None
            if low_a != low_b:
                return False
        return True

    def _merge_leaves(
        self, target: LeafPage, victim: LeafPage, path: list[InnerPage]
    ) -> None:
        txn = self._new_systxn("consolidate")
        target.absorb(record.clone() for record in victim.records_in_order())
        merged: dict[int, AbstractLsn] = dict(target.ablsns)
        for tc_id, ablsn in victim.ablsns.items():
            existing = merged.get(tc_id)
            merged[tc_id] = ablsn.snapshot() if existing is None else existing.merge(ablsn)
        target.ablsns = merged
        txn.log_page_image(target)  # physical, with the merged (max) abLSN
        txn.log_page_free(victim.page_id)
        parent = path[-1]
        parent.remove_child(victim.page_id)
        txn.log_page_image(parent)
        self._maybe_collapse_root(txn, path)
        txn.commit()
        self._buffer.discard(victim.page_id)
        self._storage.free_page(victim.page_id)
        self.metrics.incr("btree.consolidations")

    def _maybe_collapse_root(
        self, txn: SystemTransaction, path: list[InnerPage]
    ) -> None:
        root = path[0]
        if root.page_id != self.root_id or len(root.children) > 1:
            return
        only_child = root.children[0]
        txn.log_root_changed(self.name, only_child)
        txn.log_page_free(root.page_id)
        self._buffer.discard(root.page_id)
        self._storage.free_page(root.page_id)
        self.root_id = only_child
        self.metrics.incr("btree.root_collapses")

    # -- introspection (tests / experiments) ------------------------------------------

    def leaf_ids(self) -> list[int]:
        with self.latch:
            ids: list[int] = []
            self._collect_leaves(self.root_id, ids)
            return ids

    def _collect_leaves(self, page_id: int, out: list[int]) -> None:
        page = self._fetch(page_id)
        if isinstance(page, LeafPage):
            out.append(page_id)
            return
        assert isinstance(page, InnerPage)
        for child in page.children:
            self._collect_leaves(child, out)

    def depth(self) -> int:
        with self.latch:
            depth = 1
            page = self._fetch(self.root_id)
            while isinstance(page, InnerPage):
                depth += 1
                page = self._fetch(page.children[0])
            return depth

    def record_count(self) -> int:
        with self.latch:
            total = 0
            for leaf_id in self.leaf_ids():
                page = self._fetch(leaf_id)
                assert isinstance(page, LeafPage)
                total += page.record_count()
            return total

    def validate(self) -> None:
        """Assert structural well-formedness; raises ReproError on damage.

        Used by tests and by DC recovery to assert the Section 4.2 recovery
        contract: "The DC index structures must be well-formed for redo
        recovery to succeed."
        """
        with self.latch:
            self._validate_node(self.root_id, None, None)

    def _validate_node(
        self, page_id: int, low: Optional[Key], high: Optional[Key]
    ) -> None:
        page = self._fetch(page_id)
        if isinstance(page, LeafPage):
            keys = page.keys()
            if keys != sorted(keys):
                raise ReproError(f"leaf {page_id} keys out of order")
            for key in keys:
                if low is not None and key < low:
                    raise ReproError(f"leaf {page_id}: key {key!r} below bound {low!r}")
                if high is not None and key >= high:
                    raise ReproError(
                        f"leaf {page_id}: key {key!r} at/above bound {high!r}"
                    )
            return
        assert isinstance(page, InnerPage)
        if len(page.children) != len(page.separators) + 1:
            raise ReproError(f"inner {page_id}: children/separator mismatch")
        if page.separators != sorted(page.separators):
            raise ReproError(f"inner {page_id}: separators out of order")
        bounds = [low, *page.separators, high]
        for index, child in enumerate(page.children):
            self._validate_node(child, bounds[index], bounds[index + 1])
