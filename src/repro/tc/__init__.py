"""The Transactional Component: logical transaction services (Section 4.1.1).

A TC provides transactional locking (without page knowledge), logical
undo/redo logging, log forcing, rollback by inverse operations, restart
recovery, and the client side of every TC/DC interaction contract.
"""

from repro.tc.transactional_component import Transaction, TransactionalComponent

__all__ = ["Transaction", "TransactionalComponent"]
